//! Property tests for the parallel substrate: fragmented execution is
//! observationally identical to sequential execution regardless of the
//! node count — the correctness claim behind the paper's parallel
//! extension [7].

use proptest::prelude::*;

use tm_algebra::{CmpOp, ScalarExpr};
use tm_parallel::ParallelDb;
use tm_relational::{RelationSchema, Tuple, ValueType};

fn parent_schema() -> RelationSchema {
    RelationSchema::of("parent", &[("key", ValueType::Int)])
}

fn child_schema() -> RelationSchema {
    RelationSchema::of(
        "child",
        &[("fk", ValueType::Int), ("amount", ValueType::Int)],
    )
}

fn build_db(nodes: usize, parents: &[i64], children: &[(i64, i64)]) -> ParallelDb {
    let mut db = ParallelDb::new(nodes);
    db.create_relation(parent_schema(), 0);
    db.create_relation(child_schema(), 0);
    db.load("parent", parents.iter().map(|&k| Tuple::of((k,))))
        .unwrap();
    db.load("child", children.iter().map(|&(f, a)| Tuple::of((f, a))))
        .unwrap();
    db
}

/// Brute-force reference implementations.
fn brute_referential(parents: &[i64], children: &[(i64, i64)]) -> usize {
    use std::collections::BTreeSet;
    let keys: BTreeSet<i64> = parents.iter().copied().collect();
    let distinct: BTreeSet<(i64, i64)> = children.iter().copied().collect();
    distinct.iter().filter(|(fk, _)| !keys.contains(fk)).count()
}

fn brute_domain(children: &[(i64, i64)]) -> usize {
    use std::collections::BTreeSet;
    let distinct: BTreeSet<(i64, i64)> = children.iter().copied().collect();
    distinct.iter().filter(|(_, a)| *a < 0).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn referential_counts_match_brute_force(
        parents in prop::collection::vec(0..30i64, 0..25),
        children in prop::collection::vec((0..40i64, -5..5i64), 0..60),
        nodes in 1usize..9,
    ) {
        let db = build_db(nodes, &parents, &children);
        let report = db.check_referential("child", 0, "parent", 0);
        prop_assert_eq!(report.violations, brute_referential(&parents, &children));
        prop_assert_eq!(report.tuples_shuffled, 0, "co-partitioned");
    }

    #[test]
    fn domain_counts_match_brute_force(
        children in prop::collection::vec((0..40i64, -5..5i64), 0..60),
        nodes in 1usize..9,
    ) {
        let db = build_db(nodes, &[], &children);
        let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(1), ScalarExpr::int(0));
        let report = db.check_domain("child", &pred);
        prop_assert_eq!(report.violations, brute_domain(&children));
    }

    #[test]
    fn delta_checks_match_brute_force(
        parents in prop::collection::vec(0..30i64, 1..25),
        delta in prop::collection::vec((0..40i64, -5..5i64), 0..30),
        nodes in 1usize..9,
    ) {
        let db = build_db(nodes, &parents, &[]);
        let tuples: Vec<Tuple> = delta.iter().map(|&(f, a)| Tuple::of((f, a))).collect();
        let report = db.check_referential_delta(&tuples, 0, "parent", 0);
        // The delta check counts per-occurrence (the batch is a list).
        let keys: std::collections::BTreeSet<i64> = parents.iter().copied().collect();
        let expected = delta.iter().filter(|(fk, _)| !keys.contains(fk)).count();
        prop_assert_eq!(report.violations, expected);
    }

    #[test]
    fn gather_is_node_count_invariant(
        parents in prop::collection::vec(0..100i64, 0..50),
        nodes in 1usize..9,
    ) {
        let db = build_db(nodes, &parents, &[]);
        let gathered = db.gather("parent").unwrap();
        let distinct: std::collections::BTreeSet<i64> = parents.iter().copied().collect();
        prop_assert_eq!(gathered.len(), distinct.len());
        for k in distinct {
            prop_assert!(gathered.contains(&Tuple::of((k,))));
        }
    }

    #[test]
    fn shuffled_check_matches_copartitioned(
        parents in prop::collection::vec((0..30i64, 0..5i64), 0..25),
        children in prop::collection::vec((0..40i64, -5..5i64), 0..60),
        nodes in 1usize..9,
    ) {
        // Parent fragmented on a NON-key column: the check must shuffle
        // but report the same violations.
        let mut db = ParallelDb::new(nodes);
        db.create_relation(
            RelationSchema::of("parent", &[("key", ValueType::Int), ("x", ValueType::Int)]),
            1,
        );
        db.create_relation(child_schema(), 0);
        db.load("parent", parents.iter().map(|&(k, x)| Tuple::of((k, x))))
            .unwrap();
        db.load("child", children.iter().map(|&(f, a)| Tuple::of((f, a))))
            .unwrap();
        let report = db.check_referential("child", 0, "parent", 0);
        let keys: std::collections::BTreeSet<i64> =
            parents.iter().map(|&(k, _)| k).collect();
        let distinct: std::collections::BTreeSet<(i64, i64)> =
            children.iter().copied().collect();
        let expected = distinct.iter().filter(|(fk, _)| !keys.contains(fk)).count();
        prop_assert_eq!(report.violations, expected);
    }
}
