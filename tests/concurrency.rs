//! The concurrency suite: serializability of the MVCC engine.
//!
//! [`txmod::ConcurrentEngine`] runs prepared executions on per-session
//! copy-on-write snapshots and serializes commits through a
//! flat-combining applier with first-committer-wins validation on the
//! `R@ins`/`R@del` differentials. These tests pin the contract:
//!
//! * **deterministic conflicts** — two executions racing from the same
//!   snapshot epoch (forced via `execute_deferred`) resolve
//!   first-committer-wins: overlapping inserts/deletes lose on the write
//!   half of the footprint, write skew through a referential constraint
//!   loses on the read half, in *either* commit order;
//! * **no effect on loss** — a conflicted execution leaves the
//!   authoritative state bit-identical (`state_eq`), and so does a
//!   constraint abort;
//! * **aborts revalidate** — an abort verdict invalidated by a concurrent
//!   commit is itself a conflict (retry then commits);
//! * **serializability** — random multi-threaded histories of prepared
//!   executions, in all four enforcement modes, land `state_eq` to the
//!   serial execution of the committed transactions in commit-epoch
//!   order;
//! * **epoch hygiene** — the conflict log retains a bounded roll-forward
//!   window and is pruned past it once no active snapshot can consult it;
//! * **O(Δ) snapshot maintenance** — session copies roll forward by
//!   replaying committed differentials (steady-state commits force no
//!   relation copies), track other sessions' commits, and rebuild when
//!   administration mutates state out-of-band.

use std::thread;

use tm_algebra::builder::TransactionBuilder;
use tm_relational::{unshare_count, DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use txmod::{ConcurrentEngine, EnforcementMode, Engine, EngineConfig, EngineError, StatementId};

const MODES: [EnforcementMode; 4] = [
    EnforcementMode::Off,
    EnforcementMode::Dynamic,
    EnforcementMode::Static,
    EnforcementMode::Differential,
];

/// Beer-schema engine with a referential constraint (beer.brewery must
/// exist in brewery) and one brewery loaded.
fn ref_engine(mode: EnforcementMode) -> Engine {
    let mut e = Engine::with_config(
        tm_relational::schema::beer_schema(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    e.define_constraint(
        "ref",
        "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
    )
    .unwrap();
    e.load(
        "brewery",
        vec![
            Tuple::of(("guinness", "dublin", "ie")),
            Tuple::of(("heineken", "amsterdam", "nl")),
        ],
    )
    .unwrap();
    e
}

fn beer_row(name: &str, brewery: &str) -> Tuple {
    Tuple::of((name, "ale", brewery, 5.0_f64))
}

/// The same row as a grounded singleton source — the statement shape the
/// prepare-time specializer emits, which the fast-path recognizer (and
/// therefore the tuple-level half of the conflict footprint) picks up.
fn beer_exprs(name: &str, brewery: &str) -> Vec<tm_algebra::ScalarExpr> {
    use tm_algebra::ScalarExpr;
    vec![
        ScalarExpr::str(name),
        ScalarExpr::str("ale"),
        ScalarExpr::str(brewery),
        ScalarExpr::double(5.0),
    ]
}

#[test]
fn overlapping_inserts_first_committer_wins() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    let tx = TransactionBuilder::new()
        .insert_row("beer", beer_exprs("stout", "guinness"))
        .build();
    let id1 = s1.prepare(&tx).unwrap();
    let id2 = s2.prepare(&tx).unwrap();

    // Both executions run on the same snapshot epoch before either commits.
    let p1 = s1.execute_deferred(id1, &[]).unwrap();
    let p2 = s2.execute_deferred(id2, &[]).unwrap();
    assert!(p1.outcome().is_committed());
    assert!(p2.outcome().is_committed());

    let (out1, epoch1) = p1.commit().unwrap();
    assert!(out1.committed());
    let err = p2.commit().unwrap_err();
    assert!(err.is_retryable());
    match err {
        EngineError::Conflict {
            relation,
            committed_epoch,
            read,
        } => {
            assert_eq!(relation, "beer");
            assert_eq!(committed_epoch, epoch1);
            assert!(!read, "tuple overlap is a write/write conflict");
        }
        other => panic!("expected Conflict, got {other:?}"),
    }
    // Exactly one copy of the row made it in.
    let db = ce.snapshot();
    assert_eq!(db.relation("beer").unwrap().len(), 1);
}

#[test]
fn overlapping_deletes_first_committer_wins() {
    let mut engine = ref_engine(EnforcementMode::Static);
    engine
        .load("beer", vec![beer_row("stout", "guinness")])
        .unwrap();
    let ce = ConcurrentEngine::new(engine);
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    let tx = TransactionBuilder::new()
        .delete_row("beer", beer_exprs("stout", "guinness"))
        .build();
    let id1 = s1.prepare(&tx).unwrap();
    let id2 = s2.prepare(&tx).unwrap();

    let p1 = s1.execute_deferred(id1, &[]).unwrap();
    let p2 = s2.execute_deferred(id2, &[]).unwrap();
    assert!(p1.commit().unwrap().0.committed());
    let err = p2.commit().unwrap_err();
    assert!(matches!(err, EngineError::Conflict { read: false, .. }));
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 0);
}

/// Disjoint single-row traffic — the workload the engine exists for —
/// must not conflict.
#[test]
fn disjoint_inserts_commute() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    let template = TransactionBuilder::new().insert_params("beer", 4).build();
    let id1 = s1.prepare(&template).unwrap();
    let id2 = s2.prepare(&template).unwrap();

    let bind = |name: &str| {
        vec![
            Value::str(name),
            Value::str("ale"),
            Value::str("guinness"),
            Value::double(5.0),
        ]
    };
    let p1 = s1.execute_deferred(id1, &bind("a")).unwrap();
    let p2 = s2.execute_deferred(id2, &bind("b")).unwrap();
    assert!(p1.commit().unwrap().0.committed());
    assert!(p2.commit().unwrap().0.committed());
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 2);
}

/// Write skew through the referential constraint: one transaction deletes
/// a brewery (its check reads `beer` for orphans), the other inserts a
/// beer referencing it (its check reads `brewery`). Each is consistent
/// against their shared snapshot; together they orphan the beer. The
/// loser must conflict on the *read* half of its footprint — in either
/// commit order.
#[test]
fn write_skew_on_referential_constraint_conflicts_either_order() {
    for delete_first in [true, false] {
        let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
        let mut s1 = ce.session();
        let mut s2 = ce.session();
        let del = TransactionBuilder::new()
            .delete_tuple("brewery", Tuple::of(("heineken", "amsterdam", "nl")))
            .build();
        let ins = TransactionBuilder::new()
            .insert_tuple("beer", beer_row("pils", "heineken"))
            .build();
        let id_del = s1.prepare(&del).unwrap();
        let id_ins = s2.prepare(&ins).unwrap();

        let p_del = s1.execute_deferred(id_del, &[]).unwrap();
        let p_ins = s2.execute_deferred(id_ins, &[]).unwrap();
        // Both verdicts are clean on the shared snapshot.
        assert!(p_del.outcome().is_committed());
        assert!(p_ins.outcome().is_committed());

        let err = if delete_first {
            assert!(p_del.commit().unwrap().0.committed());
            p_ins.commit().unwrap_err()
        } else {
            assert!(p_ins.commit().unwrap().0.committed());
            p_del.commit().unwrap_err()
        };
        assert!(
            matches!(err, EngineError::Conflict { read: true, .. }),
            "write skew must surface as a read-footprint conflict, got {err:?}"
        );
        // The surviving state satisfies the constraint.
        drop(s1);
        drop(s2);
        let winner = ConcurrentEngine::try_into_engine(ce).unwrap();
        assert_eq!(winner.check_state().unwrap(), Vec::<String>::new());
    }
}

/// A conflicted execution has no effect: the authoritative state is
/// bit-identical before and after the losing commit attempt.
#[test]
fn conflict_leaves_state_untouched() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    let tx = TransactionBuilder::new()
        .insert_tuple("beer", beer_row("stout", "guinness"))
        .build();
    let id1 = s1.prepare(&tx).unwrap();
    let id2 = s2.prepare(&tx).unwrap();

    let p1 = s1.execute_deferred(id1, &[]).unwrap();
    let p2 = s2.execute_deferred(id2, &[]).unwrap();
    p1.commit().unwrap();
    let before = ce.snapshot();
    assert!(p2.commit().is_err());
    assert!(ce.snapshot().state_eq(&before));
}

/// A constraint abort on a snapshot has no effect either.
#[test]
fn constraint_abort_leaves_snapshot_untouched() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s = ce.session();
    let tx = TransactionBuilder::new()
        .insert_tuple("beer", beer_row("orphan", "nonexistent"))
        .build();
    let id = s.prepare(&tx).unwrap();
    let before = ce.snapshot();
    let out = s.execute_prepared(id, &[]).unwrap();
    assert!(!out.committed());
    assert!(ce.snapshot().state_eq(&before));
}

/// An abort verdict is a function of what the checks read, so it is
/// revalidated at the applier: when a concurrent commit invalidates the
/// reads, the abort is a conflict, and the retry commits.
#[test]
fn invalidated_abort_is_a_conflict_and_retry_commits() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    // s1 inserts a beer whose brewery does not exist yet — aborts on its
    // snapshot.
    let ins = TransactionBuilder::new()
        .insert_tuple("beer", beer_row("trappist", "westvleteren"))
        .build();
    let id1 = s1.prepare(&ins).unwrap();
    let p1 = s1.execute_deferred(id1, &[]).unwrap();
    assert!(!p1.outcome().is_committed());

    // Meanwhile s2 creates the brewery.
    let mkbrew = TransactionBuilder::new()
        .insert_tuple("brewery", Tuple::of(("westvleteren", "vleteren", "be")))
        .build();
    let id2 = s2.prepare(&mkbrew).unwrap();
    assert!(s2.execute_prepared(id2, &[]).unwrap().committed());

    // The stale abort verdict does not stand.
    let err = p1.commit().unwrap_err();
    assert!(matches!(err, EngineError::Conflict { read: true, .. }));
    // A fresh snapshot sees the brewery and commits.
    let (out, retries) = s1.execute_with_retry(id1, &[], 5).unwrap();
    assert!(out.committed());
    assert_eq!(retries, 0);
}

/// Dropping a deferred execution discards it: nothing publishes, and its
/// snapshot epoch is released so the conflict log drains.
#[test]
fn dropped_pending_commit_has_no_effect() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s = ce.session();
    let tx = TransactionBuilder::new()
        .insert_tuple("beer", beer_row("stout", "guinness"))
        .build();
    let id = s.prepare(&tx).unwrap();
    let before = ce.snapshot();
    let pending = s.execute_deferred(id, &[]).unwrap();
    assert!(pending.outcome().is_committed());
    drop(pending);
    assert!(ce.snapshot().state_eq(&before));
    assert_eq!(ce.retained_deltas(), 0);
}

/// The epoch log is bounded: with no snapshots in flight it retains
/// exactly the roll-forward window (the newest
/// `ROLLFORWARD_RETENTION` differentials, kept so session copies can
/// catch up at O(Δ)) and prunes everything older.
#[test]
fn conflict_log_retains_a_bounded_rollforward_window() {
    const COMMITS: usize = ConcurrentEngine::ROLLFORWARD_RETENTION + 64;
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s = ce.session();
    let template = TransactionBuilder::new().insert_params("beer", 4).build();
    let id = s.prepare(&template).unwrap();
    for i in 0..COMMITS {
        let out = s
            .execute_prepared(
                id,
                &[
                    Value::str(format!("beer-{i}")),
                    Value::str("ale"),
                    Value::str("guinness"),
                    Value::double(5.0),
                ],
            )
            .unwrap();
        assert!(out.committed());
    }
    assert_eq!(
        ce.retained_deltas(),
        ConcurrentEngine::ROLLFORWARD_RETENTION
    );
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), COMMITS);
}

/// Steady-state commits never copy a relation: session copies are rolled
/// forward differentially and the authoritative state is mutated in
/// place, so the process-wide COW-unshare count stays flat while
/// thousands of transactions commit. (Per-transaction re-cloning would
/// pay at least one full tuple-set copy per commit.)
#[test]
fn steady_state_commits_do_not_copy_relations() {
    const COMMITS: usize = 2_000;
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    let template = TransactionBuilder::new().insert_params("beer", 4).build();
    let id1 = s1.prepare(&template).unwrap();
    let id2 = s2.prepare(&template).unwrap();
    let bind = |i: usize| {
        vec![
            Value::str(format!("beer-{i}")),
            Value::str("ale"),
            Value::str("guinness"),
            Value::double(5.0),
        ]
    };
    let before = unshare_count();
    for i in 0..COMMITS {
        let (session, id) = if i % 2 == 0 {
            (&mut s1, id1)
        } else {
            (&mut s2, id2)
        };
        assert!(session.execute_prepared(id, &bind(i)).unwrap().committed());
    }
    let copies = unshare_count() - before;
    assert!(
        copies < 500,
        "{COMMITS} alternating commits across two sessions forced {copies} \
         relation copies — snapshot maintenance is not O(Δ)"
    );
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), COMMITS);
}

/// A session's private copy tracks other sessions' commits through the
/// epoch log: a brewery committed by one session is visible to another
/// session's referential check on its very next execution.
#[test]
fn session_copies_track_concurrent_commits() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    // Warm s2's private copy with a committed insert.
    let warm = TransactionBuilder::new()
        .insert_row("beer", beer_exprs("stout", "guinness"))
        .build();
    let warm_id = s2.prepare(&warm).unwrap();
    assert!(s2.execute_prepared(warm_id, &[]).unwrap().committed());

    // s1 creates a brewery s2's copy has never seen.
    let mkbrew = TransactionBuilder::new()
        .insert_tuple("brewery", Tuple::of(("westvleteren", "vleteren", "be")))
        .build();
    let id1 = s1.prepare(&mkbrew).unwrap();
    assert!(s1.execute_prepared(id1, &[]).unwrap().committed());

    // s2 references it: the check passes only if the roll-forward
    // delivered s1's commit into s2's copy.
    let ins = TransactionBuilder::new()
        .insert_tuple("beer", beer_row("trappist", "westvleteren"))
        .build();
    let id2 = s2.prepare(&ins).unwrap();
    assert!(s2.execute_prepared(id2, &[]).unwrap().committed());
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 2);
}

/// Administration through `lock()` that mutates data bypasses the epoch
/// log entirely; sessions notice via the database's logical clock and
/// rebuild their copies instead of executing against stale state.
#[test]
fn out_of_band_load_invalidates_session_copies() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s = ce.session();
    // Warm the session's private copy.
    let warm = TransactionBuilder::new()
        .insert_row("beer", beer_exprs("stout", "guinness"))
        .build();
    let warm_id = s.prepare(&warm).unwrap();
    assert!(s.execute_prepared(warm_id, &[]).unwrap().committed());

    // An administrator loads a brewery directly into the engine.
    ce.lock()
        .load(
            "brewery",
            vec![Tuple::of(("westvleteren", "vleteren", "be"))],
        )
        .unwrap();

    // The session's next execution must see it — a stale copy would
    // abort the referential check.
    let ins = TransactionBuilder::new()
        .insert_tuple("beer", beer_row("trappist", "westvleteren"))
        .build();
    let id = s.prepare(&ins).unwrap();
    assert!(s.execute_prepared(id, &[]).unwrap().committed());
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 2);
}

// ---------------------------------------------------------------------------
// Serializability property: random concurrent histories equal a serial one.
// ---------------------------------------------------------------------------

/// Minimal deterministic RNG (splitmix64) — the suite must not depend on
/// ambient entropy.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn item_engine(mode: EnforcementMode) -> Engine {
    let schema = DatabaseSchema::from_relations(vec![RelationSchema::of(
        "item",
        &[("k", ValueType::Int), ("v", ValueType::Int)],
    )])
    .unwrap();
    let mut e = Engine::with_config(
        schema,
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    e.define_constraint("nonneg", "forall x (x in item implies x.v >= 0)")
        .unwrap();
    e
}

/// One logged committed transaction: its commit epoch, which template ran
/// (0 = insert, 1 = delete), and the bound parameters.
type Logged = (u64, usize, i64, i64);

#[test]
fn concurrent_histories_are_serializable_in_all_modes() {
    for mode in MODES {
        let ce = ConcurrentEngine::new(item_engine(mode));
        const THREADS: usize = 4;
        const OPS: usize = 60;

        let logs: Vec<Vec<Logged>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let mut session = ce.session();
                    scope.spawn(move || {
                        let insert = TransactionBuilder::new().insert_params("item", 2).build();
                        let delete = TransactionBuilder::new().delete_params("item", 2).build();
                        let ids = [
                            session.prepare(&insert).unwrap(),
                            session.prepare(&delete).unwrap(),
                        ];
                        let mut rng = Rng(0xfeed + t as u64);
                        let mut log = Vec::new();
                        for _ in 0..OPS {
                            let which = rng.below(2) as usize;
                            // Small key domain forces real contention; the
                            // occasional negative value exercises the
                            // constraint-abort path (except in Off mode).
                            let k = rng.below(6) as i64;
                            let v = rng.below(7) as i64 - 1;
                            let params = [Value::Int(k), Value::Int(v)];
                            match session.execute_with_retry(ids[which], &params, 50) {
                                Ok((out, _retries)) => {
                                    if out.committed() {
                                        let epoch = session.last_commit_epoch().unwrap();
                                        log.push((epoch, which, k, v));
                                    }
                                }
                                Err(e) => panic!("retry budget exhausted: {e}"),
                            }
                        }
                        log
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Replay the committed transactions serially, in commit-epoch
        // order, on a twin engine. Every one of them must commit again,
        // and the final states must agree — the concurrent history is
        // equivalent to this serial order.
        let mut merged: Vec<Logged> = logs.into_iter().flatten().collect();
        merged.sort_by_key(|&(epoch, ..)| epoch);
        let mut twin = item_engine(mode);
        let mut ts = twin.session();
        let insert = TransactionBuilder::new().insert_params("item", 2).build();
        let delete = TransactionBuilder::new().delete_params("item", 2).build();
        let tids = [ts.prepare(&insert).unwrap(), ts.prepare(&delete).unwrap()];
        for (epoch, which, k, v) in &merged {
            let out = ts
                .execute_prepared(tids[*which], &[Value::Int(*k), Value::Int(*v)])
                .unwrap();
            assert!(
                out.committed(),
                "[{mode:?}] tx at epoch {epoch} committed concurrently \
                 but aborts in the serial replay"
            );
        }
        let concurrent_final = ce.snapshot();
        assert!(
            twin.database().state_eq(&concurrent_final),
            "[{mode:?}] concurrent final state diverges from the serial replay"
        );
        // And the surviving state satisfies the constraints.
        if mode != EnforcementMode::Off {
            let violations = ConcurrentEngine::try_into_engine(ce)
                .unwrap()
                .check_state()
                .unwrap();
            assert_eq!(violations, Vec::<String>::new(), "[{mode:?}]");
        }
    }
}

/// Sanity check that `StatementId` handles from one session do not
/// resolve in another (sessions own their statements).
#[test]
fn statement_ids_are_session_local() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s1 = ce.session();
    let mut s2 = ce.session();
    let tx = TransactionBuilder::new()
        .insert_tuple("beer", beer_row("stout", "guinness"))
        .build();
    let id: StatementId = s1.prepare(&tx).unwrap();
    let err = s2.execute_prepared(id, &[]).unwrap_err();
    assert!(matches!(err, EngineError::UnknownStatement(_)));
}

/// Catalog DDL fences in-flight snapshots: an execution whose checks ran
/// under the old rule set cannot publish into the new one — it fails
/// with a retryable conflict and the retry re-prepares and re-checks
/// under the new catalog.
#[test]
fn ddl_between_snapshot_and_commit_is_a_conflict() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s = ce.session();
    let tx = TransactionBuilder::new()
        .insert_row("beer", beer_exprs("stout", "guinness"))
        .build();
    let id = s.prepare(&tx).unwrap();

    let pending = s.execute_deferred(id, &[]).unwrap();
    assert!(pending.outcome().is_committed());

    // A constraint lands while the execution is in flight.
    ce.lock()
        .define_constraint("abv_cap", "forall x (x in beer implies x.alcohol <= 20)")
        .unwrap();

    let err = pending.commit().unwrap_err();
    assert!(err.is_retryable());
    match err {
        EngineError::Conflict { relation, read, .. } => {
            assert_eq!(relation, "<catalog>");
            assert!(read, "a catalog fence is a read-side invalidation");
        }
        other => panic!("expected Conflict, got {other:?}"),
    }
    // Nothing was published.
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 0);

    // The retry goes through the ordinary staleness path: re-prepare
    // against the new catalog, re-execute, commit.
    let (out, retries) = s.execute_with_retry(id, &[], 3).unwrap();
    assert!(out.committed());
    assert_eq!(retries, 0, "the deferred loss consumed no retry budget");
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 1);
}

/// Out-of-band administration fences in-flight commits: a data write
/// through `lock()` bypasses the epoch log, so an execution snapshotted
/// before it cannot prove its verdict still stands — the commit fails
/// with a retryable conflict and the retry re-executes on a fresh clone
/// that sees the administrative write.
#[test]
fn out_of_band_write_between_snapshot_and_commit_is_a_conflict() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let mut s = ce.session();
    let tx = TransactionBuilder::new()
        .insert_row("beer", beer_exprs("stout", "guinness"))
        .build();
    let id = s.prepare(&tx).unwrap();

    let pending = s.execute_deferred(id, &[]).unwrap();
    assert!(pending.outcome().is_committed());

    // An administrator loads data while the execution is in flight. The
    // guard's release invalidates every cached copy and fences the
    // pending commit.
    ce.lock()
        .load("brewery", vec![Tuple::of(("rochefort", "rochefort", "be"))])
        .unwrap();

    let err = pending.commit().unwrap_err();
    assert!(err.is_retryable());
    match err {
        EngineError::Conflict { relation, read, .. } => {
            assert_eq!(relation, "<out-of-band>");
            assert!(read, "an out-of-band fence is a read-side invalidation");
        }
        other => panic!("expected Conflict, got {other:?}"),
    }
    // Nothing was published; the administrative write is there.
    let snap = ce.snapshot();
    assert_eq!(snap.relation("beer").unwrap().len(), 0);
    assert_eq!(snap.relation("brewery").unwrap().len(), 3);

    // The retry re-clones and commits against the post-write state.
    let (out, retries) = s.execute_with_retry(id, &[], 3).unwrap();
    assert!(out.committed());
    assert_eq!(retries, 0, "the deferred loss consumed no retry budget");
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 1);
}

/// Statements prepared once can be adopted into many sessions (the
/// server's share path): ids stay session-local, executions stay
/// concurrent, and an adopted plan re-modifies lazily when the catalog
/// moves under it.
#[test]
fn adopted_statements_execute_and_refresh() {
    let ce = ConcurrentEngine::new(ref_engine(EnforcementMode::Static));
    let tx = TransactionBuilder::new()
        .insert_row("beer", beer_exprs("stout", "guinness"))
        .build();
    let canonical = ce.lock().prepare(&tx).unwrap();

    let mut s1 = ce.session();
    let mut s2 = ce.session();
    let id1 = s1.adopt(canonical.clone());
    let id2 = s2.adopt(canonical);

    let out = s1.execute_prepared(id1, &[]).unwrap();
    assert!(out.committed() && out.reused_plan);

    // DDL moves the catalog; the other session's adopted copy is stale
    // and refreshes on its next execution (set semantics make the
    // duplicate insert a no-op commit).
    ce.lock()
        .define_constraint("abv_cap", "forall x (x in beer implies x.alcohol <= 20)")
        .unwrap();
    let out = s2.execute_prepared(id2, &[]).unwrap();
    assert!(out.committed() && !out.reused_plan);
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 1);
}
