//! Soundness harness for catalog static analysis.
//!
//! The analyzer makes three kinds of claims, each of which must be
//! semantically invisible at runtime:
//!
//! * **A002 (dead rule)** — a rule whose violation predicate is refuted
//!   can never fire: adding it to a catalog changes no verdict and no
//!   final state.
//! * **A003 (subsumed rule)** — removing a subsumed rule preserves
//!   every verdict and every final state, because the subsuming rule
//!   aborts whenever the subsumed one would have.
//! * **Termination certificates** — a catalog whose refined triggering
//!   graph is acyclic runs to a fixpoint with the round budget demoted
//!   to a debug assertion, and semantic refinement skips only
//!   selections that are provably no-ops.
//!
//! The first two are tested property-style over random transaction
//! streams in all four enforcement modes; the certificate claims are
//! tested on the syntactically-cyclic repair catalog that refinement
//! proves terminating, plus a budget-exhaustion case whose error must
//! name the surviving cycle.

use proptest::prelude::*;

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{CmpOp, ScalarExpr, Transaction};
use tm_relational::{DatabaseSchema, RelationSchema, Tuple, ValueType};
use txmod::{AnalysisCode, EnforcementMode, Engine, EngineConfig, EngineError};

const MODES: [EnforcementMode; 4] = [
    EnforcementMode::Off,
    EnforcementMode::Dynamic,
    EnforcementMode::Static,
    EnforcementMode::Differential,
];

const ENFORCING: [EnforcementMode; 3] = [
    EnforcementMode::Dynamic,
    EnforcementMode::Static,
    EnforcementMode::Differential,
];

fn stock_schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![RelationSchema::of(
        "stock",
        &[("item", ValueType::Int), ("qty", ValueType::Int)],
    )])
    .unwrap()
}

fn engine_with(mode: EnforcementMode, rules: &[(&str, &str)]) -> Engine {
    let mut e = Engine::with_config(
        stock_schema(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    for (name, text) in rules {
        e.add_rule_text(text, name).unwrap();
    }
    e
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Delete(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..10i64, -20..30i64).prop_map(|(i, q)| Op::Insert(i, q)),
        (0..10i64).prop_map(Op::Delete),
    ]
}

fn build_tx(ops: &[Op]) -> Transaction {
    let mut b = TransactionBuilder::new();
    for op in ops {
        b = match op {
            Op::Insert(i, q) => b.insert_tuple("stock", Tuple::of((*i, *q))),
            Op::Delete(i) => b.delete_where(
                "stock",
                ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(*i)),
            ),
        };
    }
    b.build()
}

const LIVE: (&str, &str) = (
    "live",
    "WHEN INS(stock) IF NOT forall x (x in stock implies x.qty >= 0) THEN abort",
);
const DEAD: (&str, &str) = (
    "dead",
    "WHEN INS(stock) IF NOT forall x (x in stock implies x.qty < 5 or x.qty >= 5) THEN abort",
);
const TIGHT: (&str, &str) = (
    "tight",
    "WHEN INS(stock) IF NOT forall x (x in stock implies x.qty >= 10) THEN abort",
);
const LOOSE: (&str, &str) = (
    "loose",
    "WHEN INS(stock) IF NOT forall x (x in stock implies x.qty >= 0) THEN abort",
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A rule the analyzer flags A002 (tautological constraint, dead
    /// rule) never changes a verdict or a final state, in any mode.
    #[test]
    fn dead_rules_never_fire(
        txs in prop::collection::vec(prop::collection::vec(op_strategy(), 1..6), 1..6),
    ) {
        for mode in MODES {
            let mut with_dead = engine_with(mode, &[LIVE, DEAD]);
            let mut without = engine_with(mode, &[LIVE]);
            prop_assert!(with_dead.validate_full().has(AnalysisCode::TautologicalConstraint, "dead"));
            for ops in &txs {
                let tx = build_tx(ops);
                let a = with_dead.execute(&tx).unwrap();
                let b = without.execute(&tx).unwrap();
                prop_assert_eq!(a.committed(), b.committed(), "{:?} {}", mode, tx);
            }
            prop_assert_eq!(
                with_dead.relation("stock").unwrap(),
                without.relation("stock").unwrap(),
                "{:?}", mode
            );
        }
    }

    /// Removing a rule the analyzer flags A003 (subsumed) preserves
    /// every verdict and every final state, in any mode.
    #[test]
    fn removing_subsumed_rule_preserves_behaviour(
        txs in prop::collection::vec(prop::collection::vec(op_strategy(), 1..6), 1..6),
    ) {
        for mode in MODES {
            let mut both = engine_with(mode, &[TIGHT, LOOSE]);
            let mut tight_only = engine_with(mode, &[TIGHT]);
            prop_assert!(both.validate_full().has(AnalysisCode::SubsumedBy, "loose"));
            for ops in &txs {
                let tx = build_tx(ops);
                let a = both.execute(&tx).unwrap();
                let b = tight_only.execute(&tx).unwrap();
                prop_assert_eq!(a.committed(), b.committed(), "{:?} {}", mode, tx);
            }
            prop_assert_eq!(
                both.relation("stock").unwrap(),
                tight_only.relation("stock").unwrap(),
                "{:?}", mode
            );
        }
    }
}

// ---------------------------------------------------------------------
// Termination certificates.
// ---------------------------------------------------------------------

fn repair_schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("v", ValueType::Int)]),
        RelationSchema::of("s", &[("m", ValueType::Int)]),
        RelationSchema::of("log", &[("code", ValueType::Int)]),
    ])
    .unwrap()
}

const REPAIR_RULES: [(&str, &str); 3] = [
    (
        "clamp",
        "WHEN INS(r), DEL(s) IF NOT forall x (x in r implies x.v >= 0) \
         THEN delete(r, select[#0 < 0](r)); insert(log, {(0)})",
    ),
    (
        "mark",
        "WHEN DEL(r) IF NOT forall y (y in s implies y.m >= 0) \
         THEN delete(s, select[#0 < 0](s))",
    ),
    (
        "logcheck",
        "WHEN INS(log) IF NOT forall z (z in log implies z.code >= 0) THEN abort",
    ),
];

fn repair_engine(mode: EnforcementMode, max_rounds: usize) -> Engine {
    // allow_cycles stays FALSE: the catalog is syntactically cyclic,
    // and it is the semantic refinement that admits it.
    let mut e = Engine::with_config(
        repair_schema(),
        EngineConfig {
            mode,
            max_rounds,
            ..EngineConfig::default()
        },
    );
    for (name, text) in REPAIR_RULES {
        e.add_rule_text(text, name).unwrap();
    }
    e
}

/// The syntactically cyclic repair catalog is admitted under the
/// default cycle-rejecting config, certified terminating, and its
/// pruned edges carry A004 provenance.
#[test]
fn refined_cyclic_catalog_is_certified() {
    let e = repair_engine(EnforcementMode::Static, 32);
    // Syntactic validation still sees the clamp/mark cycle...
    assert!(e.validate().has_cycles());
    // ...but the semantic report proves it false.
    let report = e.validate_full();
    assert!(report.certificate.certified, "{report}");
    assert!(!report.certificate.syntactic_cycles.is_empty());
    assert!(report.certificate.refined_cycles.is_empty());
    assert_eq!(report.certificate.pruned.len(), 3, "{report}");
    assert!(report.has(AnalysisCode::FalseEdgePruned, "clamp"));
    assert!(report.has(AnalysisCode::FalseEdgePruned, "mark"));
    assert_eq!(report.syntactic_edges, 3);
    assert_eq!(report.refined_edges, 0);
}

/// The certified catalog runs with `max_rounds: 1` even though its
/// repairs recurse past round 1 — the budget guard is provably
/// unreachable and skipped. All enforcing modes agree on the repaired
/// state, and the refinement skips are genuine no-ops (ground truth
/// stays clean).
#[test]
fn certificate_disarms_round_budget() {
    for mode in ENFORCING {
        let mut e = repair_engine(mode, 1);
        e.load("s", vec![Tuple::of((1_i64,))]).unwrap();
        let tx = TransactionBuilder::new()
            .insert_tuple("r", Tuple::of((-5_i64,)))
            .build();
        let out = e.execute(&tx).unwrap();
        assert!(out.committed(), "{mode:?}: {out}");
        // clamp repaired the negative insert; mark and logcheck were
        // reachable only over pruned edges and were skipped.
        assert_eq!(e.relation("r").unwrap().len(), 0, "{mode:?}");
        assert_eq!(e.relation("s").unwrap().len(), 1, "{mode:?}");
        assert_eq!(e.relation("log").unwrap().len(), 1, "{mode:?}");
        assert!(e.check_state().unwrap().is_empty(), "{mode:?}");
    }
}

/// A certified *acyclic* chain (a → b → c) whose recursion needs three
/// rounds also runs under `max_rounds: 1`: the certificate, not the
/// budget, is what bounds certified catalogs.
#[test]
fn certified_chain_exceeds_budget_safely() {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of("a", &[("x", ValueType::Int)]),
        RelationSchema::of("b", &[("x", ValueType::Int)]),
        RelationSchema::of("c", &[("x", ValueType::Int)]),
    ])
    .unwrap();
    for mode in ENFORCING {
        let mut e = Engine::with_config(
            schema.clone(),
            EngineConfig {
                mode,
                max_rounds: 1,
                ..EngineConfig::default()
            },
        );
        e.add_rule_text("WHEN INS(a) IF NOT 1 = 1 THEN insert(b, a@ins)", "a_to_b")
            .unwrap();
        e.add_rule_text("WHEN INS(b) IF NOT 1 = 1 THEN insert(c, b@ins)", "b_to_c")
            .unwrap();
        assert!(e.validate_full().certificate.certified);
        let tx = TransactionBuilder::new()
            .insert_tuple("a", Tuple::of((1_i64,)))
            .build();
        let out = e.execute(&tx).unwrap();
        assert!(out.committed(), "{mode:?}");
        assert_eq!(out.modification.rounds, 2, "{mode:?}");
        assert_eq!(e.relation("c").unwrap().len(), 1, "{mode:?}");
    }
}

/// An unprovable cycle admitted via `allow_cycles` keeps the budget
/// armed; exhausting it reports the surviving cycle path, and the
/// analysis flags it A005 up front.
#[test]
fn unproven_cycle_keeps_budget_and_names_cycle() {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("v", ValueType::Int)]),
        RelationSchema::of("s", &[("m", ValueType::Int)]),
    ])
    .unwrap();
    let mut e = Engine::with_config(
        schema,
        EngineConfig {
            allow_cycles: true,
            max_rounds: 4,
            ..EngineConfig::default()
        },
    );
    e.add_rule_text(
        "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 0) THEN insert(s, r@ins)",
        "ping",
    )
    .unwrap();
    e.add_rule_text(
        "WHEN INS(s) IF NOT forall y (y in s implies y.m >= 0) THEN insert(r, s@ins)",
        "pong",
    )
    .unwrap();
    let report = e.validate_full();
    assert!(!report.certificate.certified);
    assert!(
        report.has(AnalysisCode::UnprovenTermination, "ping"),
        "{report}"
    );
    let tx = TransactionBuilder::new()
        .insert_tuple("r", Tuple::of((1_i64,)))
        .build();
    let err = e.execute(&tx).unwrap_err();
    assert!(
        matches!(err, EngineError::ModificationDiverged { rounds: 4, .. }),
        "{err:?}"
    );
    let rendered = err.to_string();
    assert!(
        rendered.contains("ping -> pong -> ping"),
        "diverged error must name the unproven cycle: {rendered}"
    );
}

/// Refinement drops are visible in the specialization provenance: the
/// skipped selections of the repair catalog are recorded as dropped
/// decisions with a refinement proof.
#[test]
fn refinement_skips_are_recorded_as_drops() {
    let e = repair_engine(EnforcementMode::Static, 32);
    let tx = TransactionBuilder::new()
        .insert_tuple("r", Tuple::of((-5_i64,)))
        .build();
    let prepared = e.prepare(&tx).unwrap();
    let report = prepared.specialization();
    let dropped: Vec<&str> = report
        .decisions
        .iter()
        .filter(|d| matches!(d.outcome, txmod::SpecOutcome::Dropped { .. }))
        .map(|d| d.rule.as_str())
        .collect();
    assert!(
        dropped.contains(&"mark") && dropped.contains(&"logcheck"),
        "round-2 selections must be refinement drops: {dropped:?}"
    );
}
