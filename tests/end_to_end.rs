//! End-to-end integration scenarios spanning every crate: CL parsing →
//! rule compilation → transaction modification → execution → ground-truth
//! verification, plus translation/evaluator agreement on a constraint zoo.

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::Executor;
use tm_calculus::{analyze, eval_constraint, parse_formula, StateSource};
use tm_relational::schema::beer_schema;
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, ValueType};
use tm_translate::trans_c;
use txmod::{EnforcementMode, Engine, EngineConfig};

/// Translation and direct evaluation must agree on a zoo of constraints
/// across a family of database states.
#[test]
fn translation_agrees_with_ground_truth_on_constraint_zoo() {
    let zoo = [
        "forall x (x in beer implies x.alcohol >= 0)",
        "forall x (x in beer implies x.alcohol <= 12.5)",
        "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        "forall x (x in brewery implies forall y (y in beer implies x.name != y.name))",
        "exists x (x in brewery and x.country = 'nl')",
        "CNT(beer) <= 3",
        "SUM(beer, alcohol) <= 30.0",
        "forall x (x in beer implies x.alcohol * 2 <= 25.0)",
        "forall x, y (x in beer and y in beer and x.name = y.name implies x.alcohol = y.alcohol)",
        "forall x (x in beer implies x.alcohol >= 0) and CNT(brewery) <= 4",
        "CNT(beer) <= 2 or CNT(brewery) <= 2",
        "not exists x (x in beer and x.alcohol > 50.0)",
    ];

    // A family of states: empty, consistent, several violation flavours.
    let mut states: Vec<Database> = Vec::new();
    let empty = Database::new(beer_schema().into_shared());
    states.push(empty.clone());
    let mut ok = empty.clone();
    ok.insert("brewery", Tuple::of(("heineken", "amsterdam", "nl")))
        .unwrap();
    ok.insert("brewery", Tuple::of(("guinness", "dublin", "ie")))
        .unwrap();
    ok.insert("beer", Tuple::of(("pils", "lager", "heineken", 5.0_f64)))
        .unwrap();
    ok.insert("beer", Tuple::of(("stout", "stout", "guinness", 4.0_f64)))
        .unwrap();
    states.push(ok.clone());
    let mut negative = ok.clone();
    negative
        .insert("beer", Tuple::of(("anti", "x", "heineken", -2.0_f64)))
        .unwrap();
    states.push(negative);
    let mut orphan = ok.clone();
    orphan
        .insert("beer", Tuple::of(("lost", "x", "ghost", 6.0_f64)))
        .unwrap();
    states.push(orphan);
    let mut crowded = ok.clone();
    for i in 0..5 {
        crowded
            .insert(
                "beer",
                Tuple::of((format!("b{i}"), "x", "heineken", 7.0_f64)),
            )
            .unwrap();
    }
    states.push(crowded);
    let mut name_clash = ok.clone();
    name_clash
        .insert("beer", Tuple::of(("pils", "other", "heineken", 9.0_f64)))
        .unwrap();
    states.push(name_clash);

    for (si, db) in states.iter().enumerate() {
        for cl in zoo {
            let formula = parse_formula(cl).unwrap();
            let info = analyze(&formula, db.schema()).unwrap();
            let truth = eval_constraint(&info, &StateSource(db)).unwrap();
            let program = trans_c(&formula, db.schema()).unwrap();
            let mut scratch = db.clone();
            let committed = Executor
                .execute(&mut scratch, &program.clone().bracket())
                .is_committed();
            assert_eq!(
                truth, committed,
                "state {si}: translation disagrees with evaluator for `{cl}`"
            );
        }
    }
}

/// A multi-transaction session: the engine maintains consistency across a
/// workload mixing good and bad transactions, with stats that add up.
#[test]
fn multi_transaction_session() {
    let mut engine = Engine::new(beer_schema());
    engine
        .define_constraint("domain", "forall x (x in beer implies x.alcohol >= 0)")
        .unwrap();
    engine
        .define_constraint(
            "fk",
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        )
        .unwrap();
    engine
        .load(
            "brewery",
            vec![
                Tuple::of(("heineken", "amsterdam", "nl")),
                Tuple::of(("guinness", "dublin", "ie")),
            ],
        )
        .unwrap();

    let mut commits = 0;
    let mut aborts = 0;
    for i in 0..50 {
        let (name, brewery, alcohol) = match i % 5 {
            0 => (format!("good{i}"), "heineken", 5.0),
            1 => (format!("good{i}"), "guinness", 4.5),
            2 => (format!("neg{i}"), "heineken", -1.0), // domain violation
            3 => (format!("orphan{i}"), "ghost", 5.0),  // fk violation
            _ => (format!("good{i}"), "guinness", 6.0),
        };
        let tx = TransactionBuilder::new()
            .insert_tuple("beer", Tuple::of((name, "t", brewery, alcohol)))
            .build();
        let out = engine.execute(&tx).unwrap();
        if out.committed() {
            commits += 1;
        } else {
            aborts += 1;
        }
        // Invariant after every transaction: constraints hold.
        assert!(engine.check_state().unwrap().is_empty(), "after tx {i}");
    }
    assert_eq!(commits, 30);
    assert_eq!(aborts, 20);
    assert_eq!(engine.relation("beer").unwrap().len(), 30);
    // Logical time advanced once per state transition: the initial bulk
    // load plus one per transaction, commit or abort.
    assert_eq!(engine.database().logical_time(), 51);
}

/// Rule set evolution: removing a rule changes enforcement; triggering
/// graph validation reacts to compensating chains.
#[test]
fn rule_lifecycle_and_validation() {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of("a", &[("x", ValueType::Int)]),
        RelationSchema::of("b", &[("x", ValueType::Int)]),
    ])
    .unwrap();
    let mut engine = Engine::new(schema);
    // Chain: INS(a) → copy to b; rule on b aborts when b has negatives.
    engine
        .add_rule_text("WHEN INS(a) IF NOT 1 = 1 THEN insert(b, a@ins)", "copy")
        .unwrap();
    engine
        .define_constraint("b_nonneg", "forall x (x in b implies x.1 >= 0)")
        .unwrap();
    assert!(!engine.validate().has_cycles());

    // Inserting a negative into a propagates to b and aborts there.
    let tx = TransactionBuilder::new()
        .insert_tuple("a", Tuple::of((-5,)))
        .build();
    let out = engine.execute(&tx).unwrap();
    assert!(!out.committed());
    assert_eq!(out.modification.rounds, 2, "chain takes two rounds");

    // Positive values flow through.
    let tx = TransactionBuilder::new()
        .insert_tuple("a", Tuple::of((5,)))
        .build();
    assert!(engine.execute(&tx).unwrap().committed());
    assert!(engine.relation("b").unwrap().contains(&Tuple::of((5,))));
}

/// The multiset extension: bags behave like SQL tables where sets collapse
/// duplicates (conclusion's future-work item, implemented).
#[test]
fn multiset_extension_round_trip() {
    use tm_relational::Multiset;
    let schema = std::sync::Arc::new(RelationSchema::of("m", &[("v", ValueType::Int)]));
    let mut bag = Multiset::empty(schema);
    for v in [1, 1, 2, 3, 3, 3] {
        bag.insert(Tuple::of((v,))).unwrap();
    }
    assert_eq!(bag.len(), 6);
    assert_eq!(bag.multiplicity(&Tuple::of((3,))), 3);
    let set = bag.to_relation();
    assert_eq!(set.len(), 3);
    let bag2 = Multiset::from_relation(&set);
    assert_eq!(bag2.len(), 3);
    // Bag difference is monus, not set difference.
    let diff = bag.difference(&bag2);
    assert_eq!(diff.len(), 3); // one 1, zero 2, two 3s
    assert_eq!(diff.multiplicity(&Tuple::of((3,))), 2);
}

/// Differential mode and an adversarial mixed transaction: inserts AND
/// deletes of both parent and child in one transaction.
#[test]
fn differential_mode_mixed_updates() {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of("parent", &[("key", ValueType::Int)]),
        RelationSchema::of("child", &[("id", ValueType::Int), ("fk", ValueType::Int)]),
    ])
    .unwrap();
    for mode in [EnforcementMode::Static, EnforcementMode::Differential] {
        let mut engine = Engine::with_config(
            schema.clone(),
            EngineConfig {
                mode,
                ..EngineConfig::default()
            },
        );
        engine
            .define_constraint(
                "fk",
                "forall x (x in child implies exists y (y in parent and x.fk = y.key))",
            )
            .unwrap();
        engine
            .load("parent", vec![Tuple::of((1,)), Tuple::of((2,))])
            .unwrap();
        engine
            .load("child", vec![Tuple::of((10, 1)), Tuple::of((11, 2))])
            .unwrap();

        // Swap: delete parent 2 but reparent its child in the same
        // transaction — consistent, must commit.
        let tx = TransactionBuilder::new()
            .delete_tuple("child", Tuple::of((11, 2)))
            .insert_tuple("child", Tuple::of((11, 1)))
            .delete_tuple("parent", Tuple::of((2,)))
            .build();
        let out = engine.execute(&tx).unwrap();
        assert!(out.committed(), "{mode:?}: consistent swap must commit");

        // Delete a parent that still has children — must abort.
        let tx = TransactionBuilder::new()
            .delete_tuple("parent", Tuple::of((1,)))
            .build();
        let out = engine.execute(&tx).unwrap();
        assert!(!out.committed(), "{mode:?}: dangling children must abort");
    }
}
