//! The recovery invariant suite: an engine recovered from its durability
//! directory is `state_eq`-identical to the never-crashed engine — same
//! relation contents, same catalog, same views — across checkpoints, log
//! replay, DDL, bulk loads, and all four enforcement modes.

use std::path::PathBuf;

use tm_algebra::builder::TransactionBuilder;
use tm_relational::{Tuple, Value};
use txmod::{Durability, DurabilityConfig, EnforcementMode, Engine, RecoveryError, ViewDef};

const MODES: [EnforcementMode; 4] = [
    EnforcementMode::Off,
    EnforcementMode::Dynamic,
    EnforcementMode::Static,
    EnforcementMode::Differential,
];

fn tmpdir(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(format!("recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn constrained(mode: EnforcementMode, level: Durability) -> Engine {
    // The beer schema plus a `strong` relation to hold the workload's
    // materialized view.
    let mut schema = tm_relational::schema::beer_schema();
    let strong = schema.relation("beer").unwrap().renamed("strong");
    schema.add_relation(strong).unwrap();
    let mut e = Engine::with_config(
        schema,
        txmod::EngineConfig {
            mode,
            ..txmod::EngineConfig::default()
        },
    );
    e.config_mut().durability = DurabilityConfig {
        level,
        ..DurabilityConfig::default()
    };
    e.define_constraint("dom", "forall x (x in beer implies x.alcohol >= 0)")
        .unwrap();
    e.define_constraint(
        "ref",
        "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
    )
    .unwrap();
    e
}

fn insert(name: &str, brewery: &str, alcohol: f64) -> tm_algebra::Transaction {
    TransactionBuilder::new()
        .insert_tuple("beer", Tuple::of((name, "ale", brewery, alcohol)))
        .build()
}

/// Assert the recovered engine matches the live one: database state,
/// catalog rules (names, in order), views, and enforcement config.
fn assert_twin(live: &Engine, recovered: &Engine) {
    assert!(
        recovered.database().state_eq(live.database()),
        "recovered database diverges from the live engine"
    );
    let names = |e: &Engine| -> Vec<String> {
        e.catalog().rules().iter().map(|r| r.name.clone()).collect()
    };
    assert_eq!(names(recovered), names(live), "catalog rules diverge");
    let views = |e: &Engine| -> Vec<(String, String)> {
        e.views()
            .iter()
            .map(|v| (v.name.clone(), v.definition.to_string()))
            .collect()
    };
    assert_eq!(views(recovered), views(live), "views diverge");
    assert_eq!(recovered.config(), live.config(), "config diverges");
}

/// The standard workload: DDL before and after commits, a bulk load, an
/// aborted transaction (which must leave no trace), and a view.
fn run_workload(e: &mut Engine) {
    e.load(
        "brewery",
        vec![
            Tuple::of(("heineken", "amsterdam", "nl")),
            Tuple::of(("guinness", "dublin", "ie")),
        ],
    )
    .unwrap();
    assert!(e
        .execute(&insert("pils", "heineken", 5.0))
        .unwrap()
        .committed());
    // Violates `dom` in enforcing modes: aborted, nothing logged. (In Off
    // mode it commits — the recovered twin must reproduce that too.)
    let _ = e.execute(&insert("bad", "heineken", -1.0)).unwrap();
    assert!(e
        .execute(&insert("stout", "guinness", 7.5))
        .unwrap()
        .committed());
    e.define_view(ViewDef::new(
        "strong",
        tm_algebra::parser::parse_relexpr("select[(#3 > 6.0)](beer)").unwrap(),
    ))
    .unwrap();
    assert!(e.remove_rule("ref").unwrap());
    assert!(e
        .execute(&insert("ipa", "nowhere", 6.5))
        .unwrap()
        .committed());
}

#[test]
fn recovery_reproduces_the_live_engine_in_all_modes() {
    for mode in MODES {
        let dir = tmpdir(&format!("modes-{mode:?}"));
        let mut e = constrained(mode, Durability::Fsync);
        e.make_durable(&dir).unwrap();
        run_workload(&mut e);

        let recovered = Engine::recover(&dir).unwrap();
        assert_twin(&e, &recovered.engine);
        assert_eq!(recovered.report.checkpoint_lsn, 0, "{mode:?}");
        assert!(recovered.report.frames_replayed > 0, "{mode:?}");
        assert_eq!(
            Some(recovered.report.recovered_lsn),
            e.durable_lsn(),
            "{mode:?}: recovery must surface the recovered-through LSN"
        );
        assert!(recovered.report.truncated_tail.is_none(), "{mode:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn buffered_level_survives_a_clean_process_exit() {
    // Buffered frames sit in a userspace buffer; dropping the engine (a
    // clean shutdown) flushes them, so recovery reproduces every commit.
    let dir = tmpdir("buffered");
    let mut e = constrained(EnforcementMode::Static, Durability::Buffered);
    e.make_durable(&dir).unwrap();
    run_workload(&mut e);
    let twin = e.clone(); // memory-only twin survives the drop
    drop(e);
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&twin, &recovered.engine);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_truncates_the_log_and_recovery_resumes_after_it() {
    let dir = tmpdir("ckpt");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    assert!(e
        .execute(&insert("pils", "heineken", 5.0))
        .unwrap()
        .committed());

    let ckpt_lsn = e.checkpoint().unwrap();
    assert!(ckpt_lsn > 0);
    // Post-checkpoint commits replay on top of the snapshot.
    assert!(e
        .execute(&insert("more", "heineken", 5.5))
        .unwrap()
        .committed());

    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);
    assert_eq!(recovered.report.checkpoint_lsn, ckpt_lsn);
    assert_eq!(recovered.report.frames_replayed, 1);
    assert!(recovered.report.recovered_lsn > ckpt_lsn);

    // And recovery from a checkpoint with an empty log is exact too.
    let mut e2 = recovered.engine;
    let ckpt2 = e2.checkpoint().unwrap();
    let again = Engine::recover(&dir).unwrap();
    assert_twin(&e2, &again.engine);
    assert_eq!(again.report.checkpoint_lsn, ckpt2);
    assert_eq!(again.report.frames_replayed, 0);
    assert_eq!(again.report.recovered_lsn, ckpt2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn automatic_checkpoints_fire_by_frame_count() {
    let dir = tmpdir("auto");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.config_mut().durability.checkpoint_every = 3;
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    for i in 0..7 {
        let name = format!("beer{i}");
        assert!(e
            .execute(&insert(&name, "heineken", 5.0))
            .unwrap()
            .committed());
    }
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);
    // 8 frames at checkpoint_every=3: at least two checkpoints happened,
    // so recovery starts well past LSN 0 and replays at most 2 frames.
    assert!(recovered.report.checkpoint_lsn >= 6);
    assert!(recovered.report.frames_replayed <= 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_auto_checkpoint_does_not_retract_a_durable_commit() {
    let dir = tmpdir("ckpt-fail");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.config_mut().durability.checkpoint_every = 2;
    e.make_durable(&dir).unwrap();
    // Block the auto-checkpoint that the second frame will trigger: a
    // directory squatting on its temp path makes write_atomic fail.
    let block = dir.join("checkpoint-00000000000000000002.ckpt.tmp");
    std::fs::create_dir(&block).unwrap();

    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap(); // frame 1
                   // Frame 2 triggers the (blocked) checkpoint. The commit's frame is
                   // already durable, so the commit must succeed — the checkpoint error
                   // is deferred, not turned into a phantom commit failure that replay
                   // would resurrect.
    assert!(e
        .execute(&insert("pils", "heineken", 5.0))
        .unwrap()
        .committed());
    let err = e
        .take_checkpoint_error()
        .expect("checkpoint failure deferred");
    assert!(matches!(err, txmod::EngineError::Durability(_)), "{err:?}");
    assert!(e.take_checkpoint_error().is_none(), "error taken once");
    // Disk agrees with the reported success: recovery replays the commit.
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);

    // The next append retries the checkpoint (different LSN, unblocked
    // temp path) and succeeds: truncation was delayed, never lost.
    std::fs::remove_dir(&block).unwrap();
    assert!(e
        .execute(&insert("stout", "heineken", 7.5))
        .unwrap()
        .committed());
    assert!(e.take_checkpoint_error().is_none());
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);
    assert_eq!(recovered.report.checkpoint_lsn, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_load_rolls_back_only_what_it_inserted() {
    let dir = tmpdir("load-undo");
    let points = txmod::Failpoints::none();
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable_with_failpoints(&dir, points.clone())
        .unwrap();
    let heineken = Tuple::of(("heineken", "amsterdam", "nl"));
    let guinness = Tuple::of(("guinness", "dublin", "ie"));
    e.load("brewery", vec![heineken.clone()]).unwrap();

    // A failed load whose batch overlaps committed rows must undo only
    // the tuples it inserted — not delete the pre-existing ones.
    points.arm(txmod::FailPlan {
        fail_fsyncs: 1,
        ..txmod::FailPlan::default()
    });
    let err = e
        .load("brewery", vec![heineken.clone(), guinness.clone()])
        .unwrap_err();
    assert!(matches!(err, txmod::EngineError::Durability(_)), "{err:?}");
    let brewery = e.relation("brewery").unwrap();
    assert!(
        brewery.contains(&heineken),
        "failed load deleted a pre-existing committed row"
    );
    assert!(!brewery.contains(&guinness));
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);

    // The fault cleared; the same load goes through.
    assert_eq!(e.load("brewery", vec![heineken, guinness]).unwrap(), 1);
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn aborted_make_durable_leaves_no_stale_log() {
    // make_durable removes the previous incarnation's WAL *before* the
    // fresh checkpoint-0 exists: failing in between must yield an
    // explicit NoCheckpoint, never checkpoint-0 plus a stale log whose
    // frames would silently replay on top of the new snapshot.
    let dir = tmpdir("attach-abort");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    assert!(e
        .execute(&insert("pils", "heineken", 5.0))
        .unwrap()
        .committed());
    drop(e);

    // Second attach dies between WAL removal and the checkpoint write
    // (a directory squatting on the checkpoint's temp path).
    let block = dir.join("checkpoint-00000000000000000000.ckpt.tmp");
    std::fs::create_dir(&block).unwrap();
    let mut e2 = constrained(EnforcementMode::Static, Durability::Fsync);
    assert!(e2.make_durable(&dir).is_err());
    assert!(
        !dir.join("wal.log").exists(),
        "the stale WAL must be gone before the checkpoint is attempted"
    );
    let err = Engine::recover(&dir).unwrap_err();
    assert!(matches!(err, RecoveryError::NoCheckpoint { .. }), "{err:?}");

    // Unblocked, the attach completes and recovery sees the new world.
    std::fs::remove_dir(&block).unwrap();
    e2.make_durable(&dir).unwrap();
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e2, &recovered.engine);
    assert_eq!(recovered.engine.relation("beer").unwrap().len(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_none_is_checkpoint_only() {
    let dir = tmpdir("none");
    let mut e = constrained(EnforcementMode::Static, Durability::None);
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    assert!(e
        .execute(&insert("pils", "heineken", 5.0))
        .unwrap()
        .committed());
    // Nothing was logged: recovery sees only the (empty) initial snapshot.
    let recovered = Engine::recover(&dir).unwrap();
    assert_eq!(recovered.report.frames_replayed, 0);
    assert_eq!(recovered.engine.relation("beer").unwrap().len(), 0);

    // An explicit checkpoint persists the current state.
    e.checkpoint().unwrap();
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prepared_sessions_log_their_commits() {
    let dir = tmpdir("prepared");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    let template = TransactionBuilder::new().insert_params("beer", 4).build();
    let prepared = e.prepare(&template).unwrap();
    for i in 0..5 {
        let name = format!("b{i}");
        let bound = prepared
            .bind(&[
                Value::str(&name),
                Value::str("ale"),
                Value::str("heineken"),
                Value::double(4.0 + i as f64),
            ])
            .unwrap();
        assert!(e.execute_bound(&bound).unwrap().committed());
    }
    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);
    assert_eq!(recovered.engine.relation("beer").unwrap().len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_engine_continues_durably() {
    // Recover, keep committing, recover again: the log reopens at the
    // right LSN and the second recovery sees both generations.
    let dir = tmpdir("continue");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    assert!(e
        .execute(&insert("one", "heineken", 5.0))
        .unwrap()
        .committed());
    let first_lsn = e.durable_lsn().unwrap();
    drop(e);

    let mut e = Engine::recover(&dir).unwrap().engine;
    assert!(e
        .execute(&insert("two", "heineken", 5.5))
        .unwrap()
        .committed());
    assert!(e.durable_lsn().unwrap() > first_lsn);

    let recovered = Engine::recover(&dir).unwrap();
    assert_twin(&e, &recovered.engine);
    assert_eq!(recovered.engine.relation("beer").unwrap().len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_directory_reports_no_checkpoint() {
    let dir = tmpdir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let err = Engine::recover(&dir).unwrap_err();
    assert!(
        matches!(err, RecoveryError::NoCheckpoint { ref rejected, .. } if rejected.is_empty()),
        "got {err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damaged_newest_checkpoint_falls_back_to_the_previous_one() {
    let dir = tmpdir("fallback");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    assert!(e
        .execute(&insert("pils", "heineken", 5.0))
        .unwrap()
        .committed());
    // Fabricate a newer-but-corrupt checkpoint next to the valid LSN-0 one.
    std::fs::write(
        dir.join("checkpoint-00000000000000000099.ckpt"),
        b"not a checkpoint",
    )
    .unwrap();
    let recovered = Engine::recover(&dir).unwrap();
    // Fallback lands on checkpoint 0 and replays the full log: the state
    // matches the live engine exactly.
    assert_eq!(recovered.report.checkpoint_lsn, 0);
    assert_twin(&e, &recovered.engine);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clones_are_memory_only_twins() {
    let dir = tmpdir("clone");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable(&dir).unwrap();
    let twin = e.clone();
    assert!(
        twin.durable_lsn().is_none(),
        "clones must not share the WAL"
    );
    assert!(twin.database().state_eq(e.database()));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression: the concurrent engine's commit-epoch counter must resume
/// **past** every replayed LSN after recovery. If it restarted at zero, a
/// post-recovery session's snapshot epoch could collide with an epoch the
/// previous incarnation already used, and first-committer-wins validation
/// (which compares epochs numerically) would silently skip differentials.
#[test]
fn recovered_engine_resumes_epochs_past_replayed_lsns() {
    let dir = tmpdir("concurrent-epochs");
    let mut e = constrained(EnforcementMode::Static, Durability::Fsync);
    e.make_durable(&dir).unwrap();
    e.load("brewery", vec![Tuple::of(("guinness", "dublin", "ie"))])
        .unwrap();

    // Drive a few commits through the concurrent engine pre-"crash".
    let ce = txmod::ConcurrentEngine::new(e);
    let mut s = ce.session();
    let template = tm_algebra::builder::TransactionBuilder::new()
        .insert_params("beer", 4)
        .build();
    let id = s.prepare(&template).unwrap();
    for i in 0..5 {
        let out = s
            .execute_prepared(
                id,
                &[
                    Value::str(format!("b{i}")),
                    Value::str("ale"),
                    Value::str("guinness"),
                    Value::double(5.0),
                ],
            )
            .unwrap();
        assert!(out.committed());
    }
    let pre_crash_epoch = ce.committed_epoch();
    assert!(pre_crash_epoch >= 5, "five commits must advance the epoch");
    drop(s);
    drop(ce); // crash: the engine is gone, the directory survives

    let recovered = Engine::recover(&dir).unwrap();
    let ce = txmod::ConcurrentEngine::new(recovered.engine);
    assert!(
        ce.committed_epoch() >= pre_crash_epoch,
        "recovered epoch counter ({}) regressed below the pre-crash epoch ({pre_crash_epoch})",
        ce.committed_epoch()
    );
    // New commits land at strictly fresh epochs.
    let mut s = ce.session();
    let id = s.prepare(&template).unwrap();
    let out = s
        .execute_prepared(
            id,
            &[
                Value::str("post-crash"),
                Value::str("ale"),
                Value::str("guinness"),
                Value::double(5.0),
            ],
        )
        .unwrap();
    assert!(out.committed());
    assert!(
        s.last_commit_epoch().unwrap() > pre_crash_epoch,
        "post-recovery commit reused a pre-crash epoch"
    );
    assert_eq!(ce.snapshot().relation("beer").unwrap().len(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}
