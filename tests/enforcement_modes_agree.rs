//! Engine-level regression for the hash execution switch: all four
//! [`EnforcementMode`]s must still behave consistently on a scripted
//! mixed workload. The three enforcing modes (Dynamic, Static,
//! Differential) must agree with each other on every verdict and on every
//! intermediate state — their checks now run through hash joins and
//! indexed quantifiers — and `Off` must commit everything while the
//! ground-truth checker flags exactly the violated constraints.

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::Transaction;
use tm_relational::Tuple;
use txmod::engine::beer_engine;
use txmod::{EnforcementMode, Engine};

fn constrained(mode: EnforcementMode) -> Engine {
    let mut e = beer_engine(mode);
    e.define_constraint("dom", "forall x (x in beer implies x.alcohol >= 0)")
        .unwrap();
    e.define_constraint(
        "ref",
        "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
    )
    .unwrap();
    e.define_constraint(
        "grow_only",
        "forall x (x in brewery@pre implies exists y (y in brewery and x == y))",
    )
    .unwrap();
    e.load(
        "brewery",
        vec![
            Tuple::of(("heineken", "amsterdam", "nl")),
            Tuple::of(("guinness", "dublin", "ie")),
        ],
    )
    .unwrap();
    e
}

/// The scripted workload: (label, transaction, expected verdict under
/// enforcement).
fn script() -> Vec<(&'static str, Transaction, bool)> {
    vec![
        (
            "valid insert",
            TransactionBuilder::new()
                .insert_tuple("beer", Tuple::of(("pils", "lager", "heineken", 5.0_f64)))
                .build(),
            true,
        ),
        (
            "negative alcohol",
            TransactionBuilder::new()
                .insert_tuple("beer", Tuple::of(("bad", "lager", "heineken", -1.0_f64)))
                .build(),
            false,
        ),
        (
            "orphan brewery",
            TransactionBuilder::new()
                .insert_tuple("beer", Tuple::of(("orphan", "ale", "nowhere", 5.0_f64)))
                .build(),
            false,
        ),
        (
            "second valid insert",
            TransactionBuilder::new()
                .insert_tuple("beer", Tuple::of(("stout", "stout", "guinness", 4.2_f64)))
                .build(),
            true,
        ),
        (
            "brewery deletion breaks grow_only",
            TransactionBuilder::new()
                .delete_tuple("brewery", Tuple::of(("heineken", "amsterdam", "nl")))
                .build(),
            false,
        ),
        (
            "mixed batch with one violation",
            TransactionBuilder::new()
                .insert_tuple("beer", Tuple::of(("ale", "ale", "guinness", 5.5_f64)))
                .insert_tuple("beer", Tuple::of(("ghost", "ale", "atlantis", 5.5_f64)))
                .build(),
            false,
        ),
    ]
}

#[test]
fn enforcing_modes_agree_on_verdicts_and_states() {
    let mut engines: Vec<(EnforcementMode, Engine)> = [
        EnforcementMode::Dynamic,
        EnforcementMode::Static,
        EnforcementMode::Differential,
    ]
    .into_iter()
    .map(|m| (m, constrained(m)))
    .collect();

    for (label, tx, expected_commit) in script() {
        let mut verdicts = Vec::new();
        for (mode, e) in engines.iter_mut() {
            let out = e.execute(&tx).unwrap();
            verdicts.push((*mode, out.committed()));
            assert_eq!(
                out.committed(),
                expected_commit,
                "{label} under {mode:?}: expected commit={expected_commit}"
            );
            assert!(
                e.check_state().unwrap().is_empty(),
                "{label} under {mode:?}: state must stay consistent"
            );
        }
        // All enforcing modes agree among themselves.
        assert!(
            verdicts.windows(2).all(|w| w[0].1 == w[1].1),
            "{label}: verdicts diverged: {verdicts:?}"
        );
        // And on the resulting states.
        for rel in ["beer", "brewery"] {
            let reference = engines[0].1.relation(rel).unwrap().sorted_tuples();
            for (mode, e) in engines.iter().skip(1) {
                assert_eq!(
                    e.relation(rel).unwrap().sorted_tuples(),
                    reference,
                    "{label}: state of `{rel}` diverged under {mode:?}"
                );
            }
        }
    }
}

#[test]
fn off_mode_commits_everything_and_ground_truth_flags_it() {
    let mut e = constrained(EnforcementMode::Off);
    for (label, tx, _) in script() {
        assert!(
            e.execute(&tx).unwrap().committed(),
            "{label}: Off mode never aborts"
        );
    }
    let violated = e.check_state().unwrap();
    assert!(
        violated.contains(&"dom".to_owned()) && violated.contains(&"ref".to_owned()),
        "ground truth must flag the violations Off let through: {violated:?}"
    );
}
