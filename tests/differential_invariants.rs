//! Property tests of the executor's auxiliary-relation invariants
//! (Section 4.1): after any statement sequence, the differentials are the
//! exact net change —
//!
//! ```text
//! R@ins = R − R@pre        R@del = R@pre − R
//! (R@pre ∪ R@ins) − R@del = R
//! ```
//!
//! The invariants are asserted *from inside the transaction* using `alarm`
//! statements over set differences: the transaction commits iff every
//! difference is empty.

use proptest::prelude::*;

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{Executor, RelExpr};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, ValueType};

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![RelationSchema::of("r", &[("a", ValueType::Int)])]).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(i64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..10i64).prop_map(Op::Insert),
            (0..10i64).prop_map(Op::Delete),
        ],
        0..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn differentials_are_net_changes(seed in prop::collection::vec(0..10i64, 0..10), operations in ops()) {
        let mut db = Database::new(schema().into_shared());
        for v in &seed {
            db.insert("r", Tuple::of((*v,))).unwrap();
        }

        let mut b = TransactionBuilder::new();
        for op in &operations {
            b = match op {
                Op::Insert(v) => b.insert_tuple("r", Tuple::of((*v,))),
                Op::Delete(v) => b.delete_tuple("r", Tuple::of((*v,))),
            };
        }
        // Invariant checks, evaluated after all updates:
        //   r@ins = r − r@pre          r@del = r@pre − r
        //   (r@pre ∪ r@ins) − r@del = r
        // alarm fires iff the symmetric differences are non-empty.
        let ins = RelExpr::relation("r@ins");
        let del = RelExpr::relation("r@del");
        let pre = RelExpr::relation("r@pre");
        let r = RelExpr::relation("r");
        let pairs = [
            (ins.clone(), r.clone().difference(pre.clone())),
            (del.clone(), pre.clone().difference(r.clone())),
            (
                pre.clone().union(ins.clone()).difference(del.clone()),
                r.clone(),
            ),
        ];
        for (lhs, rhs) in pairs {
            b = b
                .alarm(lhs.clone().difference(rhs.clone()))
                .alarm(rhs.difference(lhs));
        }
        // Differentials must also be disjoint: r@ins ∩ r@del = ∅.
        b = b.alarm(ins.intersect(del));

        let tx = b.build();
        let outcome = Executor.execute(&mut db, &tx);
        prop_assert!(
            outcome.is_committed(),
            "invariant violated for seed {:?} ops {:?}: {:?}",
            seed,
            operations,
            outcome
        );
    }

    /// The post-state equals the pre-state with the net differentials
    /// applied externally as well: replaying ops on a hash set matches.
    #[test]
    fn executor_matches_model(seed in prop::collection::vec(0..10i64, 0..10), operations in ops()) {
        let mut db = Database::new(schema().into_shared());
        let mut model: std::collections::BTreeSet<i64> = seed.iter().copied().collect();
        for v in &seed {
            db.insert("r", Tuple::of((*v,))).unwrap();
        }
        let mut b = TransactionBuilder::new();
        for op in &operations {
            b = match op {
                Op::Insert(v) => {
                    model.insert(*v);
                    b.insert_tuple("r", Tuple::of((*v,)))
                }
                Op::Delete(v) => {
                    model.remove(v);
                    b.delete_tuple("r", Tuple::of((*v,)))
                }
            };
        }
        let outcome = Executor.execute(&mut db, &b.build());
        prop_assert!(outcome.is_committed());
        let rel = db.relation("r").unwrap();
        prop_assert_eq!(rel.len(), model.len());
        for v in model {
            prop_assert!(rel.contains(&Tuple::of((v,))));
        }
    }
}
