//! Differential soundness harness for prepare-time constraint
//! specialization.
//!
//! The specializer rewrites the checks `ModT` appends to a transaction:
//! rules the template provably cannot violate are dropped with a proof,
//! domain and referential checks over enumerable insert differentials
//! are reduced to per-row point probes, and everything else is kept
//! generic. The claim is that the rewrite is *semantically invisible* —
//! a specialized plan commits, aborts, and mutates the database exactly
//! as the generic plan would.
//!
//! This harness tests the claim differentially: twin engines, identical
//! except for [`EngineConfig::specialize`], over random catalogs ×
//! random parameterized templates × random bindings (and separately
//! random ground transactions, which exercise the drop-proof path that
//! parameterized rows never take), in **all four** enforcement modes.
//! Verdicts and final states must agree step for step, and the
//! specialized engine must end in a consistent state under every
//! enforcing mode.

use proptest::prelude::*;

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{CmpOp, ScalarExpr, Transaction};
use tm_relational::{DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use txmod::{CheckSummary, EnforcementMode, Engine, EngineConfig};

const MODES: [EnforcementMode; 4] = [
    EnforcementMode::Off,
    EnforcementMode::Dynamic,
    EnforcementMode::Static,
    EnforcementMode::Differential,
];

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "parent",
            &[("key", ValueType::Int), ("cap", ValueType::Int)],
        ),
        RelationSchema::of(
            "child",
            &[
                ("id", ValueType::Int),
                ("fk", ValueType::Int),
                ("amount", ValueType::Int),
            ],
        ),
    ])
    .unwrap()
}

/// The constraint pool. The first three specialize (two reducible
/// shapes plus a generic aggregate); the rest stay generic (nested
/// quantification, transition constraint, aggregate), so every random
/// catalog mixes dropped, probed, and generic provenance.
fn constraint_pool() -> Vec<(&'static str, &'static str)> {
    vec![
        ("domain", "forall x (x in child implies x.amount >= 0)"),
        (
            "referential",
            "forall x (x in child implies exists y (y in parent and x.fk = y.key))",
        ),
        ("cap_count", "CNT(child) <= 12"),
        (
            "exclusion",
            "forall x (x in parent implies forall y (y in child implies x.key != y.amount))",
        ),
        (
            "persist",
            "forall x (x in parent@pre implies exists y (y in parent and x == y))",
        ),
        ("sum_cap", "SUM(child, amount) <= 600"),
    ]
}

fn seed_engine(
    mode: EnforcementMode,
    specialize: bool,
    constraints: &[usize],
    n_parents: usize,
    n_children: usize,
) -> Engine {
    let mut e = Engine::with_config(
        schema(),
        EngineConfig {
            mode,
            specialize,
            ..EngineConfig::default()
        },
    );
    let pool = constraint_pool();
    for &i in constraints {
        let (name, src) = pool[i];
        e.define_constraint(name, src).unwrap();
    }
    e.load(
        "parent",
        (0..n_parents as i64).map(|k| Tuple::of((k, 100 + k))),
    )
    .unwrap();
    e.load(
        "child",
        (0..n_children as i64).map(|i| Tuple::of((i, i % n_parents.max(1) as i64, 30 + i))),
    )
    .unwrap();
    e
}

/// The template pool: every shape the specializer distinguishes.
/// Parameterized inserts become point probes, parameterized deletes
/// poison the differential (generic fallback), and the mixed template
/// carries one constant row (drop-proof candidate) next to a
/// parameterized one (probe).
fn template(kind: usize) -> Transaction {
    match kind {
        0 => TransactionBuilder::new().insert_params("child", 3).build(),
        1 => TransactionBuilder::new().insert_params("parent", 2).build(),
        2 => TransactionBuilder::new().delete_params("child", 3).build(),
        _ => TransactionBuilder::new()
            .insert_tuple("child", Tuple::of((90_i64, 0_i64, 45_i64)))
            .insert_params("child", 3)
            .build(),
    }
}

fn values_of(kind: usize, step: (i64, i64, i64)) -> Vec<Value> {
    match kind {
        // parent(key, cap): keys overlap the seed range so exclusion and
        // duplicate keys come up; caps are unconstrained.
        1 => vec![Value::Int(step.0 % 8), Value::Int(step.2)],
        // child(id, fk, amount): fk = -1 and fk >= n_parents are orphans,
        // negative amounts violate the domain rule.
        _ => vec![Value::Int(step.0), Value::Int(step.1), Value::Int(step.2)],
    }
}

#[derive(Debug, Clone)]
enum Op {
    InsertParent(i64, i64),
    InsertChild(i64, i64, i64),
    DeleteParent(i64),
    DeleteChild(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8i64, 0..5i64).prop_map(|(k, c)| Op::InsertParent(k, c)),
        (0..20i64, -1..8i64, -3..60i64).prop_map(|(i, f, a)| Op::InsertChild(i, f, a)),
        (0..8i64).prop_map(Op::DeleteParent),
        (0..20i64).prop_map(Op::DeleteChild),
    ]
}

fn build_tx(ops: &[Op]) -> Transaction {
    let mut b = TransactionBuilder::new();
    for op in ops {
        b = match op {
            Op::InsertParent(k, c) => b.insert_tuple("parent", Tuple::of((*k, *c))),
            Op::InsertChild(i, f, a) => b.insert_tuple("child", Tuple::of((*i, *f, *a))),
            Op::DeleteParent(k) => b.delete_where(
                "parent",
                ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(*k)),
            ),
            Op::DeleteChild(i) => b.delete_where(
                "child",
                ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(*i)),
            ),
        };
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random catalogs × random parameterized templates × random binding
    /// streams: the specialized prepared plan and generic ad-hoc
    /// execution of the substituted source agree on every verdict and on
    /// the final state, in all four enforcement modes.
    #[test]
    fn specialized_prepared_plans_are_semantically_invisible(
        kind in 0usize..4,
        cons in prop::collection::vec(0usize..6, 1..4),
        steps in prop::collection::vec((0..20i64, -1..8i64, -3..60i64), 1..10),
        n_parents in 1usize..6,
        n_children in 0usize..8,
    ) {
        let mut cons = cons;
        cons.sort_unstable();
        cons.dedup();
        let src = template(kind);
        for mode in MODES {
            let mut spec_engine = seed_engine(mode, true, &cons, n_parents, n_children);
            let mut gen_engine = seed_engine(mode, false, &cons, n_parents, n_children);
            let mut session = spec_engine.session();
            let id = session.prepare(&src).unwrap();
            for step in &steps {
                let values = values_of(kind, *step);
                let out_s = session.execute_prepared(id, &values).unwrap();
                prop_assert!(out_s.reused_plan, "{mode:?}: specialized plan must be reused");
                let ground = src.bind_params(&values);
                prop_assert_eq!(ground.param_count(), 0);
                let out_g = gen_engine.execute(&ground).unwrap();
                prop_assert_eq!(
                    out_s.committed(),
                    out_g.committed(),
                    "{:?} template {} step {:?}: specialized and generic verdicts diverged",
                    mode,
                    kind,
                    step
                );
            }
            drop(session);
            for rel in ["parent", "child"] {
                prop_assert_eq!(
                    spec_engine.relation(rel).unwrap().sorted_tuples(),
                    gen_engine.relation(rel).unwrap().sorted_tuples(),
                    "{:?} template {}: state of `{}` diverged",
                    mode,
                    kind,
                    rel
                );
            }
            if mode != EnforcementMode::Off {
                prop_assert!(
                    spec_engine.check_state().unwrap().is_empty(),
                    "{mode:?}: specialized engine ended inconsistent"
                );
            }
        }
    }

    /// Random *ground* transactions — the only path where the drop proof
    /// can fire (constant rows fold; parameters never do): twin engines
    /// differing only in `specialize` agree on verdict and state.
    #[test]
    fn specialization_of_ground_transactions_is_invisible(
        ops in prop::collection::vec(op_strategy(), 1..8),
        cons in prop::collection::vec(0usize..6, 1..4),
        n_parents in 1usize..6,
        n_children in 0usize..8,
    ) {
        let tx = build_tx(&ops);
        let mut cons = cons;
        cons.sort_unstable();
        cons.dedup();
        for mode in MODES {
            let mut spec_engine = seed_engine(mode, true, &cons, n_parents, n_children);
            let mut gen_engine = seed_engine(mode, false, &cons, n_parents, n_children);
            let out_s = spec_engine.execute(&tx).unwrap();
            let out_g = gen_engine.execute(&tx).unwrap();
            prop_assert_eq!(
                out_s.committed(),
                out_g.committed(),
                "{:?}: verdicts diverged on {}",
                mode,
                tx
            );
            if mode == EnforcementMode::Off {
                // Off runs no checks: the summary must be all zeros.
                prop_assert_eq!(out_s.checks, CheckSummary::default());
            }
            for rel in ["parent", "child"] {
                prop_assert_eq!(
                    spec_engine.relation(rel).unwrap().sorted_tuples(),
                    gen_engine.relation(rel).unwrap().sorted_tuples(),
                    "{:?}: state of `{}` diverged",
                    mode,
                    rel
                );
            }
            if mode != EnforcementMode::Off {
                prop_assert!(spec_engine.check_state().unwrap().is_empty());
            }
        }
    }
}

/// A constant row whose weakest precondition folds to false is dropped
/// with a proof, and the drop is observable only in the check summary —
/// never in the verdict or the state.
#[test]
fn drop_proofs_spare_constant_safe_rows() {
    let mut spec = seed_engine(EnforcementMode::Static, true, &[0], 2, 0);
    let mut gen = seed_engine(EnforcementMode::Static, false, &[0], 2, 0);
    let tx = TransactionBuilder::new()
        .insert_tuple("child", Tuple::of((1_i64, 0_i64, 3_i64)))
        .build();
    let out_s = spec.execute(&tx).unwrap();
    let out_g = gen.execute(&tx).unwrap();
    assert!(out_s.committed() && out_g.committed());
    assert_eq!(out_s.checks.skipped, 1, "amount 3 >= 0 is a drop proof");
    assert_eq!(out_s.checks.probed, 0);
    assert_eq!(out_s.checks.evaluated, 0);
    // The generic twin evaluates the check it could have dropped.
    assert_eq!(out_g.checks.skipped, 0);
    assert_eq!(out_g.checks.evaluated, 1);
    assert_eq!(
        spec.relation("child").unwrap().sorted_tuples(),
        gen.relation("child").unwrap().sorted_tuples()
    );
}

/// In Static mode every catalog rule is accounted for exactly once:
/// `skipped + probed + evaluated` covers the whole catalog, with
/// untriggered rules counted as skipped.
#[test]
fn summary_accounts_for_every_catalog_rule() {
    // domain + referential (probes), cap_count (generic aggregate), and
    // a parent-only rule the child insert never triggers (skipped).
    let mut e = seed_engine(EnforcementMode::Static, true, &[0, 1, 2], 2, 0);
    e.define_constraint("parent_dom", "forall x (x in parent implies x.cap >= 0)")
        .unwrap();
    let mut session = e.session();
    let id = session
        .prepare(&TransactionBuilder::new().insert_params("child", 3).build())
        .unwrap();
    let out = session
        .execute_prepared(id, &[Value::Int(1), Value::Int(0), Value::Int(5)])
        .unwrap();
    assert!(out.committed());
    assert_eq!(out.checks.skipped, 1, "parent_dom is untriggered");
    assert_eq!(
        out.checks.probed, 2,
        "domain and referential reduce to probes"
    );
    assert_eq!(out.checks.evaluated, 1, "the aggregate stays generic");
    assert_eq!(
        out.checks.skipped + out.checks.probed + out.checks.evaluated,
        4,
        "every catalog rule accounted for"
    );
}
