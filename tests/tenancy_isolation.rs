//! Tenancy isolation: tenants behind one server share nothing but the
//! process.
//!
//! Two tenants with *conflicting* catalogs — the same relation name
//! carrying different schemas, constraints, and enforcement modes — take
//! interleaved traffic through separate connections. Each tenant's
//! per-transaction verdicts and final database must be exactly what a
//! solo engine run of its own request stream produces (`state_eq`), and
//! a violation storm hammering one tenant must not perturb the other's
//! metrics or verdicts.

use std::sync::Arc;

use tm_bench::scenarios::{self, BANK_AUDIT_RULE};
use tm_relational::{DatabaseSchema, RelationSchema, Value, ValueType};
use tm_server::{serve, Client, ServerConfig, TenantRegistry, TenantSpec};
use txmod::{EnforcementMode, Engine, EngineConfig, Prepared};

/// Tenant "alpha": the bank catalog — `account(id, owner, balance)`
/// guarded by the overdraft floor and mirrored by the compensating audit
/// rule — in Static mode.
fn alpha_engine() -> Engine {
    let scenario = scenarios::bank();
    let mut engine = scenario.engine(EnforcementMode::Static);
    engine.add_rule_text(BANK_AUDIT_RULE, "bank_audit").unwrap();
    engine
}

/// Tenant "beta": a *conflicting* catalog — the same relation name
/// `account`, but two columns, a balance **ceiling** instead of a floor,
/// and Differential mode. Alpha's commits would violate beta's catalog
/// and vice versa; isolation means neither ever sees the other's.
fn beta_engine() -> Engine {
    let schema = DatabaseSchema::from_relations(vec![RelationSchema::of(
        "account",
        &[("id", ValueType::Int), ("balance", ValueType::Int)],
    )])
    .unwrap();
    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            mode: EnforcementMode::Differential,
            ..EngineConfig::default()
        },
    );
    engine
        .define_constraint(
            "balance_capped",
            "forall x (x in account implies x.balance <= 1000)",
        )
        .unwrap();
    engine
}

/// Alpha's request stream: every fifth deposit overdraws (aborts under
/// alpha's floor; would be *fine* under beta's ceiling).
fn alpha_params(i: i64) -> Vec<Value> {
    let balance = if i % 5 == 4 { -10 } else { 10 + i };
    vec![
        Value::Int(i),
        Value::str(format!("owner-{i}")),
        Value::Int(balance),
    ]
}

/// Beta's request stream: every third row busts the cap (aborts under
/// beta's ceiling; would be *fine* under alpha's floor).
fn beta_params(i: i64) -> Vec<Value> {
    let balance = if i % 3 == 2 { 5_000 } else { i };
    vec![Value::Int(i), Value::Int(balance)]
}

/// Run one tenant's stream solo on a bare engine; returns per-request
/// commit verdicts and leaves the final state in the engine.
fn solo(engine: &mut Engine, template: &str, params: &[Vec<Value>]) -> Vec<bool> {
    let tx = tm_algebra::parser::parse_program(template)
        .unwrap()
        .bracket();
    let prepared: Prepared = engine.prepare(&tx).unwrap();
    params
        .iter()
        .map(|p| {
            let bound = prepared.bind(p).unwrap();
            engine.execute_bound(&bound).unwrap().committed()
        })
        .collect()
}

#[test]
fn interleaved_tenants_match_solo_runs() {
    const N: i64 = 120;
    let registry = Arc::new(TenantRegistry::new());
    registry.add("alpha", alpha_engine(), TenantSpec::default());
    registry.add("beta", beta_engine(), TenantSpec::default());
    let handle = serve(registry.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();

    let alpha_template = "insert(account, row(?0, ?1, ?2))";
    let beta_template = "insert(account, row(?0, ?1))";
    let mut ca = Client::connect(addr, "alpha").unwrap();
    let mut cb = Client::connect(addr, "beta").unwrap();
    let sa = ca.prepare(alpha_template).unwrap();
    let sb = cb.prepare(beta_template).unwrap();

    // Strictly interleaved traffic: alpha, beta, alpha, beta, …
    let mut served_alpha = Vec::new();
    let mut served_beta = Vec::new();
    for i in 0..N {
        served_alpha.push(ca.execute(sa, alpha_params(i)).unwrap().committed);
        served_beta.push(cb.execute(sb, beta_params(i)).unwrap().committed);
    }
    handle.shutdown();

    // Solo runs of the same streams on bare engines.
    let mut solo_alpha = alpha_engine();
    let mut solo_beta = beta_engine();
    let ap: Vec<_> = (0..N).map(alpha_params).collect();
    let bp: Vec<_> = (0..N).map(beta_params).collect();
    let solo_alpha_verdicts = solo(&mut solo_alpha, alpha_template, &ap);
    let solo_beta_verdicts = solo(&mut solo_beta, beta_template, &bp);

    // Per-transaction verdicts match — aborts landed on exactly the
    // requests each tenant's own catalog rejects.
    assert_eq!(served_alpha, solo_alpha_verdicts);
    assert_eq!(served_beta, solo_beta_verdicts);
    assert!(served_alpha.iter().any(|c| !c));
    assert!(served_beta.iter().any(|c| !c));
    // Alpha and beta rejected *different* requests (conflicting
    // catalogs actually conflict).
    assert_ne!(served_alpha, served_beta);

    // Final states are state_eq to the solo runs.
    let ta = registry.get("alpha").unwrap();
    let tb = registry.get("beta").unwrap();
    assert!(
        ta.engine.lock().database().state_eq(solo_alpha.database()),
        "alpha's served state must equal its solo run"
    );
    assert!(
        tb.engine.lock().database().state_eq(solo_beta.database()),
        "beta's served state must equal its solo run"
    );
}

#[test]
fn violation_storm_does_not_perturb_neighbor() {
    const N: i64 = 300;
    let registry = Arc::new(TenantRegistry::new());
    registry.add("steady", alpha_engine(), TenantSpec::default());
    registry.add("stormy", alpha_engine(), TenantSpec::default());
    let handle = serve(registry.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();

    let template = "insert(account, row(?0, ?1, ?2))";
    let storm = scenarios::violation_storm();

    // The storm runs concurrently on its own connection while the steady
    // tenant commits clean traffic.
    let stormer = {
        let addr2 = addr;
        std::thread::spawn(move || {
            let mut c = Client::connect(addr2, "stormy").unwrap();
            let s = c.prepare(template).unwrap();
            let bindings: Vec<Vec<Value>> = storm
                .bindings(1, N as usize)
                .into_iter()
                .map(|(_, p)| p)
                .collect();
            c.execute_many(s, bindings).unwrap()
        })
    };
    let mut c = Client::connect(addr, "steady").unwrap();
    let s = c.prepare(template).unwrap();
    let clean: Vec<Vec<Value>> = (0..N)
        .map(|i| vec![Value::Int(i), Value::str("o"), Value::Int(i)])
        .collect();
    let (committed, aborted) = c.execute_many(s, clean.clone()).unwrap();
    assert_eq!((committed, aborted), (N as u64, 0));

    let (storm_committed, storm_aborted) = stormer.join().unwrap();
    assert!(storm_aborted > storm_committed, "the storm mostly aborts");

    // The steady tenant's metrics are untouched by the neighbor's storm:
    // its abort count, error count, and verdict totals are exactly its
    // own traffic's.
    let stats = c.stats().unwrap();
    let get = |key: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(key).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("missing {key} in:\n{stats}"))
    };
    assert_eq!(get("tenant.steady.tx_committed "), N as u64);
    assert_eq!(get("tenant.steady.tx_aborted "), 0);
    assert_eq!(get("tenant.steady.errors "), 0);
    assert_eq!(get("tenant.steady.busy_rejected "), 0);
    assert_eq!(get("tenant.stormy.tx_aborted "), storm_aborted);
    handle.shutdown();

    // And the steady tenant's state equals a solo run of its own stream —
    // the storm left no trace.
    let mut solo_engine = alpha_engine();
    let verdicts = solo(&mut solo_engine, template, &clean);
    assert!(verdicts.iter().all(|c| *c));
    let steady = registry.get("steady").unwrap();
    assert!(
        steady
            .engine
            .lock()
            .database()
            .state_eq(solo_engine.database()),
        "the steady tenant's state must equal its solo run"
    );
}
