//! Golden test for the paper's worked Example 5.1: the exact modified
//! transaction produced for the beer-insert, under rules R1 and R2 of
//! Example 4.2.

use tm_algebra::builder::TransactionBuilder;
use tm_relational::schema::beer_schema;
use tm_relational::{Tuple, Value};
use txmod::{EnforcementMode, Engine, EngineConfig};

fn engine(mode: EnforcementMode) -> Engine {
    // The golden expectations below are the paper's literal Example 5.1
    // output — produced by the unspecialized Algorithm 5.1, so prepare-time
    // specialization is off here (see `specialization_prunes_the_example`
    // for what the default configuration produces instead).
    let mut e = Engine::with_config(
        beer_schema(),
        EngineConfig {
            mode,
            specialize: false,
            ..EngineConfig::default()
        },
    );
    e.add_rule_text(
        "RULE r1 WHEN INS(beer) \
         IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
        "r1",
    )
    .unwrap();
    e.add_rule_text(
        "RULE r2 WHEN INS(beer), DEL(brewery) \
         IF NOT forall x (x in beer implies \
                  exists y (y in brewery and x.brewery = y.name)) \
         THEN temp := minus(project[#2](beer), project[#0](brewery)); \
              insert(brewery, project[#0, null, null](temp))",
        "r2",
    )
    .unwrap();
    e
}

fn example_tx() -> tm_algebra::Transaction {
    TransactionBuilder::new()
        .insert_tuple(
            "beer",
            Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
        )
        .build()
}

#[test]
fn modified_transaction_matches_paper() {
    let e = engine(EnforcementMode::Static);
    let tx = example_tx();
    let (modified, trace) = e.modify_only(&tx).unwrap();
    let expected = "\
begin
  insert(beer, {(\"exportgold\", \"stout\", \"guineken\", 6)});
  alarm(select[(#3 < 0)](beer));
  temp := (project[#2](beer) minus project[#0](brewery));
  insert(brewery, project[#0, null, null](temp));
end
";
    assert_eq!(modified.to_string(), expected);
    assert_eq!(trace.rounds, 1);
    assert_eq!(trace.rules_fired, vec!["r1".to_owned(), "r2".to_owned()]);
}

#[test]
fn modified_transaction_is_guaranteed_correct() {
    // "The modified transaction is now guaranteed to be correct and can be
    // executed without any further precautions."
    let mut e = engine(EnforcementMode::Static);
    let outcome = e.execute(&example_tx()).unwrap();
    assert!(outcome.committed());
    // The compensating action inserted the missing brewery tuple
    // ("guineken", null, null) — exactly the paper's semantics.
    let breweries = e.relation("brewery").unwrap();
    assert_eq!(breweries.len(), 1);
    assert!(breweries.contains(&Tuple::from_values(vec![
        Value::str("guineken"),
        Value::Null,
        Value::Null,
    ])));
    // The beer arrived too.
    assert_eq!(e.relation("beer").unwrap().len(), 1);
}

#[test]
fn specialization_prunes_the_example() {
    // Under the default configuration the same submission is lighter:
    // the inserted row has alcohol 6.0, so R1's domain check is provably
    // unviolable and is dropped; R2's compensation runs unchanged
    // (compensating actions are never specialized).
    let mut e = engine(EnforcementMode::Static);
    e.config_mut().specialize = true;
    let tx = example_tx();
    let (modified, trace) = e.modify_only(&tx).unwrap();
    let rendered = modified.to_string();
    assert!(
        !rendered.contains("alarm"),
        "r1's check must be dropped by proof: {rendered}"
    );
    assert!(rendered.contains("temp := "), "{rendered}");
    assert_eq!(trace.rules_fired, vec!["r2".to_owned()]);
    // Execution semantics are identical to the unspecialized engine.
    let mut out = e.execute(&tx).unwrap();
    assert!(out.committed());
    assert_eq!(out.checks.skipped, 1); // r1 dropped
    assert_eq!(e.relation("brewery").unwrap().len(), 1);
    let mut unspec = engine(EnforcementMode::Static);
    out = unspec.execute(&tx).unwrap();
    assert!(out.committed());
    assert_eq!(
        e.relation("brewery").unwrap(),
        unspec.relation("brewery").unwrap()
    );
}

#[test]
fn dynamic_and_static_modes_produce_identical_modifications() {
    let d = engine(EnforcementMode::Dynamic);
    let s = engine(EnforcementMode::Static);
    let tx = example_tx();
    let (mod_d, _) = d.modify_only(&tx).unwrap();
    let (mod_s, _) = s.modify_only(&tx).unwrap();
    assert_eq!(mod_d, mod_s);
}

#[test]
fn negative_alcohol_aborts_via_r1() {
    let mut e = engine(EnforcementMode::Static);
    let tx = TransactionBuilder::new()
        .insert_tuple("beer", Tuple::of(("bad", "stout", "guineken", -6.0_f64)))
        .build();
    let outcome = e.execute(&tx).unwrap();
    assert!(!outcome.committed());
    assert!(e.relation("beer").unwrap().is_empty());
    assert!(e.relation("brewery").unwrap().is_empty());
}
