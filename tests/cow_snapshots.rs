//! Property tests of the copy-on-write storage and logical-snapshot
//! layout.
//!
//! The executor implements atomicity without copying the database: the
//! state is mutated in place, the differentials double as the undo log,
//! and any clone a caller holds is isolated by the relations'
//! copy-on-write tuple storage (the first write to a shared set unshares
//! it). These tests pin the aliasing contract:
//!
//! * mutating the working state never changes a pre-transaction clone
//!   (no write leaks through shared storage),
//! * an aborted transaction re-installs a state bit-identical to the
//!   pre-transaction state (undo log applied in reverse),
//! * a committed transaction's untouched relations share physical storage
//!   with the pre-transaction state (`Arc::ptr_eq`, observable through
//!   `Relation::shares_storage`) — the guarantee that no silent deep-copy
//!   regression sneaks back into the hot path,
//! * no-op mutations (duplicate insert, absent delete, empty update) do
//!   not unshare.

use proptest::prelude::*;

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{Executor, ScalarExpr};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, ValueType};

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("a", ValueType::Int)]),
        RelationSchema::of("s", &[("b", ValueType::Int)]),
    ])
    .unwrap()
}

fn seeded_db(r: &[i64], s: &[i64]) -> Database {
    let mut db = Database::new(schema().into_shared());
    for v in r {
        db.insert("r", Tuple::of((*v,))).unwrap();
    }
    for v in s {
        db.insert("s", Tuple::of((*v,))).unwrap();
    }
    db
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(i64),
    UpdateShift(i64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..8i64).prop_map(Op::Insert),
            (0..8i64).prop_map(Op::Delete),
            (0..8i64).prop_map(Op::UpdateShift),
        ],
        0..16,
    )
}

fn apply_ops(mut b: TransactionBuilder, operations: &[Op]) -> TransactionBuilder {
    for op in operations {
        b = match op {
            Op::Insert(v) => b.insert_tuple("r", Tuple::of((*v,))),
            Op::Delete(v) => b.delete_tuple("r", Tuple::of((*v,))),
            // update r set a = a where a = v: replaces tuples with
            // themselves — a delete+insert pair that must round-trip.
            Op::UpdateShift(v) => b.update(
                "r",
                ScalarExpr::cmp(
                    tm_algebra::CmpOp::Eq,
                    ScalarExpr::col(0),
                    ScalarExpr::int(*v),
                ),
                vec![tm_algebra::UpdateAssignment::new(0, ScalarExpr::col(0))],
            ),
        };
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (a) Mutating the working state never changes a pre-transaction
    /// clone: after any committed transaction, a clone taken before
    /// execution still equals an unshared deep copy taken at the same
    /// moment — a COW aliasing bug could corrupt the clone, never the
    /// deep copy.
    #[test]
    fn working_mutations_never_reach_the_snapshot(
        seed in prop::collection::vec(0..8i64, 0..8),
        operations in ops(),
    ) {
        let mut db = seeded_db(&seed, &[1, 2, 3]);
        let snapshot = db.clone();          // COW clone (shares storage)
        let reference = db.unshared_copy(); // physically independent
        let outcome = Executor.execute(&mut db, &apply_ops(TransactionBuilder::new(), &operations).build());
        prop_assert!(outcome.is_committed());
        prop_assert!(
            snapshot.state_eq(&reference),
            "pre-transaction clone was corrupted through shared storage"
        );
    }

    /// (b) Abort re-installs a state bit-identical to the pre-state: the
    /// undo log (the differentials) applied in reverse reproduces `D^t`
    /// exactly, and relations the transaction never touched still share
    /// storage with a pre-transaction clone.
    #[test]
    fn abort_reinstalls_the_exact_pre_state(
        seed in prop::collection::vec(0..8i64, 0..8),
        operations in ops(),
    ) {
        let mut db = seeded_db(&seed, &[7]);
        let pre = db.clone();
        let reference = db.unshared_copy();
        let tx = apply_ops(TransactionBuilder::new(), &operations).abort().build();
        let outcome = Executor.execute(&mut db, &tx);
        prop_assert!(!outcome.is_committed());
        prop_assert!(db.state_eq(&reference), "abort must restore the exact pre-state");
        prop_assert!(pre.state_eq(&reference), "abort must not corrupt outstanding clones");
        // `s` was never touched: no write, no unsharing.
        prop_assert!(
            db.relation("s").unwrap().shares_storage(pre.relation("s").unwrap()),
            "abort must leave untouched `s` sharing storage with the pre-state"
        );
    }

    /// (c) After a commit, relations the transaction never touched share
    /// storage with the pre-transaction state — `Arc::ptr_eq`, not just
    /// set equality.
    #[test]
    fn committed_state_shares_untouched_relations(
        seed in prop::collection::vec(0..8i64, 0..8),
        operations in ops(),
    ) {
        let mut db = seeded_db(&seed, &[4, 5]);
        let pre = db.clone();
        // Operations touch only `r`; `s` must keep sharing.
        let outcome = Executor.execute(&mut db, &apply_ops(TransactionBuilder::new(), &operations).build());
        prop_assert!(outcome.is_committed());
        prop_assert!(
            db.relation("s").unwrap().shares_storage(pre.relation("s").unwrap()),
            "untouched relation was deep-copied across the transaction"
        );
        // Sharing implies equality; a changed `r` must have unshared.
        let (r_now, r_pre) = (db.relation("r").unwrap(), pre.relation("r").unwrap());
        if !r_now.set_eq(r_pre) {
            prop_assert!(!r_now.shares_storage(r_pre));
        }
    }
}

/// No-op writes — inserting a present tuple, deleting an absent one, an
/// update selecting nothing — must not unshare the target relation's
/// storage: the whole transaction commits without copying a single tuple
/// set.
#[test]
fn noop_transaction_keeps_every_relation_shared() {
    let mut db = seeded_db(&[1, 2, 3], &[9]);
    let pre = db.clone();
    let tx = TransactionBuilder::new()
        .insert_tuple("r", Tuple::of((1,))) // already present
        .delete_tuple("r", Tuple::of((42,))) // absent
        .update(
            "r",
            ScalarExpr::false_(), // selects nothing
            vec![tm_algebra::UpdateAssignment::new(0, ScalarExpr::int(0))],
        )
        .build();
    let outcome = Executor.execute(&mut db, &tx);
    assert!(outcome.is_committed(), "{outcome:?}");
    for (name, rel) in db.iter() {
        assert!(
            rel.shares_storage(pre.relation(name).unwrap()),
            "no-op transaction unshared `{name}`"
        );
    }
}

/// Reading untouched differentials (`R@ins`/`R@del` allocated lazily) still
/// resolves to empty relations, and doing so does not unshare anything.
#[test]
fn lazy_differentials_read_as_empty_and_keep_sharing() {
    let mut db = seeded_db(&[1, 2], &[3]);
    let pre = db.clone();
    let tx = TransactionBuilder::new()
        // All three alarms are over empty differentials of *untouched*
        // relations; any non-empty evaluation would abort.
        .alarm(tm_algebra::RelExpr::relation("r@ins"))
        .alarm(tm_algebra::RelExpr::relation("r@del"))
        .alarm(tm_algebra::RelExpr::relation("s@ins").union(tm_algebra::RelExpr::relation("s@del")))
        // And `R@pre` still answers with the full pre-state.
        .alarm(
            tm_algebra::RelExpr::relation("r@pre").difference(tm_algebra::RelExpr::relation("r")),
        )
        .build();
    let outcome = Executor.execute(&mut db, &tx);
    assert!(outcome.is_committed(), "{outcome:?}");
    for (name, rel) in db.iter() {
        assert!(
            rel.shares_storage(pre.relation(name).unwrap()),
            "read-only transaction unshared `{name}`"
        );
    }
}
