//! The crash–fault-injection matrix: recovery must always reproduce a
//! **committed prefix** of the workload — never a torn suffix, never a
//! half-applied transaction — under
//!
//! * truncation of the WAL at *every* byte position (frame boundaries and
//!   mid-frame),
//! * a flipped byte at every WAL position (bit rot),
//! * a dropped unsynced tail,
//! * live torn writes and failed fsyncs injected through the
//!   `FailpointFile` shim while the engine runs,
//!
//! in all four enforcement modes. The oracle is a ledger of `Database`
//! snapshots (cheap COW clones) taken after every logged operation: a
//! recovery is correct iff its state is `state_eq` to the ledger entry at
//! its reported recovered-through LSN.
//!
//! Set `BENCH_SMOKE=1` to sample the cut/flip positions instead of
//! sweeping every byte (the CI configuration).

use std::path::{Path, PathBuf};

use tm_algebra::builder::TransactionBuilder;
use tm_relational::{Database, Tuple};
use txmod::{
    Durability, DurabilityConfig, EnforcementMode, Engine, EngineConfig, EngineError, FailPlan,
    Failpoints, WAL_FILE,
};

const MODES: [EnforcementMode; 4] = [
    EnforcementMode::Off,
    EnforcementMode::Dynamic,
    EnforcementMode::Static,
    EnforcementMode::Differential,
];

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn tmpdir(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(format!("crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn engine(mode: EnforcementMode) -> Engine {
    let mut schema = tm_relational::schema::beer_schema();
    let strong = schema.relation("beer").unwrap().renamed("strong");
    schema.add_relation(strong).unwrap();
    let mut e = Engine::with_config(
        schema,
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    e.config_mut().durability = DurabilityConfig {
        level: Durability::Fsync,
        group_commit: 1,
        checkpoint_every: 0, // keep everything in the log for surgery
    };
    e.define_constraint("dom", "forall x (x in beer implies x.alcohol >= 0)")
        .unwrap();
    e
}

fn insert(name: &str, alcohol: f64) -> tm_algebra::Transaction {
    TransactionBuilder::new()
        .insert_tuple("beer", Tuple::of((name, "ale", "heineken", alcohol)))
        .build()
}

/// Committed states keyed by the WAL LSN that made them durable.
/// `entry(0)` is the state covered by the initial checkpoint.
struct Ledger {
    states: Vec<(u64, Database, Vec<String>)>,
}

impl Ledger {
    fn record(&mut self, e: &Engine) {
        let lsn = e.durable_lsn().unwrap_or(0);
        let rules = e.catalog().rules().iter().map(|r| r.name.clone()).collect();
        self.states.push((lsn, e.database().clone(), rules));
    }

    /// The committed state at `lsn` — recovery landing anywhere else is a
    /// correctness failure.
    fn expect(&self, lsn: u64) -> &(u64, Database, Vec<String>) {
        self.states
            .iter()
            .rev()
            .find(|(l, _, _)| *l == lsn)
            .unwrap_or_else(|| panic!("recovered LSN {lsn} is not a committed-prefix state"))
    }
}

/// Run the standard workload durably in `dir`, returning the ledger.
/// Every entry corresponds to exactly one WAL frame.
fn run_workload(e: &mut Engine, dir: &Path, points: Failpoints) -> Ledger {
    e.make_durable_with_failpoints(dir, points).unwrap();
    let mut ledger = Ledger { states: Vec::new() };
    ledger.record(e); // LSN 0: the initial checkpoint
    e.load(
        "brewery",
        vec![
            Tuple::of(("heineken", "amsterdam", "nl")),
            Tuple::of(("guinness", "dublin", "ie")),
        ],
    )
    .unwrap();
    ledger.record(e);
    assert!(e.execute(&insert("pils", 5.0)).unwrap().committed());
    ledger.record(e);
    // Aborts in enforcing modes (no frame); commits in Off (one frame).
    let out = e.execute(&insert("bad", -1.0)).unwrap();
    if out.committed() {
        ledger.record(e);
    }
    e.define_view(txmod::ViewDef::new(
        "strong",
        tm_algebra::parser::parse_relexpr("select[(#3 > 6.0)](beer)").unwrap(),
    ))
    .unwrap();
    ledger.record(e);
    assert!(e.execute(&insert("tripel", 8.0)).unwrap().committed());
    ledger.record(e);
    e.add_rule_text(
        "IF NOT forall x (x in brewery implies x.name <> null) THEN abort",
        "named_breweries",
    )
    .unwrap();
    ledger.record(e);
    assert!(e.remove_rule("dom").unwrap());
    ledger.record(e);
    assert!(e.execute(&insert("strange", -0.5)).unwrap().committed());
    ledger.record(e);
    ledger
}

/// Recover `dir` and assert the result is exactly the committed prefix the
/// report claims.
fn assert_committed_prefix(dir: &Path, ledger: &Ledger, what: &str) {
    let recovered = Engine::recover(dir).unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
    let (_, db, rules) = ledger.expect(recovered.report.recovered_lsn);
    assert!(
        recovered.engine.database().state_eq(db),
        "{what}: recovered state is not the committed prefix at lsn {}",
        recovered.report.recovered_lsn
    );
    let got: Vec<String> = recovered
        .engine
        .catalog()
        .rules()
        .iter()
        .map(|r| r.name.clone())
        .collect();
    assert_eq!(&got, rules, "{what}: catalog diverges");
}

/// Clone a durability directory with the WAL replaced by `wal_bytes`.
fn surgery(src: &Path, name: &str, wal_bytes: &[u8]) -> PathBuf {
    let dst = tmpdir(name);
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let file = entry.file_name();
        if file.to_str() == Some(WAL_FILE) {
            continue;
        }
        std::fs::copy(entry.path(), dst.join(file)).unwrap();
    }
    std::fs::write(dst.join(WAL_FILE), wal_bytes).unwrap();
    dst
}

#[test]
fn truncation_at_every_byte_recovers_a_committed_prefix() {
    for mode in MODES {
        let dir = tmpdir(&format!("trunc-src-{mode:?}"));
        let mut e = engine(mode);
        let ledger = run_workload(&mut e, &dir, Failpoints::none());
        let wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert!(!wal.is_empty());
        let step = if smoke() { 17 } else { 1 };
        let mut cut = 0;
        while cut <= wal.len() {
            let case = surgery(&dir, &format!("trunc-{mode:?}"), &wal[..cut]);
            assert_committed_prefix(&case, &ledger, &format!("{mode:?} cut {cut}"));
            std::fs::remove_dir_all(&case).unwrap();
            cut += step;
        }
        // The full log always recovers the final state.
        let case = surgery(&dir, &format!("trunc-{mode:?}"), &wal);
        let recovered = Engine::recover(&case).unwrap();
        assert!(
            recovered.engine.database().state_eq(e.database()),
            "{mode:?}"
        );
        assert!(recovered.report.truncated_tail.is_none(), "{mode:?}");
        std::fs::remove_dir_all(&case).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn bit_rot_at_every_byte_recovers_a_committed_prefix() {
    for mode in MODES {
        let dir = tmpdir(&format!("flip-src-{mode:?}"));
        let mut e = engine(mode);
        let ledger = run_workload(&mut e, &dir, Failpoints::none());
        let wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let step = if smoke() { 13 } else { 1 };
        let mut victim = 0;
        while victim < wal.len() {
            let mut rotted = wal.clone();
            rotted[victim] ^= 0x41;
            let case = surgery(&dir, &format!("flip-{mode:?}"), &rotted);
            let recovered = Engine::recover(&case)
                .unwrap_or_else(|e| panic!("{mode:?} flip {victim}: recovery failed: {e}"));
            // A flip is always detected (CRC over the payload, length and
            // LSN validation over the header): recovery reports the torn
            // tail and lands on a committed prefix.
            assert!(
                recovered.report.truncated_tail.is_some(),
                "{mode:?} flip {victim}: corruption went unreported"
            );
            let (_, db, _) = ledger.expect(recovered.report.recovered_lsn);
            assert!(
                recovered.engine.database().state_eq(db),
                "{mode:?} flip {victim}: not a committed prefix"
            );
            std::fs::remove_dir_all(&case).unwrap();
            victim += step;
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn live_torn_write_loses_only_the_tail() {
    for mode in MODES {
        let dir = tmpdir(&format!("torn-{mode:?}"));
        let points = Failpoints::none();
        let mut e = engine(mode);
        e.make_durable_with_failpoints(&dir, points.clone())
            .unwrap();
        e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
            .unwrap();
        assert!(e.execute(&insert("pils", 5.0)).unwrap().committed());
        let durable_state = e.database().clone();

        // The power dies 7 bytes into the next frame: that commit and
        // everything after it silently never reach the disk.
        points.arm(FailPlan {
            write_budget: Some(7),
            ..FailPlan::default()
        });
        assert!(e.execute(&insert("lost1", 6.0)).unwrap().committed());
        assert!(e.execute(&insert("lost2", 6.5)).unwrap().committed());
        assert!(points.crashed());

        let recovered = Engine::recover(&dir).unwrap();
        assert!(
            recovered.engine.database().state_eq(&durable_state),
            "{mode:?}: recovery must land exactly at the last durable commit"
        );
        assert!(
            recovered.report.truncated_tail.is_some(),
            "{mode:?}: the torn frame must be reported"
        );
        assert_eq!(
            recovered.engine.relation("beer").unwrap().len(),
            1,
            "{mode:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn failed_fsync_rolls_the_commit_back() {
    for mode in MODES {
        let dir = tmpdir(&format!("fsync-{mode:?}"));
        let points = Failpoints::none();
        let mut e = engine(mode);
        e.make_durable_with_failpoints(&dir, points.clone())
            .unwrap();
        e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
            .unwrap();
        let before = e.database().clone();

        points.arm(FailPlan {
            fail_fsyncs: 1,
            ..FailPlan::default()
        });
        let err = e.execute(&insert("unsynced", 5.0)).unwrap_err();
        assert!(
            matches!(err, EngineError::Durability(_)),
            "{mode:?}: got {err:?}"
        );
        // The commit-durability contract: a commit that cannot be made
        // stable is undone in memory too.
        assert!(
            e.database().state_eq(&before),
            "{mode:?}: failed fsync left the commit applied in memory"
        );

        // The fault cleared; the engine keeps working and recovery agrees.
        assert!(e.execute(&insert("synced", 5.0)).unwrap().committed());
        let recovered = Engine::recover(&dir).unwrap();
        assert!(
            recovered.engine.database().state_eq(e.database()),
            "{mode:?}"
        );
        let beers = recovered.engine.relation("beer").unwrap();
        assert!(beers.contains(&Tuple::of(("synced", "ale", "heineken", 5.0))));
        assert!(!beers.contains(&Tuple::of(("unsynced", "ale", "heineken", 5.0))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn group_commit_batches_fsyncs_but_loses_at_most_the_unsynced_batch() {
    let dir = tmpdir("group");
    let points = Failpoints::none();
    let mut e = engine(EnforcementMode::Static);
    e.config_mut().durability.group_commit = 4;
    e.make_durable_with_failpoints(&dir, points.clone())
        .unwrap();
    e.load("brewery", vec![Tuple::of(("heineken", "amsterdam", "nl"))])
        .unwrap();
    for i in 0..10 {
        let name = format!("b{i}");
        assert!(e.execute(&insert(&name, 5.0)).unwrap().committed());
    }
    // Everything was written (buffered); recovery after a *clean* stop
    // sees all ten commits even though only some were fsynced.
    let recovered = Engine::recover(&dir).unwrap();
    assert_eq!(recovered.engine.relation("beer").unwrap().len(), 10);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_is_idempotent() {
    // Crash, recover, crash again without committing: repeated recovery
    // from the same directory yields the same state every time.
    let dir = tmpdir("idem");
    let mut e = engine(EnforcementMode::Static);
    let _ledger = run_workload(&mut e, &dir, Failpoints::none());
    let first = Engine::recover(&dir).unwrap();
    for _ in 0..3 {
        let again = Engine::recover(&dir).unwrap();
        assert!(again.engine.database().state_eq(first.engine.database()));
        assert_eq!(again.report, first.report);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
