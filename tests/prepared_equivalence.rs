//! Equivalence and safety properties of the prepared-transaction surface.
//!
//! The contract of `Engine::prepare` / `Prepared::bind` /
//! `Session::execute_prepared` is that preparation is *purely* an
//! amortization: for every parameter binding, executing the prepared
//! template commits or aborts exactly as ad-hoc execution of the
//! substituted source transaction would, in **all four** enforcement
//! modes, and leaves the database in the same state. On top of that:
//!
//! * stale-plan safety — a rule added *after* `prepare` invalidates the
//!   plan; the next execution re-modifies it and enforces the new rule,
//! * session snapshots are consistent copy-on-write reads: later writes
//!   never reach a snapshot, untouched relations keep sharing storage,
//! * templates cannot run unbound: the engine refuses them at bind time,
//!   the executor aborts them with a dedicated error.

use proptest::prelude::*;

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{AbortReason, AlgebraError, Executor, Transaction, TxOutcome};
use tm_relational::{Tuple, Value};
use txmod::engine::beer_engine;
use txmod::{EnforcementMode, Engine, EngineError, SpecOutcome};

const MODES: [EnforcementMode; 4] = [
    EnforcementMode::Off,
    EnforcementMode::Dynamic,
    EnforcementMode::Static,
    EnforcementMode::Differential,
];

fn constrained(mode: EnforcementMode) -> Engine {
    let mut e = beer_engine(mode);
    e.define_constraint("dom", "forall x (x in beer implies x.alcohol >= 0)")
        .unwrap();
    e.define_constraint(
        "ref",
        "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
    )
    .unwrap();
    e.load(
        "brewery",
        vec![
            Tuple::of(("heineken", "amsterdam", "nl")),
            Tuple::of(("guinness", "dublin", "ie")),
        ],
    )
    .unwrap();
    e
}

fn insert_template() -> Transaction {
    TransactionBuilder::new().insert_params("beer", 4).build()
}

fn delete_template() -> Transaction {
    TransactionBuilder::new().delete_params("beer", 4).build()
}

/// One step of the random workload: insert or delete a beer row built
/// from small pools (collisions and violations on purpose).
type Step = (bool, usize, usize, i64);

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((0..4usize, 0..5usize, 0..4usize, -2..8i64), 1..12).prop_map(|v| {
        v.into_iter()
            .map(|(op, name, brewery, alc)| (op != 0, name, brewery, alc))
            .collect()
    })
}

fn values_of(step: &Step) -> Vec<Value> {
    let names = ["pils", "stout", "ale", "bock", "lager"];
    let breweries = ["heineken", "guinness", "nowhere", "atlantis"];
    vec![
        Value::str(names[step.1]),
        Value::str("style"),
        Value::str(breweries[step.2]),
        Value::double(step.3 as f64 / 2.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For a random stream of bindings over insert and delete templates,
    /// `prepare` + `bind` + `execute_prepared` and ad-hoc `execute` of
    /// the substituted source agree on every verdict and on every
    /// intermediate state, in all four enforcement modes — and after the
    /// first call every prepared execution reuses the plan.
    #[test]
    fn prepared_equals_adhoc_in_all_modes(workload in steps()) {
        for mode in MODES {
            let mut prepared_engine = constrained(mode);
            let mut adhoc_engine = constrained(mode);
            let ins_src = insert_template();
            let del_src = delete_template();
            let mut session = prepared_engine.session();
            let ins = session.prepare(&ins_src).unwrap();
            let del = session.prepare(&del_src).unwrap();
            for step in &workload {
                let values = values_of(step);
                let (id, src) = if step.0 { (ins, &ins_src) } else { (del, &del_src) };
                let out_p = session.execute_prepared(id, &values).unwrap();
                prop_assert!(out_p.reused_plan, "{mode:?}: plan must be reused");
                // The semantic reference: the source template with the
                // binding substituted, executed ad hoc (ModT runs on it).
                let ground = src.bind_params(&values);
                prop_assert_eq!(ground.param_count(), 0);
                let out_a = adhoc_engine.execute(&ground).unwrap();
                prop_assert_eq!(
                    out_p.committed(),
                    out_a.committed(),
                    "{:?}: verdicts diverged on {:?}",
                    mode,
                    step
                );
            }
            drop(session);
            for rel in ["beer", "brewery"] {
                prop_assert_eq!(
                    prepared_engine.relation(rel).unwrap().sorted_tuples(),
                    adhoc_engine.relation(rel).unwrap().sorted_tuples(),
                    "{:?}: state of `{}` diverged",
                    mode,
                    rel
                );
            }
            // Both engines end consistent (enforcing modes) — the usual
            // ground-truth check.
            if mode != EnforcementMode::Off {
                prop_assert!(prepared_engine.check_state().unwrap().is_empty());
            }
        }
    }

    /// `BoundTransaction::substituted` denotes the same ground
    /// transaction the executor runs: the substituted *modified template*
    /// (appended checks included), executed verbatim on a twin engine in
    /// `Off` mode (no further modification), gives the same verdict as
    /// the zero-copy prepared-plan path.
    #[test]
    fn substituted_form_is_the_executed_semantics(workload in steps()) {
        let mut a = constrained(EnforcementMode::Static);
        let mut b = constrained(EnforcementMode::Off);
        let prepared = a.prepare(&insert_template()).unwrap();
        for step in workload.iter().filter(|s| s.0) {
            let values = values_of(step);
            let bound = prepared.bind(&values).unwrap();
            let ground = bound.substituted();
            let out_a = a.execute_bound(&bound).unwrap();
            let raw = b.execute(&ground).unwrap();
            prop_assert_eq!(out_a.committed(), raw.committed());
        }
        prop_assert_eq!(
            a.relation("beer").unwrap().sorted_tuples(),
            b.relation("beer").unwrap().sorted_tuples()
        );
    }
}

#[test]
fn rule_added_after_prepare_is_enforced_session_level() {
    // Only the domain rule exists at prepare time.
    let mut e = beer_engine(EnforcementMode::Static);
    e.define_constraint("dom", "forall x (x in beer implies x.alcohol >= 0)")
        .unwrap();
    e.load("brewery", vec![Tuple::of(("guinness", "dublin", "ie"))])
        .unwrap();
    let mut session = e.session();
    let id = session.prepare(&insert_template()).unwrap();
    // The prepare-time plan is already specialized: the parameterized
    // insert reduces the domain rule to a single point probe over the
    // `?i` bindings (a parameterized row cannot be constant-folded away,
    // so it is probed, not dropped).
    {
        let spec = session.prepared(id).unwrap().specialization();
        assert!(spec.enabled);
        assert_eq!(spec.probed(), 1);
        assert_eq!(spec.decisions.len(), 1);
        assert_eq!(spec.decisions[0].rule, "dom");
        assert!(matches!(
            spec.decisions[0].outcome,
            SpecOutcome::Probe { statements: 1 }
        ));
    }

    let good = vec![
        Value::str("pils"),
        Value::str("lager"),
        Value::str("guinness"),
        Value::double(5.0),
    ];
    let orphan = vec![
        Value::str("ghost"),
        Value::str("ale"),
        Value::str("atlantis"),
        Value::double(5.0),
    ];
    // Without the referential rule, the orphan would commit.
    let out = session.execute_prepared(id, &good).unwrap();
    assert!(out.committed() && out.reused_plan);

    // Mid-session rule definition goes through the session and stales
    // the plan.
    session
        .define_constraint(
            "ref",
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        )
        .unwrap();
    let out = session.execute_prepared(id, &orphan).unwrap();
    assert!(
        !out.committed(),
        "stale plan must be re-modified: new rule enforced"
    );
    assert!(!out.reused_plan, "the refresh call re-ran ModT");
    assert!(out.modification.rounds >= 1);
    // The refresh re-specialized against the grown catalog: the new
    // referential rule landed in the specialized check set as a point
    // probe alongside the domain probe — not as a generic join.
    {
        let spec = session.prepared(id).unwrap().specialization();
        assert_eq!(spec.probed(), 2, "both rules must be probes: {spec}");
        assert_eq!(spec.generic(), 0);
        let rules: Vec<&str> = spec.decisions.iter().map(|d| d.rule.as_str()).collect();
        assert!(
            rules.contains(&"dom") && rules.contains(&"ref"),
            "{rules:?}"
        );
    }
    assert_eq!(out.checks.probed, 2);
    assert_eq!(out.checks.evaluated, 0);
    // The refreshed plan is stored: the next call reuses it.
    let out = session
        .execute_prepared(
            id,
            &[
                Value::str("stout"),
                Value::str("stout"),
                Value::str("guinness"),
                Value::double(4.2),
            ],
        )
        .unwrap();
    assert!(out.committed() && out.reused_plan);
    assert_eq!(out.checks.probed, 2, "reused plan reports its probes");
    drop(session);
    assert_eq!(e.relation("beer").unwrap().len(), 2);
    assert!(e.check_state().unwrap().is_empty());
}

#[test]
fn caller_held_stale_plan_is_remodified_per_call() {
    let mut e = beer_engine(EnforcementMode::Static);
    e.load("brewery", vec![Tuple::of(("guinness", "dublin", "ie"))])
        .unwrap();
    let prepared = e.prepare(&insert_template()).unwrap();
    assert!(!prepared.is_stale(&e));
    e.define_constraint("dom", "forall x (x in beer implies x.alcohol >= 0)")
        .unwrap();
    assert!(prepared.is_stale(&e), "catalog change must stale the plan");

    let bad = prepared
        .bind(&[
            Value::str("bad"),
            Value::str("ale"),
            Value::str("guinness"),
            Value::double(-1.0),
        ])
        .unwrap();
    let out = e.execute_bound(&bad).unwrap();
    assert!(!out.committed(), "re-modified plan enforces the new rule");
    assert!(!out.reused_plan);
    // The caller's Prepared does not hold what ran, so the outcome does.
    let executed = out.modified.expect("stale path reports the fresh plan");
    assert!(executed.to_string().contains("alarm"));
    // The fresh plan built for the stale call was specialized too: the
    // new rule shows up as a point probe in the outcome's check summary.
    assert_eq!(out.checks.probed, 1);
    assert_eq!(out.checks.evaluated, 0);

    // Re-preparing clears the staleness and reuses thereafter.
    let prepared = e.prepare(prepared.source()).unwrap();
    assert_eq!(prepared.specialization().probed(), 1);
    assert!(matches!(
        prepared.specialization().decisions[0].outcome,
        SpecOutcome::Probe { statements: 1 }
    ));
    let good = prepared
        .bind(&[
            Value::str("good"),
            Value::str("ale"),
            Value::str("guinness"),
            Value::double(2.0),
        ])
        .unwrap();
    let out = e.execute_bound(&good).unwrap();
    assert!(out.committed() && out.reused_plan);
}

#[test]
fn session_snapshots_are_consistent_cow_reads() {
    let mut e = constrained(EnforcementMode::Static);
    let mut session = e.session();
    let id = session.prepare(&insert_template()).unwrap();
    let before = session.snapshot();
    assert_eq!(before.relation("beer").unwrap().len(), 0);

    for i in 0..10 {
        let out = session
            .execute_prepared(
                id,
                &[
                    Value::str(format!("beer{i}")),
                    Value::str("lager"),
                    Value::str("heineken"),
                    Value::double(5.0),
                ],
            )
            .unwrap();
        assert!(out.committed());
    }
    // The old snapshot never saw the writes.
    assert_eq!(before.relation("beer").unwrap().len(), 0);
    let after = session.snapshot();
    assert_eq!(after.relation("beer").unwrap().len(), 10);
    // Snapshots are O(#relations) COW clones: the untouched relation
    // still shares physical storage with the live state; the touched one
    // shares between two snapshots taken without intervening writes.
    assert!(after
        .relation("brewery")
        .unwrap()
        .shares_storage(session.engine().relation("brewery").unwrap()));
    assert!(after
        .relation("beer")
        .unwrap()
        .shares_storage(session.snapshot().relation("beer").unwrap()));
}

#[test]
fn templates_cannot_run_unbound() {
    // Engine level: ad-hoc execution of a template is a bind-arity error.
    let mut e = constrained(EnforcementMode::Static);
    let err = e.execute(&insert_template()).unwrap_err();
    assert!(matches!(
        err,
        EngineError::ParamArity {
            expected: 4,
            got: 0
        }
    ));

    // Executor level: a raw template aborts with the dedicated error.
    let mut db = tm_relational::Database::new(tm_relational::schema::beer_schema().into_shared());
    let out = Executor.execute(&mut db, &insert_template());
    match out {
        TxOutcome::Aborted {
            reason: AbortReason::RuntimeError(AlgebraError::UnboundParam(0)),
            ..
        } => {}
        other => panic!("expected UnboundParam abort, got {other:?}"),
    }
    // And a short binding leaves the later placeholders unbound.
    let out = Executor.execute_bound(&mut db, &insert_template(), &[Value::str("x")]);
    match out {
        TxOutcome::Aborted {
            reason: AbortReason::RuntimeError(AlgebraError::UnboundParam(1)),
            ..
        } => {}
        other => panic!("expected UnboundParam(1) abort, got {other:?}"),
    }
}

#[test]
fn prepared_execution_reports_prepare_time_trace_once() {
    let mut e = constrained(EnforcementMode::Static);
    let mut session = e.session();
    let id = session.prepare(&insert_template()).unwrap();
    // The ModT work lives on the prepared statement…
    assert_eq!(session.prepared(id).unwrap().modification().rounds, 1);
    assert_eq!(
        session
            .prepared(id)
            .unwrap()
            .modification()
            .rules_fired
            .len(),
        2
    );
    // …and a reusing execution reports an empty per-execution trace.
    let out = session
        .execute_prepared(
            id,
            &[
                Value::str("pils"),
                Value::str("lager"),
                Value::str("heineken"),
                Value::double(5.0),
            ],
        )
        .unwrap();
    assert!(out.committed());
    assert!(out.reused_plan);
    assert_eq!(out.modification.rounds, 0);
    assert!(out.modified.is_none());
}
