//! Property tests of the paper's central correctness claim
//! (Definition 3.5 + Section 5.1): a transaction modified by `ModT`
//! commits **iff** its effect satisfies every declared constraint — and
//! when it aborts, the database is untouched.
//!
//! Strategy: random databases and random transactions over a two-relation
//! schema, a pool of aborting constraints (domain, referential, exclusion,
//! aggregate, transition), and a comparison of the engine's verdict
//! against the *direct semantic evaluation* of the constraints
//! (`tm-calculus`), which is an independent implementation path.

use proptest::prelude::*;

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{Executor, Transaction};
use tm_calculus::{analyze, eval_constraint, parse_formula, TransitionSource};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, ValueType};
use txmod::{EnforcementMode, Engine, EngineConfig};

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "parent",
            &[("key", ValueType::Int), ("cap", ValueType::Int)],
        ),
        RelationSchema::of(
            "child",
            &[
                ("id", ValueType::Int),
                ("fk", ValueType::Int),
                ("amount", ValueType::Int),
            ],
        ),
    ])
    .unwrap()
}

/// The constraint pool: each entry is (name, CL source).
fn constraint_pool() -> Vec<(&'static str, &'static str)> {
    vec![
        ("domain", "forall x (x in child implies x.amount >= 0)"),
        (
            "referential",
            "forall x (x in child implies exists y (y in parent and x.fk = y.key))",
        ),
        ("cap_count", "CNT(child) <= 12"),
        (
            "exclusion",
            "forall x (x in parent implies forall y (y in child implies x.key != y.amount))",
        ),
        (
            "persist",
            "forall x (x in parent@pre implies exists y (y in parent and x == y))",
        ),
        ("sum_cap", "SUM(child, amount) <= 600"),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    InsertParent(i64, i64),
    InsertChild(i64, i64, i64),
    DeleteParent(i64),
    DeleteChild(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8i64, 0..5i64).prop_map(|(k, c)| Op::InsertParent(k, c)),
        (0..20i64, 0..10i64, -3..60i64).prop_map(|(i, f, a)| Op::InsertChild(i, f, a)),
        (0..8i64).prop_map(Op::DeleteParent),
        (0..20i64).prop_map(Op::DeleteChild),
    ]
}

/// Build a transaction from ops. Deletions use delete-where on the key.
fn build_tx(ops: &[Op]) -> Transaction {
    let mut b = TransactionBuilder::new();
    for op in ops {
        b = match op {
            Op::InsertParent(k, c) => b.insert_tuple("parent", Tuple::of((*k, *c))),
            Op::InsertChild(i, f, a) => b.insert_tuple("child", Tuple::of((*i, *f, *a))),
            Op::DeleteParent(k) => b.delete_where(
                "parent",
                tm_algebra::ScalarExpr::cmp(
                    tm_algebra::CmpOp::Eq,
                    tm_algebra::ScalarExpr::col(0),
                    tm_algebra::ScalarExpr::int(*k),
                ),
            ),
            Op::DeleteChild(i) => b.delete_where(
                "child",
                tm_algebra::ScalarExpr::cmp(
                    tm_algebra::CmpOp::Eq,
                    tm_algebra::ScalarExpr::col(0),
                    tm_algebra::ScalarExpr::int(*i),
                ),
            ),
        };
    }
    b.build()
}

/// Seed database: parents 0..n_parents, children with valid FKs and
/// non-negative amounts (so all constraints initially hold).
fn seed_engine(
    mode: EnforcementMode,
    constraints: &[usize],
    n_parents: usize,
    n_children: usize,
) -> Engine {
    let mut e = Engine::with_config(
        schema(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    let pool = constraint_pool();
    for &i in constraints {
        let (name, src) = pool[i];
        e.define_constraint(name, src).unwrap();
    }
    e.load(
        "parent",
        // cap values start at 100 so `exclusion` (key != amount) holds for
        // amounts < 60 range... parent.key in 0..n_parents (≤8), child
        // amounts can collide with keys; the seed uses amounts ≥ 30 to
        // keep the initial state consistent for all pool constraints.
        (0..n_parents as i64).map(|k| Tuple::of((k, 100 + k))),
    )
    .unwrap();
    e.load(
        "child",
        (0..n_children as i64).map(|i| Tuple::of((i, i % n_parents.max(1) as i64, 30 + i))),
    )
    .unwrap();
    e
}

/// Ground truth: does executing `tx` unmodified on a copy yield a
/// state/transition satisfying all selected constraints?
fn ground_truth(engine: &Engine, constraints: &[usize], tx: &Transaction) -> Option<bool> {
    let pool = constraint_pool();
    let mut scratch: Database = engine.database().clone();
    let (outcome, transition) = Executor.execute_with_transition(&mut scratch, tx);
    // A transaction that fails for runtime reasons (not integrity) is out
    // of scope for the comparison.
    if !outcome.is_committed() {
        return None;
    }
    let src = TransitionSource(&transition);
    let mut all_ok = true;
    for &i in constraints {
        let (_, cl) = pool[i];
        let info = analyze(&parse_formula(cl).unwrap(), engine.catalog().schema()).unwrap();
        match eval_constraint(&info, &src) {
            Ok(ok) => all_ok &= ok,
            Err(_) => return None, // e.g. aggregate over empty relation
        }
    }
    Some(all_ok)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The central theorem: engine verdict == ground truth, for every
    /// enforcement mode; aborts leave the state untouched; commits leave a
    /// state identical to unmodified execution (aborting rules add checks,
    /// never effects).
    #[test]
    fn modification_sound_and_complete(
        ops in prop::collection::vec(op_strategy(), 1..8),
        cons in prop::collection::vec(0usize..6, 1..4),
        n_parents in 1usize..6,
        n_children in 0usize..8,
    ) {
        let tx = build_tx(&ops);
        // Constraint subsets may repeat; dedup to avoid duplicate names.
        let mut cons = cons;
        cons.sort_unstable();
        cons.dedup();

        for mode in [
            EnforcementMode::Dynamic,
            EnforcementMode::Static,
            EnforcementMode::Differential,
        ] {
            let mut engine = seed_engine(mode, &cons, n_parents, n_children);
            // The seed state must satisfy the selected constraints (the
            // induction hypothesis of transaction modification).
            prop_assert!(
                engine.check_state().unwrap().is_empty(),
                "seed state inconsistent for {cons:?}"
            );
            let Some(truth) = ground_truth(&engine, &cons, &tx) else {
                // Runtime error path: the engine must abort and preserve
                // the state.
                let before = engine.database().clone();
                let out = engine.execute(&tx).unwrap();
                prop_assert!(!out.committed());
                prop_assert!(engine.database().state_eq(&before));
                continue;
            };
            let before = engine.database().clone();
            let out = engine.execute(&tx).unwrap();
            prop_assert_eq!(
                out.committed(),
                truth,
                "mode {:?}: engine committed={} but ground truth={} (tx: {})",
                mode,
                out.committed(),
                truth,
                tx
            );
            if out.committed() {
                // Committed effect == unmodified effect (aborting rules
                // only observe).
                let mut scratch = before.clone();
                Executor.execute(&mut scratch, &tx);
                prop_assert!(engine.database().state_eq(&scratch));
            } else {
                prop_assert!(engine.database().state_eq(&before), "abort must roll back");
            }
        }
    }

    /// All three enforcement modes agree with each other on arbitrary
    /// inputs (they implement the same declarative specification).
    #[test]
    fn modes_agree(
        ops in prop::collection::vec(op_strategy(), 1..8),
        cons in prop::collection::vec(0usize..6, 1..4),
    ) {
        let tx = build_tx(&ops);
        let mut cons = cons;
        cons.sort_unstable();
        cons.dedup();
        let mut verdicts = Vec::new();
        let mut states = Vec::new();
        for mode in [
            EnforcementMode::Dynamic,
            EnforcementMode::Static,
            EnforcementMode::Differential,
        ] {
            let mut engine = seed_engine(mode, &cons, 4, 6);
            let out = engine.execute(&tx).unwrap();
            verdicts.push(out.committed());
            states.push(engine.database().clone());
        }
        prop_assert_eq!(verdicts[0], verdicts[1]);
        prop_assert_eq!(verdicts[1], verdicts[2]);
        prop_assert!(states[0].state_eq(&states[1]));
        prop_assert!(states[1].state_eq(&states[2]));
    }
}
