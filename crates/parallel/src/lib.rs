#![warn(missing_docs)]

//! # `tm-parallel` — the parallel main-memory substrate
//!
//! The paper's feasibility evidence is a prototype inside **PRISMA/DB**, a
//! parallel main-memory relational DBMS running on the 8-node POOMA
//! multiprocessor (§7, refs \[1, 22\]); the companion work \[7\] shows how
//! transaction-modification checks decompose over **fragmented
//! relations**. This crate reproduces that substrate:
//!
//! * [`FragmentedRelation`] — a relation hash-partitioned on a
//!   fragmentation attribute across `n` nodes,
//! * [`ParallelDb`] — a shared-nothing collection of fragmented relations
//!   where each "node" is an OS thread operating on its own fragments,
//! * parallel constraint checks for the two §7 workloads — domain checks
//!   (embarrassingly parallel selections) and referential checks
//!   (co-partitioned anti-joins), in full-relation and differential
//!   (delta-only) variants,
//! * a shuffle (`FragmentedRelation::refragment`) for checks whose join
//!   attribute differs from the fragmentation attribute, with message
//!   counts reported so experiments can show the cost of repartitioning.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The original hardware was a 1992 message-passing multiprocessor. Here a
//! node is a thread and the "network" is memory, so absolute numbers are
//! incomparable — but the *code path* the paper measures (fragment-local
//! selection/anti-join after routing by hash) is the same, which preserves
//! the shape of the scaling results.

pub mod db;
pub mod fragment;

pub use db::{CheckReport, ParallelDb};
pub use fragment::FragmentedRelation;
