//! Hash-fragmented relations (the storage model of PRISMA/DB \[1, 7\]).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use tm_relational::{Relation, RelationSchema, RelationalError, Tuple, Value};

/// A relation hash-partitioned across `n` fragments on one attribute.
///
/// Fragmentation is value-based: tuple `t` lives in fragment
/// `h(t[key_col]) mod n`. Fragments of co-partitioned relations (same `n`,
/// join attribute = fragmentation attribute on both sides) can be joined
/// node-locally without data movement — the property the paper's parallel
/// constraint enforcement exploits \[7\].
#[derive(Debug, Clone)]
pub struct FragmentedRelation {
    schema: Arc<RelationSchema>,
    key_col: usize,
    fragments: Vec<Relation>,
}

impl FragmentedRelation {
    /// Create an empty fragmented relation.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `key_col` is out of range for the schema.
    pub fn new(schema: Arc<RelationSchema>, key_col: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "at least one node required");
        assert!(
            key_col < schema.arity(),
            "fragmentation attribute out of range"
        );
        FragmentedRelation {
            fragments: (0..nodes)
                .map(|_| Relation::empty(schema.clone()))
                .collect(),
            schema,
            key_col,
        }
    }

    /// The relation schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The fragmentation attribute (zero-based).
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Number of fragments (nodes).
    pub fn nodes(&self) -> usize {
        self.fragments.len()
    }

    /// Total tuple count across fragments.
    pub fn len(&self) -> usize {
        self.fragments.iter().map(Relation::len).sum()
    }

    /// Whether all fragments are empty.
    pub fn is_empty(&self) -> bool {
        self.fragments.iter().all(Relation::is_empty)
    }

    /// The hash route of a value: which fragment holds tuples with this
    /// fragmentation-attribute value.
    pub fn route(&self, v: &Value) -> usize {
        route_value(v, self.nodes())
    }

    /// Fragment `i` (node-local data).
    pub fn fragment(&self, i: usize) -> &Relation {
        &self.fragments[i]
    }

    /// All fragments.
    pub fn fragments(&self) -> &[Relation] {
        &self.fragments
    }

    /// Insert a tuple, routing it by the fragmentation attribute.
    /// Returns `true` when new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool, RelationalError> {
        self.schema.validate_tuple(&tuple)?;
        let node = self.route(
            tuple
                .get(self.key_col)
                .expect("validated tuple has key column"),
        );
        Ok(self.fragments[node].insert_unchecked(tuple))
    }

    /// Bulk insert; returns the number of new tuples.
    pub fn insert_all(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, RelationalError> {
        let mut n = 0;
        for t in tuples {
            if self.insert(t)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Delete a tuple; returns whether it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        match tuple.get(self.key_col) {
            Some(v) => {
                let node = self.route(v);
                self.fragments[node].remove(tuple)
            }
            None => false,
        }
    }

    /// Membership test (single-fragment lookup).
    pub fn contains(&self, tuple: &Tuple) -> bool {
        match tuple.get(self.key_col) {
            Some(v) => self.fragments[self.route(v)].contains(tuple),
            None => false,
        }
    }

    /// Gather all fragments into one relation (the "de-fragmentation"
    /// operator; used for verification, not on hot paths). A single-node
    /// relation gathers as a copy-on-write clone of its one fragment —
    /// no tuple movement at all.
    pub fn gather(&self) -> Relation {
        if let [only] = self.fragments.as_slice() {
            return only.clone();
        }
        let mut out = Relation::with_capacity(self.schema.clone(), self.len());
        for f in &self.fragments {
            for t in f.iter() {
                out.insert_unchecked(t.clone());
            }
        }
        out
    }

    /// Re-fragment to a different node count and/or attribute, returning
    /// the new relation and the number of tuples that moved "across the
    /// network" (landed on a different node index).
    pub fn refragment(&self, key_col: usize, nodes: usize) -> (FragmentedRelation, usize) {
        let mut out = FragmentedRelation::new(self.schema.clone(), key_col, nodes);
        let mut moved = 0;
        for (i, frag) in self.fragments.iter().enumerate() {
            for t in frag.iter() {
                let dest = out.route(t.get(key_col).expect("arity checked"));
                if dest != i {
                    moved += 1;
                }
                out.fragments[dest].insert_unchecked(t.clone());
            }
        }
        (out, moved)
    }
}

/// Hash-route a value to one of `n` buckets (stable across calls; uses the
/// std hasher, which is seeded per-process but consistent within it).
pub fn route_value(v: &Value, n: usize) -> usize {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    (h.finish() % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::ValueType;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::of(
            "r",
            &[("k", ValueType::Int), ("v", ValueType::Str)],
        ))
    }

    fn loaded(nodes: usize, n: i64) -> FragmentedRelation {
        let mut fr = FragmentedRelation::new(schema(), 0, nodes);
        fr.insert_all((0..n).map(|i| Tuple::of((i, "x")))).unwrap();
        fr
    }

    #[test]
    fn routing_is_consistent() {
        let fr = loaded(4, 100);
        assert_eq!(fr.len(), 100);
        for i in 0..4 {
            for t in fr.fragment(i).iter() {
                assert_eq!(fr.route(t.get(0).unwrap()), i, "tuple on wrong node");
            }
        }
    }

    #[test]
    fn fragments_partition_the_relation() {
        let fr = loaded(8, 1000);
        let total: usize = (0..8).map(|i| fr.fragment(i).len()).sum();
        assert_eq!(total, 1000);
        // Reasonably balanced: no fragment below 5% or above 30%.
        for i in 0..8 {
            let len = fr.fragment(i).len();
            assert!((50..=300).contains(&len), "fragment {i} has {len} tuples");
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut fr = loaded(4, 10);
        let t = Tuple::of((5, "x"));
        assert!(fr.contains(&t));
        assert!(fr.remove(&t));
        assert!(!fr.contains(&t));
        assert!(!fr.remove(&t));
        assert!(fr.insert(t.clone()).unwrap());
        assert!(!fr.insert(t).unwrap()); // set semantics
    }

    #[test]
    fn gather_round_trip() {
        let fr = loaded(8, 200);
        let all = fr.gather();
        assert_eq!(all.len(), 200);
        for i in 0..200 {
            assert!(all.contains(&Tuple::of((i, "x"))));
        }
    }

    #[test]
    fn single_node_degenerates_to_plain_relation() {
        let fr = loaded(1, 50);
        assert_eq!(fr.fragment(0).len(), 50);
    }

    #[test]
    fn refragment_moves_tuples() {
        let fr = loaded(2, 100);
        let (re, _moved) = fr.refragment(0, 8);
        assert_eq!(re.len(), 100);
        assert_eq!(re.nodes(), 8);
        // Same attribute, same node count: nothing moves.
        let (_, moved) = fr.refragment(0, 2);
        assert_eq!(moved, 0);
    }

    #[test]
    fn schema_violations_rejected() {
        let mut fr = loaded(2, 1);
        assert!(fr.insert(Tuple::of(("bad", "x"))).is_err());
        assert!(fr.insert(Tuple::of((1,))).is_err());
    }
}
