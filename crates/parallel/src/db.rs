//! The shared-nothing parallel database and its constraint checks.
//!
//! Each "node" of the simulated POOMA machine is an OS thread that owns
//! one fragment of every fragmented relation. The §7 checks decompose as
//! in \[7\]:
//!
//! * **domain checks** `σ_{¬ψ}(R)` — each node scans only its fragment;
//!   no communication at all,
//! * **referential checks** `R ▷_{R.i = S.j} S` — when `R` is fragmented
//!   on `i` and `S` on `j` (co-partitioning), each node anti-joins its two
//!   local fragments; otherwise the relevant side is repartitioned first
//!   (the shuffle's tuple movement is reported),
//! * **differential variants** check only a delta batch, routed to nodes
//!   by hash — the paper's 5 000-tuple insertion experiment.

use std::sync::Arc;

use tm_algebra::{eval_scalar, extract_equi_keys, ScalarExpr};
use tm_relational::util::{fx_set_with_capacity, FxHashMap, FxHashSet};
use tm_relational::{Database, DatabaseSchema, Relation, RelationSchema, Tuple, Value};

use crate::fragment::{route_value, FragmentedRelation};

/// Outcome of a parallel check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of violating tuples found (0 ⇒ constraint satisfied).
    pub violations: usize,
    /// Tuples that crossed node boundaries (repartitioning traffic).
    pub tuples_shuffled: usize,
    /// Nodes that participated.
    pub nodes: usize,
}

impl CheckReport {
    /// Whether the constraint is satisfied.
    pub fn satisfied(&self) -> bool {
        self.violations == 0
    }
}

/// A shared-nothing database of fragmented relations over `n` nodes.
#[derive(Debug, Clone)]
pub struct ParallelDb {
    nodes: usize,
    relations: FxHashMap<String, FragmentedRelation>,
}

impl ParallelDb {
    /// Create a database over `nodes` nodes.
    ///
    /// # Panics
    /// Panics when `nodes == 0`.
    pub fn new(nodes: usize) -> ParallelDb {
        assert!(nodes > 0, "at least one node required");
        ParallelDb {
            nodes,
            relations: FxHashMap::default(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Declare a relation fragmented on `key_col`.
    pub fn create_relation(&mut self, schema: RelationSchema, key_col: usize) {
        let name = schema.name().to_owned();
        self.relations.insert(
            name,
            FragmentedRelation::new(Arc::new(schema), key_col, self.nodes),
        );
    }

    /// The fragmented relation by name.
    pub fn relation(&self, name: &str) -> Option<&FragmentedRelation> {
        self.relations.get(name)
    }

    /// Mutable access (loading).
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut FragmentedRelation> {
        self.relations.get_mut(name)
    }

    /// Bulk-load tuples.
    pub fn load(
        &mut self,
        name: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, tm_relational::RelationalError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| tm_relational::RelationalError::UnknownRelation(name.to_owned()))?
            .insert_all(tuples)
    }

    /// Parallel **domain check**: count tuples of `rel` violating
    /// `predicate` (a scalar over the tuple, `true` = violation). Each
    /// node scans its own fragment concurrently.
    pub fn check_domain(&self, rel: &str, violation_pred: &ScalarExpr) -> CheckReport {
        let Some(fr) = self.relations.get(rel) else {
            return CheckReport::default();
        };
        // Scalar predicates over plain columns need no relation context;
        // an empty database satisfies the EvalContext bound.
        let empty_schema = Arc::new(DatabaseSchema::new());
        let violations: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.nodes)
                .map(|i| {
                    let frag = fr.fragment(i);
                    let pred = violation_pred;
                    let empty_schema = empty_schema.clone();
                    scope.spawn(move || {
                        let ctx = Database::new(empty_schema);
                        frag.iter()
                            .filter(|t| {
                                eval_scalar(pred, t, &ctx)
                                    .ok()
                                    .and_then(|v| v.as_bool())
                                    .unwrap_or(false)
                            })
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node panicked"))
                .sum()
        });
        CheckReport {
            violations,
            tuples_shuffled: 0,
            nodes: self.nodes,
        }
    }

    /// Parallel **differential domain check**: check only a batch of
    /// inserted tuples. The batch is routed to nodes by the relation's
    /// fragmentation attribute first (as the insertion itself would be).
    pub fn check_domain_delta(
        &self,
        rel: &str,
        delta: &[Tuple],
        violation_pred: &ScalarExpr,
    ) -> CheckReport {
        let Some(fr) = self.relations.get(rel) else {
            return CheckReport::default();
        };
        let buckets = self.route_batch(delta, fr.key_col());
        let empty_schema = Arc::new(DatabaseSchema::new());
        let violations: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .iter()
                .map(|bucket| {
                    let pred = violation_pred;
                    let empty_schema = empty_schema.clone();
                    scope.spawn(move || {
                        let ctx = Database::new(empty_schema);
                        bucket
                            .iter()
                            .filter(|t| {
                                eval_scalar(pred, t, &ctx)
                                    .ok()
                                    .and_then(|v| v.as_bool())
                                    .unwrap_or(false)
                            })
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node panicked"))
                .sum()
        });
        CheckReport {
            violations,
            tuples_shuffled: 0,
            nodes: self.nodes,
        }
    }

    /// Parallel **referential check**: count tuples of `child` whose
    /// `child_col` value has no match in `parent`'s `parent_col`.
    ///
    /// When both relations are fragmented on the join attributes
    /// (co-partitioning), the check is node-local. Otherwise the parent's
    /// key column is repartitioned by hash first; the shuffled tuple count
    /// is reported.
    pub fn check_referential(
        &self,
        child: &str,
        child_col: usize,
        parent: &str,
        parent_col: usize,
    ) -> CheckReport {
        self.check_referential_keys(child, parent, &[(child_col, parent_col)])
    }

    /// Parallel referential check driven by a **join predicate** instead of
    /// explicit column numbers — the predicate over the concatenated
    /// `child ++ parent` tuple that a `child ▷ parent` anti-join would
    /// carry. The equi-join keys are extracted with the same
    /// [`tm_algebra::extract_equi_keys`] analyzer the hash execution paths
    /// use, so co-partition detection and shuffle routing share one code
    /// path with the sequential engine.
    ///
    /// Returns `None` when the check cannot reproduce what the anti-join
    /// would compute — the predicate has no extractable key, leaves a
    /// residual conjunct (key-set probing cannot evaluate residuals), or
    /// pairs key columns of different declared types (the key sets match
    /// with typed [`Value`] equality, which would miss `compare`'s
    /// `Int`/`Double` cross-type matches) — and when either relation is
    /// unknown. Callers then gather the fragments and use the algebra
    /// evaluator instead.
    pub fn check_referential_join(
        &self,
        child: &str,
        parent: &str,
        pred: &ScalarExpr,
    ) -> Option<CheckReport> {
        let (cf, pf) = (self.relations.get(child)?, self.relations.get(parent)?);
        let child_arity = cf.schema().arity();
        let total = child_arity + pf.schema().arity();
        let keys = extract_equi_keys(pred, child_arity, total)?;
        if keys.residual.is_some() {
            return None;
        }
        for &(c, p) in &keys.pairs {
            if cf.schema().attributes()[c].value_type() != pf.schema().attributes()[p].value_type()
            {
                return None;
            }
        }
        Some(self.check_referential_keys(child, parent, &keys.pairs))
    }

    /// Multi-column referential check: count child tuples whose key vector
    /// over the paired child columns has no match among the parent key
    /// vectors. Routing (and co-partition detection) uses the *first*
    /// pair, matching uses all of them. Matching is the typed set equality
    /// of [`Value`] (`Int(1)` and `Double(1.0)` are distinct), consistent
    /// with the other fragment-local checks in this module.
    ///
    /// `pairs` must be non-empty: with no key pairs there is nothing to
    /// check, and the degenerate call returns the default (zero-violation)
    /// report rather than scanning anything — debug builds assert.
    pub fn check_referential_keys(
        &self,
        child: &str,
        parent: &str,
        pairs: &[(usize, usize)],
    ) -> CheckReport {
        debug_assert!(!pairs.is_empty(), "referential check with no key pairs");
        let (Some(cf), Some(pf)) = (self.relations.get(child), self.relations.get(parent)) else {
            return CheckReport::default();
        };
        let Some(&(route_child_col, route_parent_col)) = pairs.first() else {
            return CheckReport::default();
        };
        // Single-column checks (the §7 hot path) probe bare `Value` sets —
        // no per-tuple key-vector allocation.
        if let [(child_col, parent_col)] = *pairs {
            return self.check_referential_single(cf, child_col, pf, parent_col);
        }
        let child_cols: Vec<usize> = pairs.iter().map(|&(c, _)| c).collect();
        let parent_cols: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        let co_partitioned = cf.key_col() == route_child_col && pf.key_col() == route_parent_col;
        let (parent_keys, shuffled) = self.parent_key_vecs(pf, &parent_cols, co_partitioned);
        let violations: usize = std::thread::scope(|scope| {
            let keys = &parent_keys;
            let child_cols = &child_cols;
            let handles: Vec<_> = (0..self.nodes)
                .map(|i| {
                    let frag = cf.fragment(i);
                    let nodes = self.nodes;
                    scope.spawn(move || {
                        frag.iter()
                            .filter(|t| match key_vec(t, child_cols) {
                                Some(kv) => {
                                    let set = if co_partitioned {
                                        &keys[i]
                                    } else {
                                        &keys[route_value(&kv[0], nodes)]
                                    };
                                    !set.contains(&kv)
                                }
                                None => true,
                            })
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node panicked"))
                .sum()
        });
        CheckReport {
            violations,
            tuples_shuffled: shuffled,
            nodes: self.nodes,
        }
    }

    /// Single-column referential check over bare `Value` key sets — the
    /// allocation-free hot path the §7 experiments and benches measure.
    fn check_referential_single(
        &self,
        cf: &FragmentedRelation,
        child_col: usize,
        pf: &FragmentedRelation,
        parent_col: usize,
    ) -> CheckReport {
        let co_partitioned = cf.key_col() == child_col && pf.key_col() == parent_col;
        let (parent_keys, shuffled) = self.parent_key_sets(pf, parent_col, co_partitioned);
        // Each node scans its own child fragment directly — no coordinator
        // materialisation step, so the scan parallelises fully.
        let violations: usize = std::thread::scope(|scope| {
            let keys = &parent_keys;
            let handles: Vec<_> = (0..self.nodes)
                .map(|i| {
                    let frag = cf.fragment(i);
                    let nodes = self.nodes;
                    scope.spawn(move || {
                        frag.iter()
                            .filter(|t| match t.get(child_col) {
                                Some(v) => {
                                    let set = if co_partitioned {
                                        &keys[i]
                                    } else {
                                        &keys[route_value(v, nodes)]
                                    };
                                    !set.contains(v)
                                }
                                None => true,
                            })
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node panicked"))
                .sum()
        });
        CheckReport {
            violations,
            tuples_shuffled: shuffled,
            nodes: self.nodes,
        }
    }

    /// Build per-node hash sets of parent key *vectors* over `parent_cols`
    /// (the multi-column analogue of [`ParallelDb::parent_key_sets`]).
    /// Routing uses the first key column's value.
    fn parent_key_vecs(
        &self,
        parent: &FragmentedRelation,
        parent_cols: &[usize],
        co_partitioned: bool,
    ) -> (Vec<FxHashSet<Vec<Value>>>, usize) {
        if co_partitioned {
            let sets = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.nodes)
                    .map(|i| {
                        let frag = parent.fragment(i);
                        scope.spawn(move || {
                            let mut set = fx_set_with_capacity(frag.len());
                            for t in frag.iter() {
                                if let Some(kv) = key_vec(t, parent_cols) {
                                    set.insert(kv);
                                }
                            }
                            set
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("node panicked"))
                    .collect::<Vec<_>>()
            });
            (sets, 0)
        } else {
            // Shuffle: every parent key vector goes to the hash-home node
            // of its routing (first) column.
            let mut sets: Vec<FxHashSet<Vec<Value>>> =
                (0..self.nodes).map(|_| FxHashSet::default()).collect();
            let mut shuffled = 0;
            for (i, frag) in parent.fragments().iter().enumerate() {
                for t in frag.iter() {
                    if let Some(kv) = key_vec(t, parent_cols) {
                        let dest = route_value(&kv[0], self.nodes);
                        if dest != i {
                            shuffled += 1;
                        }
                        sets[dest].insert(kv);
                    }
                }
            }
            (sets, shuffled)
        }
    }

    /// Parallel **differential referential check** (the §7 experiment):
    /// check only `delta` (freshly inserted child tuples) against the
    /// parent. Deltas are routed by the *join* attribute so each node
    /// probes only its local parent keys.
    pub fn check_referential_delta(
        &self,
        delta: &[Tuple],
        child_col: usize,
        parent: &str,
        parent_col: usize,
    ) -> CheckReport {
        let Some(pf) = self.relations.get(parent) else {
            return CheckReport::default();
        };
        let co_partitioned = pf.key_col() == parent_col;
        let (parent_keys, shuffled) = self.parent_key_sets(pf, parent_col, co_partitioned);
        let buckets = self.route_batch(delta, child_col);
        let violations = self.antijoin_counts(buckets, child_col, &parent_keys, true);
        CheckReport {
            violations,
            tuples_shuffled: shuffled,
            nodes: self.nodes,
        }
    }

    /// Route a tuple batch into per-node buckets by hash of `col`.
    fn route_batch<'t>(&self, tuples: &'t [Tuple], col: usize) -> Vec<Vec<&'t Tuple>> {
        let mut buckets: Vec<Vec<&Tuple>> = vec![Vec::new(); self.nodes];
        for t in tuples {
            if let Some(v) = t.get(col) {
                buckets[route_value(v, self.nodes)].push(t);
            }
        }
        buckets
    }

    /// Build per-node hash sets of parent join-key values. Co-partitioned:
    /// node-local, no movement. Otherwise the keys are shuffled to their
    /// hash-home nodes.
    fn parent_key_sets(
        &self,
        parent: &FragmentedRelation,
        parent_col: usize,
        co_partitioned: bool,
    ) -> (Vec<FxHashSet<Value>>, usize) {
        if co_partitioned {
            let sets = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.nodes)
                    .map(|i| {
                        let frag = parent.fragment(i);
                        scope.spawn(move || {
                            let mut set = fx_set_with_capacity(frag.len());
                            for t in frag.iter() {
                                if let Some(v) = t.get(parent_col) {
                                    set.insert(v.clone());
                                }
                            }
                            set
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("node panicked"))
                    .collect::<Vec<_>>()
            });
            (sets, 0)
        } else {
            // Shuffle: every parent key is sent to its hash-home node.
            let mut sets: Vec<FxHashSet<Value>> =
                (0..self.nodes).map(|_| FxHashSet::default()).collect();
            let mut shuffled = 0;
            for (i, frag) in parent.fragments().iter().enumerate() {
                for t in frag.iter() {
                    if let Some(v) = t.get(parent_col) {
                        let dest = route_value(v, self.nodes);
                        if dest != i {
                            shuffled += 1;
                        }
                        sets[dest].insert(v.clone());
                    }
                }
            }
            (sets, shuffled)
        }
    }

    /// Per-node anti-join counting over pre-routed tuple buckets: child
    /// tuples whose `child_col` value is absent from the paired parent key
    /// set. `local` indicates bucket `i` probes key set `i`; otherwise the
    /// probe routes each value to its hash-home set.
    fn antijoin_counts(
        &self,
        buckets: Vec<Vec<&Tuple>>,
        child_col: usize,
        parent_keys: &[FxHashSet<Value>],
        local: bool,
    ) -> usize {
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(i, bucket)| {
                    let keys = parent_keys;
                    let nodes = self.nodes;
                    scope.spawn(move || {
                        bucket
                            .into_iter()
                            .filter(|t| match t.get(child_col) {
                                Some(v) => {
                                    let set = if local {
                                        &keys[i]
                                    } else {
                                        &keys[route_value(v, nodes)]
                                    };
                                    !set.contains(v)
                                }
                                None => true,
                            })
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node panicked"))
                .sum()
        })
    }

    /// Gather a fragmented relation into a plain [`Relation`].
    pub fn gather(&self, name: &str) -> Option<Relation> {
        self.relations.get(name).map(FragmentedRelation::gather)
    }
}

/// The key vector of a tuple over `cols`, or `None` when a column is out
/// of range (counted as a violation by referential checks, like the
/// single-column probes).
fn key_vec(t: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    cols.iter()
        .map(|&c| t.get(c).cloned())
        .collect::<Option<Vec<Value>>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::CmpOp;
    use tm_relational::ValueType;

    fn key_schema() -> RelationSchema {
        RelationSchema::of("parent", &[("k", ValueType::Int), ("p", ValueType::Int)])
    }

    fn fk_schema() -> RelationSchema {
        RelationSchema::of("child", &[("c", ValueType::Int), ("fk", ValueType::Int)])
    }

    fn loaded_db(nodes: usize, parents: i64, children: i64) -> ParallelDb {
        let mut db = ParallelDb::new(nodes);
        db.create_relation(key_schema(), 0);
        db.create_relation(fk_schema(), 1); // fragmented on the FK → co-partitioned
        db.load("parent", (0..parents).map(|i| Tuple::of((i, 0))))
            .unwrap();
        db.load("child", (0..children).map(|i| Tuple::of((i, i % parents))))
            .unwrap();
        db
    }

    #[test]
    fn domain_check_counts_violations() {
        let db = loaded_db(4, 10, 100);
        // violation: fk < 0 — none.
        let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(1), ScalarExpr::int(0));
        let r = db.check_domain("child", &pred);
        assert!(r.satisfied());
        assert_eq!(r.nodes, 4);
        // violation: fk >= 5 — children with fk in 5..10: half of them.
        let pred = ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(1), ScalarExpr::int(5));
        let r = db.check_domain("child", &pred);
        assert_eq!(r.violations, 50);
    }

    #[test]
    fn referential_check_copartitioned() {
        let mut db = loaded_db(8, 100, 1000);
        let r = db.check_referential("child", 1, "parent", 0);
        assert!(r.satisfied());
        assert_eq!(
            r.tuples_shuffled, 0,
            "co-partitioned check must not move data"
        );
        // Orphan a child.
        db.relation_mut("child")
            .unwrap()
            .insert(Tuple::of((5000, 777)))
            .unwrap();
        let r = db.check_referential("child", 1, "parent", 0);
        assert_eq!(r.violations, 1);
    }

    #[test]
    fn referential_check_requires_shuffle_when_not_copartitioned() {
        let mut db = ParallelDb::new(4);
        db.create_relation(key_schema(), 1); // fragmented on non-key column
        db.create_relation(fk_schema(), 1);
        db.load("parent", (0..100).map(|i| Tuple::of((i, i % 3))))
            .unwrap();
        db.load("child", (0..500).map(|i| Tuple::of((i, i % 100))))
            .unwrap();
        let r = db.check_referential("child", 1, "parent", 0);
        assert!(r.satisfied());
        assert!(r.tuples_shuffled > 0, "shuffle expected");
    }

    #[test]
    fn delta_checks_match_full_checks() {
        let db = loaded_db(8, 100, 1000);
        // A delta with 3 orphans out of 50.
        let delta: Vec<Tuple> = (0..50)
            .map(|i| {
                if i < 3 {
                    Tuple::of((10_000 + i, 999))
                } else {
                    Tuple::of((10_000 + i, i % 100))
                }
            })
            .collect();
        let r = db.check_referential_delta(&delta, 1, "parent", 0);
        assert_eq!(r.violations, 3);
        let pred = ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(1), ScalarExpr::int(999));
        let r = db.check_domain_delta("child", &delta, &pred);
        assert_eq!(r.violations, 3);
    }

    #[test]
    fn node_counts_agree() {
        // The same data and checks must give identical answers on 1, 2, 4,
        // and 8 nodes (determinism of the parallel decomposition).
        let mut expected: Option<usize> = None;
        for nodes in [1, 2, 4, 8] {
            let mut db = loaded_db(nodes, 50, 500);
            db.relation_mut("child")
                .unwrap()
                .insert_all((0..7).map(|i| Tuple::of((9_000 + i, 800 + i))))
                .unwrap();
            let r = db.check_referential("child", 1, "parent", 0);
            match expected {
                None => expected = Some(r.violations),
                Some(e) => assert_eq!(r.violations, e, "nodes={nodes}"),
            }
        }
        assert_eq!(expected, Some(7));
    }

    #[test]
    fn predicate_driven_check_matches_explicit_columns() {
        let mut db = loaded_db(8, 100, 1000);
        db.relation_mut("child")
            .unwrap()
            .insert(Tuple::of((5000, 777)))
            .unwrap();
        // child(c, fk) ▷ parent(k, p): #1 = #2 over the concatenated tuple.
        let pred = ScalarExpr::col_eq(1, 2);
        let by_pred = db.check_referential_join("child", "parent", &pred).unwrap();
        let by_cols = db.check_referential("child", 1, "parent", 0);
        assert_eq!(by_pred, by_cols);
        assert_eq!(by_pred.violations, 1);
        assert_eq!(by_pred.tuples_shuffled, 0, "co-partitioned via extractor");
    }

    #[test]
    fn predicate_without_keys_or_with_residual_rejected() {
        let db = loaded_db(4, 10, 100);
        // No equality between the two sides.
        let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(1), ScalarExpr::col(2));
        assert!(db
            .check_referential_join("child", "parent", &pred)
            .is_none());
        // Key plus residual: key-set probing cannot evaluate the residual.
        let pred = ScalarExpr::and(
            ScalarExpr::col_eq(1, 2),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::int(0)),
        );
        assert!(db
            .check_referential_join("child", "parent", &pred)
            .is_none());
        // Unknown relations.
        assert!(db
            .check_referential_join("ghost", "parent", &ScalarExpr::col_eq(1, 2))
            .is_none());
    }

    #[test]
    fn mixed_type_key_pair_rejected() {
        // Int FK against a Double parent key: typed key sets would miss
        // `compare`'s cross-type matches, so the predicate entry point
        // must decline rather than diverge from the algebra anti-join.
        let mut db = ParallelDb::new(2);
        db.create_relation(RelationSchema::of("parent", &[("k", ValueType::Double)]), 0);
        db.create_relation(fk_schema(), 1);
        db.load("parent", (0..10).map(|i| Tuple::of((f64::from(i),))))
            .unwrap();
        db.load("child", (0..10i64).map(|i| Tuple::of((i, i % 10))))
            .unwrap();
        assert!(db
            .check_referential_join("child", "parent", &ScalarExpr::col_eq(1, 2))
            .is_none());
    }

    #[test]
    fn multi_key_referential_check() {
        // parent fragmented on k, child on fk; match on (fk, c) = (k, p).
        let mut db = ParallelDb::new(4);
        db.create_relation(key_schema(), 0);
        db.create_relation(fk_schema(), 1);
        db.load("parent", (0..50).map(|i| Tuple::of((i, i % 7))))
            .unwrap();
        db.load("child", (0..50).map(|i| Tuple::of((i % 7, i))))
            .unwrap();
        let full = db.check_referential_keys("child", "parent", &[(1, 0), (0, 1)]);
        // Ground truth via sequential sets.
        let parent = db.gather("parent").unwrap();
        let expected = db
            .gather("child")
            .unwrap()
            .iter()
            .filter(|c| {
                !parent
                    .iter()
                    .any(|p| c.get(1) == p.get(0) && c.get(0) == p.get(1))
            })
            .count();
        assert_eq!(full.violations, expected);
    }

    #[test]
    fn gather_reconstructs() {
        let db = loaded_db(4, 10, 40);
        assert_eq!(db.gather("child").unwrap().len(), 40);
        assert!(db.gather("nosuch").is_none());
    }

    #[test]
    fn unknown_relations_yield_empty_reports() {
        let db = ParallelDb::new(2);
        let pred = ScalarExpr::true_();
        assert_eq!(db.check_domain("ghost", &pred), CheckReport::default());
        assert_eq!(db.check_referential("a", 0, "b", 0), CheckReport::default());
    }
}
