//! Property test: the CL pretty-printer and parser are mutually inverse —
//! `parse(print(f)) == f` for randomly generated well-formed formulas.

use proptest::prelude::*;

use tm_calculus::ast::{AggFn, Atom, AttrSel, CmpOp, Formula, Quantifier, Term};
use tm_calculus::parse_formula;
use tm_relational::Value;

fn leaf_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (-20..20i64).prop_map(|v| Term::Const(Value::Int(v))),
        "[a-z]{1,4}".prop_map(|s| Term::Const(Value::Str(s))),
        ("[xyz]", 1usize..4).prop_map(|(v, p)| Term::Attr {
            var: v,
            sel: AttrSel::Position(p)
        }),
        ("[rs]", 1usize..3).prop_map(|(rel, p)| Term::Agg {
            func: AggFn::Sum,
            rel,
            sel: AttrSel::Position(p)
        }),
        "[rs]".prop_map(|rel| Term::Cnt { rel }),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

fn atom() -> impl Strategy<Value = Formula> {
    prop_oneof![
        (cmp_op(), leaf_term(), leaf_term())
            .prop_map(|(op, l, r)| Formula::Atom(Atom::Cmp(op, l, r))),
        ("[xyz]", "[rs]").prop_map(|(var, rel)| Formula::Atom(Atom::Member { var, rel })),
        ("[xy]", "[yz]").prop_map(|(a, b)| Formula::Atom(Atom::TupleEq(a, b))),
    ]
}

fn formula() -> impl Strategy<Value = Formula> {
    atom().prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            ("[xyz]", inner.clone()).prop_map(|(v, f)| Formula::Quant(
                Quantifier::Forall,
                v,
                Box::new(f)
            )),
            ("[xyz]", inner).prop_map(|(v, f)| Formula::Quant(Quantifier::Exists, v, Box::new(f))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(f in formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(reparsed, f, "round trip failed for `{}`", printed);
    }
}

#[test]
fn paper_examples_round_trip() {
    for src in [
        "forall x (x in beer implies x.alcohol >= 0)",
        "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        "SUM(account, 2) <= 1000000",
        "not exists x (x in beer and x.alcohol < 0)",
        "forall x (x in beer@pre implies exists y (y in beer and x == y))",
    ] {
        let f = parse_formula(src).unwrap();
        let reparsed = parse_formula(&f.to_string()).unwrap();
        assert_eq!(f, reparsed, "round trip failed for `{src}`");
    }
}
