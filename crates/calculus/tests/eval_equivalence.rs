//! Property test: the indexed quantifier fast path of the default
//! evaluator agrees with the naive nested-loop recursion on randomized
//! referential-shaped constraints over randomized states — including
//! `Null` key values and empty relations on either side.

use proptest::prelude::*;

use tm_calculus::ast::{Atom, CmpOp, Formula, Term};
use tm_calculus::{analyze, eval_constraint, eval_constraint_naive, StateSource};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, Value, ValueType};

type Cell = Option<i64>;

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Int)]),
        RelationSchema::of("s", &[("c", ValueType::Int), ("d", ValueType::Int)]),
    ])
    .unwrap()
}

fn db(r: &[(Cell, Cell)], s: &[(Cell, Cell)]) -> Database {
    let value = |c: Cell| c.map_or(Value::Null, Value::Int);
    let mut db = Database::new(schema().into_shared());
    for &(a, b) in r {
        db.insert("r", Tuple::from_values(vec![value(a), value(b)]))
            .unwrap();
    }
    for &(c, d) in s {
        db.insert("s", Tuple::from_values(vec![value(c), value(d)]))
            .unwrap();
    }
    db
}

fn rel_strategy() -> impl Strategy<Value = Vec<(Cell, Cell)>> {
    prop::collection::vec(
        (prop::option::of(-2..4i64), prop::option::of(-2..4i64)),
        0..8,
    )
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

/// Bodies for `exists y (y in s and <key> [and <extra>])` with an
/// equality pinning an attribute of `y` — the indexed shape — optionally
/// combined with extra conditions, constant pins, or shapes the index
/// must *not* mis-handle (no keys, disjunctions).
fn constraint() -> impl Strategy<Value = Formula> {
    // x.i = y.j referential key, both attribute orders.
    let keyed = (1usize..3, 1usize..3, 0usize..2).prop_map(|(i, j, flip)| {
        let (l, r) = if flip == 1 {
            (Term::attr("y", j), Term::attr("x", i))
        } else {
            (Term::attr("x", i), Term::attr("y", j))
        };
        Formula::Atom(Atom::Cmp(CmpOp::Eq, l, r))
    });
    // A secondary comparison on y alone.
    let extra = (cmp_op(), 1usize..3, -1..3i64)
        .prop_map(|(op, j, k)| Formula::Atom(Atom::Cmp(op, Term::attr("y", j), Term::int(k))));
    // Constant pin: y.j = k.
    let const_pin = (1usize..3, -1..3i64)
        .prop_map(|(j, k)| Formula::Atom(Atom::Cmp(CmpOp::Eq, Term::attr("y", j), Term::int(k))));

    let referential = (keyed, prop::option::of(extra)).prop_map(|(key, extra)| {
        let inner = match extra {
            None => key,
            Some(e) => Formula::and(key, e),
        };
        Formula::forall(
            "x",
            Formula::implies(
                Formula::member("x", "r"),
                Formula::exists("y", Formula::and(Formula::member("y", "s"), inner)),
            ),
        )
    });
    let negated_existence = const_pin
        .prop_map(|pin| {
            Formula::not(Formula::exists(
                "y",
                Formula::and(Formula::member("y", "s"), pin),
            ))
        })
        .boxed();
    // Disjunctive body: the key sits under `or`, so the index must not
    // engage (skipping would be unsound); both paths must still agree.
    let disjunctive = (1usize..3, 1usize..3).prop_map(|(i, j)| {
        Formula::forall(
            "x",
            Formula::implies(
                Formula::member("x", "r"),
                Formula::exists(
                    "y",
                    Formula::and(
                        Formula::member("y", "s"),
                        Formula::or(
                            Formula::Atom(Atom::Cmp(
                                CmpOp::Eq,
                                Term::attr("x", i),
                                Term::attr("y", j),
                            )),
                            Formula::Atom(Atom::Cmp(CmpOp::Lt, Term::attr("y", 1), Term::int(0))),
                        ),
                    ),
                ),
            ),
        )
    });
    prop_oneof![referential, negated_existence, disjunctive]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_and_naive_evaluation_agree(
        r in rel_strategy(),
        s in rel_strategy(),
        f in constraint(),
    ) {
        let db = db(&r, &s);
        let info = analyze(&f, db.schema()).unwrap();
        let fast = eval_constraint(&info, &StateSource(&db));
        let naive = eval_constraint_naive(&info, &StateSource(&db));
        prop_assert_eq!(fast, naive, "constraint: {}", f);
    }
}
