//! Direct semantic evaluation of CL constraints — the ground truth.
//!
//! Definition 3.1 says a state constraint is a boolean function over
//! database states; Definition 3.3 extends this to transitions. This module
//! evaluates analysed formulas exactly that way, by structural recursion
//! with quantifiers ranging over the tuples of the relation each variable
//! is bound to (safety guarantees such a relation exists).
//!
//! The evaluator is intentionally naive — O(∏ |R_i|) nested loops — because
//! its role is to be *obviously correct*: the whole transaction
//! modification machinery is property-tested against it.

use tm_relational::util::FxHashMap;
use tm_relational::{auxiliary, AuxKind, Database, Relation, Transition, Tuple, Value};

use crate::analysis::ConstraintInfo;
use crate::ast::{AggFn, ArithFn, Atom, AttrSel, CmpOp, Formula, Quantifier, Term, VarName};
use crate::error::{CalculusError, Result};

/// Resolves relation names during constraint evaluation.
pub trait ConstraintSource {
    /// The state of (possibly auxiliary) relation `name`.
    fn relation(&self, name: &str) -> Result<&Relation>;
}

/// Evaluate constraints against a single database state; `R@pre` resolves
/// to the *same* state (a transition that changed nothing), which makes
/// transition constraints vacuously about `(D, D)` — useful for initial
/// validation.
pub struct StateSource<'a>(pub &'a Database);

impl ConstraintSource for StateSource<'_> {
    fn relation(&self, name: &str) -> Result<&Relation> {
        let base = auxiliary::base_of(name);
        self.0
            .relation(base)
            .map_err(|_| CalculusError::UnknownRelation(name.to_owned()))
    }
}

/// Evaluate constraints against a transition `(D^t, D^{t+1})`: plain names
/// resolve to the post-state, `R@pre` to the pre-state, and the
/// differential names `R@ins` / `R@del` are not part of CL and are
/// rejected.
pub struct TransitionSource<'a>(pub &'a Transition);

impl ConstraintSource for TransitionSource<'_> {
    fn relation(&self, name: &str) -> Result<&Relation> {
        match auxiliary::parse_auxiliary(name) {
            None => self
                .0
                .after
                .relation(name)
                .map_err(|_| CalculusError::UnknownRelation(name.to_owned())),
            Some((base, AuxKind::Pre)) => self
                .0
                .before
                .relation(base)
                .map_err(|_| CalculusError::UnknownRelation(name.to_owned())),
            Some((_, _)) => Err(CalculusError::UnknownRelation(format!(
                "`{name}`: differential relations are not part of CL"
            ))),
        }
    }
}

type Env = FxHashMap<VarName, Tuple>;

fn eval_term(t: &Term, env: &Env, src: &impl ConstraintSource) -> Result<Value> {
    match t {
        Term::Const(v) => Ok(v.clone()),
        Term::Attr { var, sel } => {
            let tuple = env
                .get(var)
                .ok_or_else(|| CalculusError::UnboundVariable(var.clone()))?;
            let pos = match sel {
                AttrSel::Position(p) => *p,
                AttrSel::Name(n) => {
                    return Err(CalculusError::Eval(format!(
                        "unresolved attribute name `{var}.{n}` (run analysis first)"
                    )))
                }
            };
            tuple
                .get(pos - 1)
                .cloned()
                .ok_or_else(|| CalculusError::Eval(format!("position {pos} out of range")))
        }
        Term::Arith(op, l, r) => {
            let lv = eval_term(l, env, src)?;
            let rv = eval_term(r, env, src)?;
            arith(*op, &lv, &rv)
        }
        Term::Agg { func, rel, sel } => {
            let relation = src.relation(rel)?;
            let pos = match sel {
                AttrSel::Position(p) => *p,
                AttrSel::Name(n) => {
                    return Err(CalculusError::Eval(format!(
                        "unresolved attribute name in aggregate over `{rel}`: `{n}`"
                    )))
                }
            };
            aggregate(*func, relation, pos)
        }
        Term::Cnt { rel } => Ok(Value::Int(src.relation(rel)?.len() as i64)),
    }
}

fn arith(op: ArithFn, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithFn::Add => Ok(Value::Int(a.wrapping_add(*b))),
            ArithFn::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            ArithFn::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            ArithFn::Div => {
                if *b == 0 {
                    Err(CalculusError::Eval("division by zero".into()))
                } else {
                    Ok(Value::Int(a.wrapping_div(*b)))
                }
            }
        },
        _ => {
            let a = l.as_double().ok_or_else(|| {
                CalculusError::Eval(format!("non-numeric operand {l} in arithmetic"))
            })?;
            let b = r.as_double().ok_or_else(|| {
                CalculusError::Eval(format!("non-numeric operand {r} in arithmetic"))
            })?;
            match op {
                ArithFn::Add => Ok(Value::double(a + b)),
                ArithFn::Sub => Ok(Value::double(a - b)),
                ArithFn::Mul => Ok(Value::double(a * b)),
                ArithFn::Div => {
                    if b == 0.0 {
                        Err(CalculusError::Eval("division by zero".into()))
                    } else {
                        Ok(Value::double(a / b))
                    }
                }
            }
        }
    }
}

fn aggregate(func: AggFn, rel: &Relation, pos: usize) -> Result<Value> {
    let mut values = rel
        .iter()
        .filter_map(|t| t.get(pos - 1))
        .filter(|v| !v.is_null());
    match func {
        AggFn::Sum => {
            let mut int_sum = 0i64;
            let mut dbl_sum = 0f64;
            let mut any_double = false;
            for v in values {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        dbl_sum += *i as f64;
                    }
                    Value::Double(d) => {
                        any_double = true;
                        dbl_sum += d;
                    }
                    other => {
                        return Err(CalculusError::Eval(format!(
                            "SUM over non-numeric value {other}"
                        )))
                    }
                }
            }
            Ok(if any_double {
                Value::double(dbl_sum)
            } else {
                Value::Int(int_sum)
            })
        }
        AggFn::Avg => {
            let mut sum = 0f64;
            let mut n = 0usize;
            for v in values {
                sum += v
                    .as_double()
                    .ok_or_else(|| CalculusError::Eval("AVG over non-numeric".into()))?;
                n += 1;
            }
            if n == 0 {
                Err(CalculusError::Eval("AVG over empty relation".into()))
            } else {
                Ok(Value::double(sum / n as f64))
            }
        }
        AggFn::Min => values
            .by_ref()
            .min_by(|a, b| a.compare(b))
            .cloned()
            .ok_or_else(|| CalculusError::Eval("MIN over empty relation".into())),
        AggFn::Max => values
            .by_ref()
            .max_by(|a, b| a.compare(b))
            .cloned()
            .ok_or_else(|| CalculusError::Eval("MAX over empty relation".into())),
    }
}

fn eval_atom(a: &Atom, env: &Env, src: &impl ConstraintSource) -> Result<bool> {
    match a {
        Atom::Cmp(op, l, r) => {
            let lv = eval_term(l, env, src)?;
            let rv = eval_term(r, env, src)?;
            Ok(match op {
                CmpOp::Lt => lv.compare(&rv).is_lt(),
                CmpOp::Le => lv.compare(&rv).is_le(),
                CmpOp::Eq => lv.compare(&rv).is_eq(),
                CmpOp::Ne => lv.compare(&rv).is_ne(),
                CmpOp::Ge => lv.compare(&rv).is_ge(),
                CmpOp::Gt => lv.compare(&rv).is_gt(),
            })
        }
        Atom::Member { var, rel } => {
            let tuple = env
                .get(var)
                .ok_or_else(|| CalculusError::UnboundVariable(var.clone()))?;
            Ok(src.relation(rel)?.contains(tuple))
        }
        Atom::TupleEq(a, b) => {
            let ta = env
                .get(a)
                .ok_or_else(|| CalculusError::UnboundVariable(a.clone()))?;
            let tb = env
                .get(b)
                .ok_or_else(|| CalculusError::UnboundVariable(b.clone()))?;
            Ok(ta == tb)
        }
    }
}

fn eval_rec(
    f: &Formula,
    env: &mut Env,
    src: &impl ConstraintSource,
    ranges: &FxHashMap<VarName, String>,
) -> Result<bool> {
    match f {
        Formula::Atom(a) => eval_atom(a, env, src),
        Formula::Not(x) => Ok(!eval_rec(x, env, src, ranges)?),
        Formula::And(l, r) => Ok(eval_rec(l, env, src, ranges)? && eval_rec(r, env, src, ranges)?),
        Formula::Or(l, r) => Ok(eval_rec(l, env, src, ranges)? || eval_rec(r, env, src, ranges)?),
        Formula::Implies(l, r) => {
            Ok(!eval_rec(l, env, src, ranges)? || eval_rec(r, env, src, ranges)?)
        }
        Formula::Quant(q, v, body) => {
            let rel_name = ranges
                .get(v)
                .ok_or_else(|| CalculusError::UnsafeVariable(v.clone()))?;
            // Clone the tuple list to release the borrow on `src` before
            // recursing (the relation cannot change during evaluation).
            let tuples: Vec<Tuple> = src.relation(rel_name)?.iter().cloned().collect();
            match q {
                Quantifier::Forall => {
                    for t in tuples {
                        env.insert(v.clone(), t);
                        let ok = eval_rec(body, env, src, ranges)?;
                        env.remove(v);
                        if !ok {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
                Quantifier::Exists => {
                    for t in tuples {
                        env.insert(v.clone(), t);
                        let ok = eval_rec(body, env, src, ranges)?;
                        env.remove(v);
                        if ok {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
            }
        }
    }
}

/// Evaluate an analysed formula against a source.
pub fn eval_formula(
    formula: &Formula,
    ranges: &FxHashMap<VarName, String>,
    src: &impl ConstraintSource,
) -> Result<bool> {
    eval_rec(formula, &mut Env::default(), src, ranges)
}

/// Evaluate an analysed constraint (output of
/// [`crate::analysis::analyze`]) against a source.
pub fn eval_constraint(info: &ConstraintInfo, src: &impl ConstraintSource) -> Result<bool> {
    eval_formula(&info.formula, &info.ranges, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_formula;
    use tm_relational::schema::beer_schema;

    fn beer_db() -> Database {
        let mut db = Database::new(beer_schema().into_shared());
        db.insert("brewery", Tuple::of(("heineken", "amsterdam", "nl")))
            .unwrap();
        db.insert("brewery", Tuple::of(("guinness", "dublin", "ie")))
            .unwrap();
        db.insert("beer", Tuple::of(("pils", "lager", "heineken", 5.0_f64)))
            .unwrap();
        db.insert("beer", Tuple::of(("stout", "stout", "guinness", 4.2_f64)))
            .unwrap();
        db
    }

    fn check(src_text: &str, db: &Database) -> Result<bool> {
        let info = analyze(&parse_formula(src_text).unwrap(), db.schema()).unwrap();
        eval_constraint(&info, &StateSource(db))
    }

    #[test]
    fn domain_constraint_holds_then_fails() {
        let mut db = beer_db();
        let c = "forall x (x in beer implies x.alcohol >= 0)";
        assert_eq!(check(c, &db), Ok(true));
        db.insert("beer", Tuple::of(("bad", "lager", "heineken", -1.0_f64)))
            .unwrap();
        assert_eq!(check(c, &db), Ok(false));
    }

    #[test]
    fn referential_constraint() {
        let mut db = beer_db();
        let c = "forall x (x in beer implies \
                 exists y (y in brewery and x.brewery = y.name))";
        assert_eq!(check(c, &db), Ok(true));
        db.insert("beer", Tuple::of(("orphan", "ale", "nowhere", 5.0_f64)))
            .unwrap();
        assert_eq!(check(c, &db), Ok(false));
    }

    #[test]
    fn exists_over_empty_relation_is_false() {
        let db = Database::new(beer_schema().into_shared());
        assert_eq!(
            check("exists x (x in beer and x.alcohol > 0)", &db),
            Ok(false)
        );
        // forall over empty is vacuously true
        assert_eq!(
            check("forall x (x in beer implies x.alcohol > 0)", &db),
            Ok(true)
        );
    }

    #[test]
    fn aggregates_in_constraints() {
        let db = beer_db();
        assert_eq!(check("CNT(beer) <= 2", &db), Ok(true));
        assert_eq!(check("CNT(beer) < 2", &db), Ok(false));
        assert_eq!(check("AVG(beer, alcohol) < 5.0", &db), Ok(true));
        assert_eq!(check("MAX(beer, alcohol) = 5.0", &db), Ok(true));
        assert_eq!(check("MIN(beer, alcohol) > 4.0", &db), Ok(true));
        assert_eq!(check("SUM(beer, alcohol) > 9.0", &db), Ok(true));
    }

    #[test]
    fn tuple_equality_semantics() {
        let db = beer_db();
        // every beer equals itself: no two distinct tuples with same name
        let c = "forall x (x in beer implies \
                 forall y (y in beer implies (x == y or x.name != y.name)))";
        assert_eq!(check(c, &db), Ok(true));
    }

    #[test]
    fn transition_constraints_via_pre() {
        let before = beer_db();
        let mut after = before.clone();
        after
            .insert("beer", Tuple::of(("extra", "ale", "guinness", 6.0_f64)))
            .unwrap();
        after.tick();
        let tr = Transition::new(before, after);
        // "beers are never removed": every pre-beer still exists.
        let grow_only = "forall x (x in beer@pre implies exists y (y in beer and x == y))";
        let info = analyze(&parse_formula(grow_only).unwrap(), tr.after.schema()).unwrap();
        assert_eq!(eval_constraint(&info, &TransitionSource(&tr)), Ok(true));

        // Now delete a beer: the constraint must fail.
        let before = beer_db();
        let mut after = before.clone();
        after
            .delete("beer", &Tuple::of(("pils", "lager", "heineken", 5.0_f64)))
            .unwrap();
        after.tick();
        let tr = Transition::new(before, after);
        assert_eq!(eval_constraint(&info, &TransitionSource(&tr)), Ok(false));
    }

    #[test]
    fn differential_names_rejected_in_cl() {
        let before = beer_db();
        let mut after = before.clone();
        after.tick();
        let tr = Transition::new(before, after);
        let src = TransitionSource(&tr);
        assert!(matches!(
            src.relation("beer@ins"),
            Err(CalculusError::UnknownRelation(_))
        ));
    }

    #[test]
    fn arith_in_constraints() {
        let db = beer_db();
        assert_eq!(
            check("forall x (x in beer implies x.alcohol * 2 <= 10.0)", &db),
            Ok(true)
        );
        assert_eq!(
            check("forall x (x in beer implies x.alcohol + 1 > 5.0)", &db),
            Ok(true)
        );
    }

    #[test]
    fn empty_min_errors() {
        let db = Database::new(beer_schema().into_shared());
        let r = check("MIN(beer, alcohol) > 0", &db);
        assert!(matches!(r, Err(CalculusError::Eval(_))));
    }

    #[test]
    fn state_source_resolves_pre_to_same_state() {
        let db = beer_db();
        assert_eq!(
            check(
                "forall x (x in beer@pre implies exists y (y in beer and x == y))",
                &db
            ),
            Ok(true)
        );
    }
}
