//! Direct semantic evaluation of CL constraints — the ground truth.
//!
//! Definition 3.1 says a state constraint is a boolean function over
//! database states; Definition 3.3 extends this to transitions. This module
//! evaluates analysed formulas exactly that way, by structural recursion
//! with quantifiers ranging over the tuples of the relation each variable
//! is bound to (safety guarantees such a relation exists).
//!
//! ## Execution strategies
//!
//! The baseline recursion is O(∏ |R_i|) nested loops, kept available as
//! [`eval_formula_naive`] because its role is to be *obviously correct*:
//! the whole transaction modification machinery is property-tested against
//! it. The default entry points ([`eval_formula`], [`eval_constraint`])
//! additionally apply a **hash probe fast path** to existential
//! quantifiers: for a body shaped like `exists y (y in S and … x.i = y.j
//! …)` — the inner quantifier of every referential constraint — the
//! relation `S` is indexed **once** on the pinned attributes `j` (values
//! hashed with [`Value::hash_for_join`], the same compare-consistent hash
//! the algebra's hash joins use), and each entry from the enclosing
//! quantifier probes the index instead of scanning `S`. That turns
//! `forall x (x in R implies exists y (y in S and x.i = y.j))` from
//! O(|R|·|S|) into O(|R| + |S|). Bucket candidates are verified with
//! [`Value::compare`] and then evaluated through the ordinary recursion,
//! so the fast path only *restricts which tuples are visited* — any tuple
//! it skips has a false key conjunct and hence a false body. Formulas
//! whose *probe* terms fail to evaluate fall back to the full scan.
//!
//! One caveat on error-raising bodies (mirroring the algebra's hash
//! paths, see `tm_algebra::keys::extract_equi_keys`): the naive recursion
//! evaluates a skipped tuple's conjuncts left-to-right until the false
//! key conjunct short-circuits, so a runtime error (division by zero) in
//! a conjunct *before* the key surfaces under the naive evaluator but not
//! under the fast path, which never visits that tuple. For error-free
//! bodies — everything the analyser's type checks and the property suite
//! cover — the two evaluators agree exactly.

use tm_relational::util::{hash_join_key, FxHashMap};
use tm_relational::{auxiliary, AuxKind, Database, Relation, Transition, Tuple, Value};

use crate::analysis::ConstraintInfo;
use crate::ast::{AggFn, ArithFn, Atom, AttrSel, CmpOp, Formula, Quantifier, Term, VarName};
use crate::error::{CalculusError, Result};

/// Resolves relation names during constraint evaluation.
pub trait ConstraintSource {
    /// The state of (possibly auxiliary) relation `name`.
    fn relation(&self, name: &str) -> Result<&Relation>;
}

/// Evaluate constraints against a single database state; `R@pre` resolves
/// to the *same* state (a transition that changed nothing), which makes
/// transition constraints vacuously about `(D, D)` — useful for initial
/// validation.
pub struct StateSource<'a>(pub &'a Database);

impl ConstraintSource for StateSource<'_> {
    fn relation(&self, name: &str) -> Result<&Relation> {
        let base = auxiliary::base_of(name);
        self.0
            .relation(base)
            .map_err(|_| CalculusError::UnknownRelation(name.to_owned()))
    }
}

/// Evaluate constraints against a transition `(D^t, D^{t+1})`: plain names
/// resolve to the post-state, `R@pre` to the pre-state, and the
/// differential names `R@ins` / `R@del` are not part of CL and are
/// rejected.
pub struct TransitionSource<'a>(pub &'a Transition);

impl ConstraintSource for TransitionSource<'_> {
    fn relation(&self, name: &str) -> Result<&Relation> {
        match auxiliary::parse_auxiliary(name) {
            None => self
                .0
                .after
                .relation(name)
                .map_err(|_| CalculusError::UnknownRelation(name.to_owned())),
            Some((base, AuxKind::Pre)) => self
                .0
                .before
                .relation(base)
                .map_err(|_| CalculusError::UnknownRelation(name.to_owned())),
            Some((_, _)) => Err(CalculusError::UnknownRelation(format!(
                "`{name}`: differential relations are not part of CL"
            ))),
        }
    }
}

type Env = FxHashMap<VarName, Tuple>;

fn eval_term(t: &Term, env: &Env, src: &impl ConstraintSource) -> Result<Value> {
    match t {
        Term::Const(v) => Ok(v.clone()),
        Term::Attr { var, sel } => {
            let tuple = env
                .get(var)
                .ok_or_else(|| CalculusError::UnboundVariable(var.clone()))?;
            let pos = match sel {
                AttrSel::Position(p) => *p,
                AttrSel::Name(n) => {
                    return Err(CalculusError::Eval(format!(
                        "unresolved attribute name `{var}.{n}` (run analysis first)"
                    )))
                }
            };
            tuple
                .get(pos - 1)
                .cloned()
                .ok_or_else(|| CalculusError::Eval(format!("position {pos} out of range")))
        }
        Term::Arith(op, l, r) => {
            let lv = eval_term(l, env, src)?;
            let rv = eval_term(r, env, src)?;
            arith(*op, &lv, &rv)
        }
        Term::Agg { func, rel, sel } => {
            let relation = src.relation(rel)?;
            let pos = match sel {
                AttrSel::Position(p) => *p,
                AttrSel::Name(n) => {
                    return Err(CalculusError::Eval(format!(
                        "unresolved attribute name in aggregate over `{rel}`: `{n}`"
                    )))
                }
            };
            aggregate(*func, relation, pos)
        }
        Term::Cnt { rel } => Ok(Value::Int(src.relation(rel)?.len() as i64)),
    }
}

fn arith(op: ArithFn, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithFn::Add => Ok(Value::Int(a.wrapping_add(*b))),
            ArithFn::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            ArithFn::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            ArithFn::Div => {
                if *b == 0 {
                    Err(CalculusError::Eval("division by zero".into()))
                } else {
                    Ok(Value::Int(a.wrapping_div(*b)))
                }
            }
        },
        _ => {
            let a = l.as_double().ok_or_else(|| {
                CalculusError::Eval(format!("non-numeric operand {l} in arithmetic"))
            })?;
            let b = r.as_double().ok_or_else(|| {
                CalculusError::Eval(format!("non-numeric operand {r} in arithmetic"))
            })?;
            match op {
                ArithFn::Add => Ok(Value::double(a + b)),
                ArithFn::Sub => Ok(Value::double(a - b)),
                ArithFn::Mul => Ok(Value::double(a * b)),
                ArithFn::Div => {
                    if b == 0.0 {
                        Err(CalculusError::Eval("division by zero".into()))
                    } else {
                        Ok(Value::double(a / b))
                    }
                }
            }
        }
    }
}

fn aggregate(func: AggFn, rel: &Relation, pos: usize) -> Result<Value> {
    let mut values = rel
        .iter()
        .filter_map(|t| t.get(pos - 1))
        .filter(|v| !v.is_null());
    match func {
        AggFn::Sum => {
            let mut int_sum = 0i64;
            let mut dbl_sum = 0f64;
            let mut any_double = false;
            for v in values {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        dbl_sum += *i as f64;
                    }
                    Value::Double(d) => {
                        any_double = true;
                        dbl_sum += d;
                    }
                    other => {
                        return Err(CalculusError::Eval(format!(
                            "SUM over non-numeric value {other}"
                        )))
                    }
                }
            }
            Ok(if any_double {
                Value::double(dbl_sum)
            } else {
                Value::Int(int_sum)
            })
        }
        AggFn::Avg => {
            let mut sum = 0f64;
            let mut n = 0usize;
            for v in values {
                sum += v
                    .as_double()
                    .ok_or_else(|| CalculusError::Eval("AVG over non-numeric".into()))?;
                n += 1;
            }
            if n == 0 {
                Err(CalculusError::Eval("AVG over empty relation".into()))
            } else {
                Ok(Value::double(sum / n as f64))
            }
        }
        AggFn::Min => values
            .by_ref()
            .min_by(|a, b| a.compare(b))
            .cloned()
            .ok_or_else(|| CalculusError::Eval("MIN over empty relation".into())),
        AggFn::Max => values
            .by_ref()
            .max_by(|a, b| a.compare(b))
            .cloned()
            .ok_or_else(|| CalculusError::Eval("MAX over empty relation".into())),
    }
}

fn eval_atom(a: &Atom, env: &Env, src: &impl ConstraintSource) -> Result<bool> {
    match a {
        Atom::Cmp(op, l, r) => {
            let lv = eval_term(l, env, src)?;
            let rv = eval_term(r, env, src)?;
            Ok(match op {
                CmpOp::Lt => lv.compare(&rv).is_lt(),
                CmpOp::Le => lv.compare(&rv).is_le(),
                CmpOp::Eq => lv.compare(&rv).is_eq(),
                CmpOp::Ne => lv.compare(&rv).is_ne(),
                CmpOp::Ge => lv.compare(&rv).is_ge(),
                CmpOp::Gt => lv.compare(&rv).is_gt(),
            })
        }
        Atom::Member { var, rel } => {
            let tuple = env
                .get(var)
                .ok_or_else(|| CalculusError::UnboundVariable(var.clone()))?;
            Ok(src.relation(rel)?.contains(tuple))
        }
        Atom::TupleEq(a, b) => {
            let ta = env
                .get(a)
                .ok_or_else(|| CalculusError::UnboundVariable(a.clone()))?;
            let tb = env
                .get(b)
                .ok_or_else(|| CalculusError::UnboundVariable(b.clone()))?;
            Ok(ta == tb)
        }
    }
}

/// One pinned attribute of an existentially quantified variable: the
/// quantified side's 1-based position and the outer term it is equated to.
struct ProbeKey<'f> {
    inner_pos: usize,
    outer: &'f Term,
}

/// A hash index of one relation on the pinned attributes of an `exists`
/// body, built lazily on the first entry into that quantifier node and
/// reused for every subsequent entry (the relation cannot change during
/// one evaluation).
struct RelIndex {
    tuples: Vec<Tuple>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

/// The cached probe plan of one `exists` node: the pinned 1-based
/// positions of the quantified variable, the (owned) outer terms they are
/// equated to, and the relation index. Detection and index construction
/// are pure functions of the body node, so both are cached together.
struct ProbePlan {
    inner_pos: Vec<usize>,
    outer: Vec<Term>,
    index: RelIndex,
}

/// Per-evaluation state: lazily built probe plans keyed by the address of
/// the quantifier body (stable while the formula is borrowed). `None`
/// records that the node has no usable plan (no keys, or the index was
/// abandoned).
struct EvalCache {
    enabled: bool,
    plans: FxHashMap<usize, Option<ProbePlan>>,
}

impl EvalCache {
    fn new(enabled: bool) -> EvalCache {
        EvalCache {
            enabled,
            plans: FxHashMap::default(),
        }
    }
}

/// Flatten an `And` tree into its conjuncts, in evaluation order.
fn flatten_conjuncts<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
    match f {
        Formula::And(l, r) => {
            flatten_conjuncts(l, out);
            flatten_conjuncts(r, out);
        }
        other => out.push(other),
    }
}

fn term_mentions(t: &Term, v: &VarName) -> bool {
    match t {
        Term::Attr { var, .. } => var == v,
        Term::Arith(_, l, r) => term_mentions(l, v) || term_mentions(r, v),
        // Aggregates and counts are closed over their own relation.
        Term::Const(_) | Term::Agg { .. } | Term::Cnt { .. } => false,
    }
}

/// Collect the top-level equality conjuncts of `body` that pin an
/// attribute of `v` to a term not mentioning `v` — the probe keys of a
/// referential-shaped existential body.
fn probe_keys<'f>(v: &VarName, body: &'f Formula) -> Vec<ProbeKey<'f>> {
    let mut conjuncts = Vec::new();
    flatten_conjuncts(body, &mut conjuncts);
    let mut out = Vec::new();
    for c in conjuncts {
        if let Formula::Atom(Atom::Cmp(CmpOp::Eq, l, r)) = c {
            for (a, b) in [(l, r), (r, l)] {
                if let Term::Attr {
                    var,
                    sel: AttrSel::Position(p),
                } = a
                {
                    if var == v && !term_mentions(b, v) {
                        out.push(ProbeKey {
                            inner_pos: *p,
                            outer: b,
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Build the index of `rel_name` on the pinned positions. `Ok(None)` means
/// the relation's tuples are too short for a pinned position (the scan
/// path will surface the error exactly as the naive evaluator does).
fn build_index(
    src: &impl ConstraintSource,
    rel_name: &str,
    keys: &[ProbeKey<'_>],
) -> Result<Option<RelIndex>> {
    let rel = src.relation(rel_name)?;
    let mut tuples = Vec::with_capacity(rel.len());
    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    let mut key_vals = Vec::with_capacity(keys.len());
    for t in rel.iter() {
        key_vals.clear();
        for k in keys {
            match t.get(k.inner_pos - 1) {
                Some(val) => key_vals.push(val),
                None => return Ok(None),
            }
        }
        buckets
            .entry(hash_join_key(key_vals.iter().copied()))
            .or_default()
            .push(tuples.len() as u32);
        tuples.push(t.clone());
    }
    Ok(Some(RelIndex { tuples, buckets }))
}

/// The fast path for `exists v (v in S and … key equalities …)`: probe the
/// (lazily built) index of `S` with the outer key values instead of
/// scanning. `Ok(None)` means "not applicable — use the generic scan";
/// any skipped tuple has a false key conjunct, so its body is false and
/// skipping is sound for `exists`.
fn try_indexed_exists(
    v: &VarName,
    body: &Formula,
    env: &mut Env,
    src: &impl ConstraintSource,
    ranges: &FxHashMap<VarName, String>,
    cache: &mut EvalCache,
    rel_name: &str,
) -> Result<Option<bool>> {
    let node = body as *const Formula as usize;
    if let std::collections::hash_map::Entry::Vacant(slot) = cache.plans.entry(node) {
        let keys = probe_keys(v, body);
        let plan = if keys.is_empty() {
            None
        } else {
            build_index(src, rel_name, &keys)?.map(|index| ProbePlan {
                inner_pos: keys.iter().map(|k| k.inner_pos).collect(),
                outer: keys.iter().map(|k| k.outer.clone()).collect(),
                index,
            })
        };
        slot.insert(plan);
    }
    let Some(plan) = cache.plans.get(&node).and_then(Option::as_ref) else {
        return Ok(None);
    };
    // Outer key terms must evaluate; if they do not (unbound sibling-scope
    // variable, arithmetic error), fall back to the scan so errors surface
    // — or stay hidden behind a short-circuit — exactly as in the naive
    // evaluator.
    let mut probe_vals = Vec::with_capacity(plan.outer.len());
    for term in &plan.outer {
        match eval_term(term, env, src) {
            Ok(val) => probe_vals.push(val),
            Err(_) => return Ok(None),
        }
    }
    let probe_hash = hash_join_key(probe_vals.iter());
    // Materialise the verified candidates so the borrow on the cache ends
    // before the recursion below needs it again for nested quantifiers.
    let candidates: Vec<Tuple> = match plan.index.buckets.get(&probe_hash) {
        None => Vec::new(),
        Some(ids) => {
            ids.iter()
                .filter_map(|&i| {
                    let t = &plan.index.tuples[i as usize];
                    let key_match =
                        plan.inner_pos.iter().zip(&probe_vals).all(|(&pos, pv)| {
                            t.get(pos - 1).is_some_and(|tv| tv.compare(pv).is_eq())
                        });
                    key_match.then(|| t.clone())
                })
                .collect()
        }
    };
    for t in candidates {
        env.insert(v.clone(), t);
        let ok = eval_rec(body, env, src, ranges, cache)?;
        env.remove(v);
        if ok {
            return Ok(Some(true));
        }
    }
    Ok(Some(false))
}

fn eval_rec(
    f: &Formula,
    env: &mut Env,
    src: &impl ConstraintSource,
    ranges: &FxHashMap<VarName, String>,
    cache: &mut EvalCache,
) -> Result<bool> {
    match f {
        Formula::Atom(a) => eval_atom(a, env, src),
        Formula::Not(x) => Ok(!eval_rec(x, env, src, ranges, cache)?),
        Formula::And(l, r) => {
            Ok(eval_rec(l, env, src, ranges, cache)? && eval_rec(r, env, src, ranges, cache)?)
        }
        Formula::Or(l, r) => {
            Ok(eval_rec(l, env, src, ranges, cache)? || eval_rec(r, env, src, ranges, cache)?)
        }
        Formula::Implies(l, r) => {
            Ok(!eval_rec(l, env, src, ranges, cache)? || eval_rec(r, env, src, ranges, cache)?)
        }
        Formula::Quant(q, v, body) => {
            let rel_name = ranges
                .get(v)
                .ok_or_else(|| CalculusError::UnsafeVariable(v.clone()))?;
            if cache.enabled && *q == Quantifier::Exists {
                if let Some(result) =
                    try_indexed_exists(v, body, env, src, ranges, cache, rel_name)?
                {
                    return Ok(result);
                }
            }
            // Generic scan: iterate the relation directly — only the tuple
            // entering the environment is cloned, never the tuple list.
            match q {
                Quantifier::Forall => {
                    for t in src.relation(rel_name)?.iter() {
                        env.insert(v.clone(), t.clone());
                        let ok = eval_rec(body, env, src, ranges, cache)?;
                        env.remove(v);
                        if !ok {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
                Quantifier::Exists => {
                    for t in src.relation(rel_name)?.iter() {
                        env.insert(v.clone(), t.clone());
                        let ok = eval_rec(body, env, src, ranges, cache)?;
                        env.remove(v);
                        if ok {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
            }
        }
    }
}

/// Evaluate an analysed formula against a source (with the indexed
/// quantifier fast path).
pub fn eval_formula(
    formula: &Formula,
    ranges: &FxHashMap<VarName, String>,
    src: &impl ConstraintSource,
) -> Result<bool> {
    eval_rec(
        formula,
        &mut Env::default(),
        src,
        ranges,
        &mut EvalCache::new(true),
    )
}

/// Evaluate an analysed formula with the naive nested-loop recursion only
/// — the obviously-correct baseline the fast path is property-tested
/// against, and the slow side of the `hash_vs_nested` benchmark.
pub fn eval_formula_naive(
    formula: &Formula,
    ranges: &FxHashMap<VarName, String>,
    src: &impl ConstraintSource,
) -> Result<bool> {
    eval_rec(
        formula,
        &mut Env::default(),
        src,
        ranges,
        &mut EvalCache::new(false),
    )
}

/// Evaluate an analysed constraint (output of
/// [`crate::analysis::analyze`]) against a source.
pub fn eval_constraint(info: &ConstraintInfo, src: &impl ConstraintSource) -> Result<bool> {
    eval_formula(&info.formula, &info.ranges, src)
}

/// Naive-recursion variant of [`eval_constraint`].
pub fn eval_constraint_naive(info: &ConstraintInfo, src: &impl ConstraintSource) -> Result<bool> {
    eval_formula_naive(&info.formula, &info.ranges, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_formula;
    use tm_relational::schema::beer_schema;

    fn beer_db() -> Database {
        let mut db = Database::new(beer_schema().into_shared());
        db.insert("brewery", Tuple::of(("heineken", "amsterdam", "nl")))
            .unwrap();
        db.insert("brewery", Tuple::of(("guinness", "dublin", "ie")))
            .unwrap();
        db.insert("beer", Tuple::of(("pils", "lager", "heineken", 5.0_f64)))
            .unwrap();
        db.insert("beer", Tuple::of(("stout", "stout", "guinness", 4.2_f64)))
            .unwrap();
        db
    }

    fn check(src_text: &str, db: &Database) -> Result<bool> {
        let info = analyze(&parse_formula(src_text).unwrap(), db.schema()).unwrap();
        eval_constraint(&info, &StateSource(db))
    }

    #[test]
    fn domain_constraint_holds_then_fails() {
        let mut db = beer_db();
        let c = "forall x (x in beer implies x.alcohol >= 0)";
        assert_eq!(check(c, &db), Ok(true));
        db.insert("beer", Tuple::of(("bad", "lager", "heineken", -1.0_f64)))
            .unwrap();
        assert_eq!(check(c, &db), Ok(false));
    }

    #[test]
    fn referential_constraint() {
        let mut db = beer_db();
        let c = "forall x (x in beer implies \
                 exists y (y in brewery and x.brewery = y.name))";
        assert_eq!(check(c, &db), Ok(true));
        db.insert("beer", Tuple::of(("orphan", "ale", "nowhere", 5.0_f64)))
            .unwrap();
        assert_eq!(check(c, &db), Ok(false));
    }

    #[test]
    fn exists_over_empty_relation_is_false() {
        let db = Database::new(beer_schema().into_shared());
        assert_eq!(
            check("exists x (x in beer and x.alcohol > 0)", &db),
            Ok(false)
        );
        // forall over empty is vacuously true
        assert_eq!(
            check("forall x (x in beer implies x.alcohol > 0)", &db),
            Ok(true)
        );
    }

    #[test]
    fn aggregates_in_constraints() {
        let db = beer_db();
        assert_eq!(check("CNT(beer) <= 2", &db), Ok(true));
        assert_eq!(check("CNT(beer) < 2", &db), Ok(false));
        assert_eq!(check("AVG(beer, alcohol) < 5.0", &db), Ok(true));
        assert_eq!(check("MAX(beer, alcohol) = 5.0", &db), Ok(true));
        assert_eq!(check("MIN(beer, alcohol) > 4.0", &db), Ok(true));
        assert_eq!(check("SUM(beer, alcohol) > 9.0", &db), Ok(true));
    }

    #[test]
    fn tuple_equality_semantics() {
        let db = beer_db();
        // every beer equals itself: no two distinct tuples with same name
        let c = "forall x (x in beer implies \
                 forall y (y in beer implies (x == y or x.name != y.name)))";
        assert_eq!(check(c, &db), Ok(true));
    }

    #[test]
    fn transition_constraints_via_pre() {
        let before = beer_db();
        let mut after = before.clone();
        after
            .insert("beer", Tuple::of(("extra", "ale", "guinness", 6.0_f64)))
            .unwrap();
        after.tick();
        let tr = Transition::new(before, after);
        // "beers are never removed": every pre-beer still exists.
        let grow_only = "forall x (x in beer@pre implies exists y (y in beer and x == y))";
        let info = analyze(&parse_formula(grow_only).unwrap(), tr.after.schema()).unwrap();
        assert_eq!(eval_constraint(&info, &TransitionSource(&tr)), Ok(true));

        // Now delete a beer: the constraint must fail.
        let before = beer_db();
        let mut after = before.clone();
        after
            .delete("beer", &Tuple::of(("pils", "lager", "heineken", 5.0_f64)))
            .unwrap();
        after.tick();
        let tr = Transition::new(before, after);
        assert_eq!(eval_constraint(&info, &TransitionSource(&tr)), Ok(false));
    }

    #[test]
    fn differential_names_rejected_in_cl() {
        let before = beer_db();
        let mut after = before.clone();
        after.tick();
        let tr = Transition::new(before, after);
        let src = TransitionSource(&tr);
        assert!(matches!(
            src.relation("beer@ins"),
            Err(CalculusError::UnknownRelation(_))
        ));
    }

    #[test]
    fn arith_in_constraints() {
        let db = beer_db();
        assert_eq!(
            check("forall x (x in beer implies x.alcohol * 2 <= 10.0)", &db),
            Ok(true)
        );
        assert_eq!(
            check("forall x (x in beer implies x.alcohol + 1 > 5.0)", &db),
            Ok(true)
        );
    }

    #[test]
    fn empty_min_errors() {
        let db = Database::new(beer_schema().into_shared());
        let r = check("MIN(beer, alcohol) > 0", &db);
        assert!(matches!(r, Err(CalculusError::Eval(_))));
    }

    #[test]
    fn indexed_and_naive_agree_on_zoo() {
        let mut db = beer_db();
        db.insert("beer", Tuple::of(("orphan", "ale", "nowhere", 5.0_f64)))
            .unwrap();
        let zoo = [
            // Referential shape — the indexed Exists path.
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
            // Negated referential.
            "not exists x (x in beer and exists y (y in brewery and x.brewery = y.name))",
            // Constant-pinned existentials.
            "exists x (x in brewery and x.country = 'nl')",
            "exists x (x in brewery and x.country = 'atlantis')",
            // Multi-key pinning.
            "forall x (x in brewery implies \
             exists y (y in brewery and x.name = y.name and x.city = y.city))",
            // Exists without keys (scan path).
            "exists x (x in beer and x.alcohol > 4.0)",
            // Key term with arithmetic on the outer side.
            "forall x (x in beer implies \
             not exists y (y in beer and y.alcohol = x.alcohol + 100))",
        ];
        for c in zoo {
            let info = analyze(&parse_formula(c).unwrap(), db.schema()).unwrap();
            let fast = eval_constraint(&info, &StateSource(&db));
            let naive = eval_constraint_naive(&info, &StateSource(&db));
            assert_eq!(fast, naive, "{c}");
        }
    }

    #[test]
    fn indexed_path_finds_cross_type_numeric_matches() {
        // alcohol is a double column; pin it with an integer constant. The
        // index must bucket Int(5) with Double(5.0).
        let db = beer_db();
        let c = "exists x (x in beer and x.alcohol = 5)";
        assert_eq!(check(c, &db), Ok(true));
        let c = "exists x (x in beer and x.alcohol = 7)";
        assert_eq!(check(c, &db), Ok(false));
    }

    #[test]
    fn state_source_resolves_pre_to_same_state() {
        let db = beer_db();
        assert_eq!(
            check(
                "forall x (x in beer@pre implies exists y (y in beer and x == y))",
                &db
            ),
            Ok(true)
        );
    }
}
