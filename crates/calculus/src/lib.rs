#![warn(missing_docs)]

//! # `tm-calculus` — the CL integrity constraint specification language
//!
//! Section 4.1 of Grefen (VLDB 1993) defines **CL**, a language of
//! well-formed formulas over a tuple relational calculus, for the purely
//! declarative specification of integrity constraints. This crate
//! implements the language in full:
//!
//! * [`ast`] — the alphabet, terms, atomic formulas and well-formed
//!   formulas of Definitions 4.1–4.4,
//! * [`parser`] — a lexer and recursive-descent parser for a faithful
//!   ASCII rendering of CL (`forall x (x in beer implies x.alcohol >= 0)`),
//! * [`analysis`] — free-variable computation, closedness, variable range
//!   analysis, safety (range restriction) and schema type checking,
//! * [`eval`] — a direct **semantic evaluator**: a state constraint is a
//!   boolean function over database states (Definition 3.1), a transition
//!   constraint over state pairs (Definition 3.3). The evaluator is the
//!   reproduction's ground truth: property tests assert that transaction
//!   modification commits exactly the transactions this evaluator accepts.
//!
//! Transition constraints reference the pre-transaction state through the
//! auxiliary relation names of Section 4.1 (`beer@pre`), e.g.
//! `forall x (x in salary implies forall y (y in salary@pre implies
//! (x.emp != y.emp or x.amount >= y.amount)))`.

pub mod analysis;
pub mod ast;
pub mod error;
pub mod eval;
pub mod parser;

pub use analysis::{analyze, free_variables, ConstraintInfo};
pub use ast::{AggFn, Atom, CmpOp, Constraint, ConstraintKind, Formula, Quantifier, Term, VarName};
pub use error::{CalculusError, Result};
pub use eval::{
    eval_constraint, eval_constraint_naive, eval_formula, eval_formula_naive, ConstraintSource,
    StateSource, TransitionSource,
};
pub use parser::parse_formula;
