//! The abstract syntax of CL (Definitions 4.1–4.4).
//!
//! The alphabet of Definition 4.1 maps onto this module as follows:
//!
//! | Paper                                   | Here                       |
//! |-----------------------------------------|----------------------------|
//! | value constants `C`                     | [`tm_relational::Value`]   |
//! | tuple set constants `M` (relations)     | relation names (`String`)  |
//! | tuple variables `V`                     | [`VarName`]                |
//! | tuple functions `FT = {.}`              | [`Term::Attr`]             |
//! | value functions `FV = {+,-,*,/}`        | [`Term::Arith`]            |
//! | aggregate functions `FA`                | [`Term::Agg`]              |
//! | counting functions `FC = {CNT}`         | [`Term::Cnt`]              |
//! | value predicates `PV = {<,≤,=,≠,≥,>}`   | [`Atom::Cmp`]              |
//! | set predicates `PM = {∈}`               | [`Atom::Member`]           |
//! | tuple predicates `PT = {=}`             | [`Atom::TupleEq`]          |
//! | connectives `¬, ∨, ∧, ⇒`                | [`Formula`] variants       |
//! | quantifiers `∃, ∀`                      | [`Formula::Quant`]         |

use std::fmt;

use tm_relational::Value;

/// A tuple variable name (an element of the paper's set `V`).
pub type VarName = String;

/// Arithmetic operators — the value function symbols `FV`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithFn {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            match self {
                ArithFn::Add => "+",
                ArithFn::Sub => "-",
                ArithFn::Mul => "*",
                ArithFn::Div => "/",
            }
        )
    }
}

/// Aggregate function symbols — `FA = {SUM, AVG, MIN, MAX}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFn {
    /// The keyword used in CL source text.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFn::Sum => "SUM",
            AggFn::Avg => "AVG",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

/// Comparison operators — the value predicate symbols `PV`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// The logically negated operator.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            match self {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Ge => ">=",
                CmpOp::Gt => ">",
            }
        )
    }
}

/// Attribute selector in `x.i` / `x.name` terms. The paper uses 1-based
/// integer positions; the parser also accepts attribute names, which the
/// analysis pass resolves to positions using the schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrSel {
    /// 1-based position, as in the paper (`x.2`).
    Position(usize),
    /// Attribute name (`x.alcohol`), resolved during analysis.
    Name(String),
}

impl fmt::Display for AttrSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrSel::Position(i) => write!(f, "{i}"),
            AttrSel::Name(n) => write!(f, "{n}"),
        }
    }
}

/// Terms (Definition 4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A value constant from `C`.
    Const(Value),
    /// Attribute selection `x.i` (tuple function application).
    Attr {
        /// The tuple variable.
        var: VarName,
        /// Which attribute.
        sel: AttrSel,
    },
    /// Arithmetic function application `t1 ϑ t2`.
    Arith(ArithFn, Box<Term>, Box<Term>),
    /// Aggregate function application `Γ(R, i)` with `R ∈ M` and `i` a
    /// 1-based attribute position (or name, resolved in analysis).
    Agg {
        /// The aggregate function.
        func: AggFn,
        /// The relation name (tuple set constant).
        rel: String,
        /// Which attribute to aggregate.
        sel: AttrSel,
    },
    /// Counting function application `CNT(R)`.
    Cnt {
        /// The relation name.
        rel: String,
    },
}

impl Term {
    /// Integer constant shorthand.
    pub fn int(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }

    /// Attribute selection shorthand with a 1-based position.
    pub fn attr(var: impl Into<VarName>, pos: usize) -> Term {
        Term::Attr {
            var: var.into(),
            sel: AttrSel::Position(pos),
        }
    }

    /// Attribute selection shorthand with an attribute name.
    pub fn attr_named(var: impl Into<VarName>, name: impl Into<String>) -> Term {
        Term::Attr {
            var: var.into(),
            sel: AttrSel::Name(name.into()),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Attr { var, sel } => write!(f, "{var}.{sel}"),
            Term::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            Term::Agg { func, rel, sel } => write!(f, "{func}({rel}, {sel})"),
            Term::Cnt { rel } => write!(f, "CNT({rel})"),
        }
    }
}

/// Atomic formulas (Definition 4.3).
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// Arithmetic comparison `T1 ϑ T2`.
    Cmp(CmpOp, Term, Term),
    /// Set membership `x ∈ R`.
    Member {
        /// The tuple variable.
        var: VarName,
        /// The relation name.
        rel: String,
    },
    /// Tuple value comparison `x = y`.
    TupleEq(VarName, VarName),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Cmp(op, l, r) => write!(f, "{l} {op} {r}"),
            Atom::Member { var, rel } => write!(f, "{var} in {rel}"),
            Atom::TupleEq(l, r) => write!(f, "{l} == {r}"),
        }
    }
}

/// Quantifiers `Q = {∃, ∀}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// Universal quantification.
    Forall,
    /// Existential quantification.
    Exists,
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            match self {
                Quantifier::Forall => "forall",
                Quantifier::Exists => "exists",
            }
        )
    }
}

/// Well-formed formulas (Definition 4.4).
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// An atomic formula.
    Atom(Atom),
    /// Negation `¬W`.
    Not(Box<Formula>),
    /// Conjunction `W1 ∧ W2`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `W1 ∨ W2`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `W1 ⇒ W2`.
    Implies(Box<Formula>, Box<Formula>),
    /// Quantification `(Qx)(W)`.
    Quant(Quantifier, VarName, Box<Formula>),
}

impl Formula {
    /// Atom shorthand.
    pub fn atom(a: Atom) -> Formula {
        Formula::Atom(a)
    }

    /// Membership atom shorthand.
    pub fn member(var: impl Into<VarName>, rel: impl Into<String>) -> Formula {
        Formula::Atom(Atom::Member {
            var: var.into(),
            rel: rel.into(),
        })
    }

    /// Negation shorthand.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction shorthand.
    pub fn and(l: Formula, r: Formula) -> Formula {
        Formula::And(Box::new(l), Box::new(r))
    }

    /// Disjunction shorthand.
    pub fn or(l: Formula, r: Formula) -> Formula {
        Formula::Or(Box::new(l), Box::new(r))
    }

    /// Implication shorthand.
    pub fn implies(l: Formula, r: Formula) -> Formula {
        Formula::Implies(Box::new(l), Box::new(r))
    }

    /// Universal quantification shorthand.
    pub fn forall(var: impl Into<VarName>, body: Formula) -> Formula {
        Formula::Quant(Quantifier::Forall, var.into(), Box::new(body))
    }

    /// Existential quantification shorthand.
    pub fn exists(var: impl Into<VarName>, body: Formula) -> Formula {
        Formula::Quant(Quantifier::Exists, var.into(), Box::new(body))
    }

    /// All relation names referenced in the formula (member atoms,
    /// aggregates, counting terms), in first-occurrence order without
    /// duplicates.
    pub fn referenced_relations(&self) -> Vec<String> {
        fn walk_term(t: &Term, out: &mut Vec<String>) {
            match t {
                Term::Agg { rel, .. } | Term::Cnt { rel } => out.push(rel.clone()),
                Term::Arith(_, l, r) => {
                    walk_term(l, out);
                    walk_term(r, out);
                }
                Term::Const(_) | Term::Attr { .. } => {}
            }
        }
        fn walk(fm: &Formula, out: &mut Vec<String>) {
            match fm {
                Formula::Atom(Atom::Member { rel, .. }) => out.push(rel.clone()),
                Formula::Atom(Atom::Cmp(_, l, r)) => {
                    walk_term(l, out);
                    walk_term(r, out);
                }
                Formula::Atom(Atom::TupleEq(..)) => {}
                Formula::Not(f) => walk(f, out),
                Formula::And(l, r) | Formula::Or(l, r) | Formula::Implies(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                Formula::Quant(_, _, f) => walk(f, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|n| seen.insert(n.clone()));
        out
    }

    /// Whether the formula mentions any pre-transaction auxiliary relation
    /// — if so it is a transition constraint (Definition 3.3), otherwise a
    /// state constraint (Definition 3.1).
    pub fn is_transition(&self) -> bool {
        self.referenced_relations()
            .iter()
            .any(|r| tm_relational::auxiliary::is_auxiliary(r))
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(x) => write!(f, "not ({x})"),
            Formula::And(l, r) => write!(f, "({l} and {r})"),
            Formula::Or(l, r) => write!(f, "({l} or {r})"),
            Formula::Implies(l, r) => write!(f, "({l} implies {r})"),
            Formula::Quant(q, v, body) => write!(f, "{q} {v} ({body})"),
        }
    }
}

/// State vs. transition constraints (Definitions 3.1 and 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// Evaluated over a single database state.
    State,
    /// Evaluated over a database transition (references `R@pre`).
    Transition,
}

/// A named integrity constraint: a closed CL formula plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Human-readable constraint name (`I1`, `referential_beer`, …).
    pub name: String,
    /// The defining formula (must be closed).
    pub formula: Formula,
    /// State or transition constraint, derived from the formula.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// Wrap a formula as a named constraint, deriving the kind.
    pub fn new(name: impl Into<String>, formula: Formula) -> Constraint {
        let kind = if formula.is_transition() {
            ConstraintKind::Transition
        } else {
            ConstraintKind::State
        };
        Constraint {
            name: name.into(),
            formula,
            kind,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's domain constraint I1:
    /// `(∀x)(x ∈ beer ⇒ x.alcohol ≥ 0)`.
    fn i1() -> Formula {
        Formula::forall(
            "x",
            Formula::implies(
                Formula::member("x", "beer"),
                Formula::Atom(Atom::Cmp(
                    CmpOp::Ge,
                    Term::attr_named("x", "alcohol"),
                    Term::int(0),
                )),
            ),
        )
    }

    /// The paper's referential constraint I2:
    /// `(∀x)(x ∈ beer ⇒ (∃y)(y ∈ brewery ∧ x.brewery = y.name))`.
    fn i2() -> Formula {
        Formula::forall(
            "x",
            Formula::implies(
                Formula::member("x", "beer"),
                Formula::exists(
                    "y",
                    Formula::and(
                        Formula::member("y", "brewery"),
                        Formula::Atom(Atom::Cmp(
                            CmpOp::Eq,
                            Term::attr_named("x", "brewery"),
                            Term::attr_named("y", "name"),
                        )),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn referenced_relations_of_paper_examples() {
        assert_eq!(i1().referenced_relations(), vec!["beer"]);
        assert_eq!(i2().referenced_relations(), vec!["beer", "brewery"]);
    }

    #[test]
    fn aggregate_terms_reference_relations() {
        let f = Formula::Atom(Atom::Cmp(
            CmpOp::Le,
            Term::Agg {
                func: AggFn::Sum,
                rel: "account".into(),
                sel: AttrSel::Position(2),
            },
            Term::Cnt {
                rel: "limitrel".into(),
            },
        ));
        assert_eq!(f.referenced_relations(), vec!["account", "limitrel"]);
    }

    #[test]
    fn constraint_kind_derivation() {
        assert_eq!(Constraint::new("i1", i1()).kind, ConstraintKind::State);
        let transition = Formula::forall(
            "x",
            Formula::implies(
                Formula::member("x", "beer@pre"),
                Formula::exists("y", Formula::member("y", "beer")),
            ),
        );
        assert_eq!(
            Constraint::new("t1", transition).kind,
            ConstraintKind::Transition
        );
    }

    #[test]
    fn display_round_trip_shape() {
        let s = i1().to_string();
        assert!(s.contains("forall x"));
        assert!(s.contains("x in beer"));
        assert!(s.contains("x.alcohol >= 0"));
    }

    #[test]
    fn cmp_negation_involution() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ge,
            CmpOp::Gt,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }
}
