//! Errors for parsing, analysis and evaluation of CL formulas.

use std::fmt;

/// Convenience alias used throughout `tm-calculus`.
pub type Result<T> = std::result::Result<T, CalculusError>;

/// Errors raised by the CL front end and evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalculusError {
    /// Lexical error at a byte offset in the source text.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Parse error with positional context.
    Parse {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What was expected / found.
        message: String,
    },
    /// A variable is used but never bound by a quantifier.
    UnboundVariable(String),
    /// A formula expected to be closed has free variables.
    NotClosed(Vec<String>),
    /// A quantified variable has no membership atom bounding its range —
    /// the formula is unsafe and cannot be evaluated or translated.
    UnsafeVariable(String),
    /// A variable is quantified twice in nested scopes.
    ShadowedVariable(String),
    /// A referenced relation is not in the schema.
    UnknownRelation(String),
    /// An attribute selection does not resolve against the schema.
    UnknownAttribute {
        /// The relation whose schema was searched.
        relation: String,
        /// The attribute (name or out-of-range position).
        attribute: String,
    },
    /// Type error in a term or atom.
    TypeError(String),
    /// Runtime evaluation error (e.g. aggregate over empty relation).
    Eval(String),
}

impl fmt::Display for CalculusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalculusError::Lex { offset, message } => {
                write!(f, "lexical error at offset {offset}: {message}")
            }
            CalculusError::Parse { offset, message } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            CalculusError::UnboundVariable(v) => write!(f, "unbound tuple variable `{v}`"),
            CalculusError::NotClosed(vs) => {
                write!(
                    f,
                    "formula is not closed; free variables: {}",
                    vs.join(", ")
                )
            }
            CalculusError::UnsafeVariable(v) => write!(
                f,
                "quantified variable `{v}` is not range-restricted by any membership atom"
            ),
            CalculusError::ShadowedVariable(v) => {
                write!(
                    f,
                    "tuple variable `{v}` is quantified more than once in scope"
                )
            }
            CalculusError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            CalculusError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            CalculusError::TypeError(m) => write!(f, "type error: {m}"),
            CalculusError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for CalculusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(CalculusError::UnboundVariable("x".into())
            .to_string()
            .contains("`x`"));
        assert!(CalculusError::NotClosed(vec!["a".into(), "b".into()])
            .to_string()
            .contains("a, b"));
        assert!(CalculusError::Parse {
            offset: 17,
            message: "expected `)`".into()
        }
        .to_string()
        .contains("17"));
    }
}
