//! Static analysis of CL formulas: closedness, safety, schema resolution.
//!
//! Constraints must be *closed* well-formed formulas (every tuple variable
//! bound by a quantifier) and *safe*: every quantified variable must be
//! range-restricted by a membership atom `x ∈ R` inside its scope, which
//! fixes the relation the variable ranges over. Safety is what makes both
//! direct evaluation (this crate's [`crate::eval`]) and the
//! calculus-to-algebra translation (`tm-translate`) possible; it is the
//! standard restriction for tuple relational calculus [Ullman 1982], which
//! the paper inherits via its reference \[21\].
//!
//! The analysis also resolves named attribute selections (`x.alcohol`) to
//! the paper's 1-based positions (`x.4`) against the database schema, and
//! type-checks comparisons and aggregate applications.

use tm_relational::util::FxHashMap;
use tm_relational::{auxiliary, DatabaseSchema, RelationSchema, ValueType};

use crate::ast::{AggFn, Atom, AttrSel, Formula, Term, VarName};
use crate::error::{CalculusError, Result};

/// The result of analysing a constraint formula.
#[derive(Debug, Clone)]
pub struct ConstraintInfo {
    /// The analysed formula with all variables made unique (alpha-renamed
    /// where needed) and all attribute selections resolved to 1-based
    /// positions.
    pub formula: Formula,
    /// For every (renamed) quantified variable, the relation it ranges
    /// over — derived from the membership atoms in its scope.
    pub ranges: FxHashMap<VarName, String>,
    /// Relations referenced by the formula.
    pub relations: Vec<String>,
}

/// Compute the free tuple variables of a formula, in first-use order.
pub fn free_variables(f: &Formula) -> Vec<VarName> {
    fn term_vars(t: &Term, bound: &[VarName], out: &mut Vec<VarName>) {
        match t {
            Term::Attr { var, .. } => {
                if !bound.contains(var) && !out.contains(var) {
                    out.push(var.clone());
                }
            }
            Term::Arith(_, l, r) => {
                term_vars(l, bound, out);
                term_vars(r, bound, out);
            }
            Term::Const(_) | Term::Agg { .. } | Term::Cnt { .. } => {}
        }
    }
    fn walk(f: &Formula, bound: &mut Vec<VarName>, out: &mut Vec<VarName>) {
        match f {
            Formula::Atom(Atom::Member { var, .. }) => {
                if !bound.contains(var) && !out.contains(var) {
                    out.push(var.clone());
                }
            }
            Formula::Atom(Atom::TupleEq(a, b)) => {
                for v in [a, b] {
                    if !bound.contains(v) && !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
            Formula::Atom(Atom::Cmp(_, l, r)) => {
                term_vars(l, bound, out);
                term_vars(r, bound, out);
            }
            Formula::Not(x) => walk(x, bound, out),
            Formula::And(l, r) | Formula::Or(l, r) | Formula::Implies(l, r) => {
                walk(l, bound, out);
                walk(r, bound, out);
            }
            Formula::Quant(_, v, body) => {
                bound.push(v.clone());
                walk(body, bound, out);
                bound.pop();
            }
        }
    }
    let mut out = Vec::new();
    walk(f, &mut Vec::new(), &mut out);
    out
}

/// Alpha-rename so every quantifier binds a globally unique variable name.
/// Re-used names get `#n` suffixes (not producible by the parser, so no
/// collisions with user names).
fn alpha_rename(f: &Formula) -> Formula {
    fn rename_term(t: &Term, map: &FxHashMap<VarName, VarName>) -> Term {
        match t {
            Term::Attr { var, sel } => Term::Attr {
                var: map.get(var).cloned().unwrap_or_else(|| var.clone()),
                sel: sel.clone(),
            },
            Term::Arith(op, l, r) => Term::Arith(
                *op,
                Box::new(rename_term(l, map)),
                Box::new(rename_term(r, map)),
            ),
            other => other.clone(),
        }
    }
    fn walk(
        f: &Formula,
        map: &mut FxHashMap<VarName, VarName>,
        used: &mut FxHashMap<VarName, usize>,
    ) -> Formula {
        match f {
            Formula::Atom(Atom::Member { var, rel }) => Formula::Atom(Atom::Member {
                var: map.get(var).cloned().unwrap_or_else(|| var.clone()),
                rel: rel.clone(),
            }),
            Formula::Atom(Atom::TupleEq(a, b)) => Formula::Atom(Atom::TupleEq(
                map.get(a).cloned().unwrap_or_else(|| a.clone()),
                map.get(b).cloned().unwrap_or_else(|| b.clone()),
            )),
            Formula::Atom(Atom::Cmp(op, l, r)) => {
                Formula::Atom(Atom::Cmp(*op, rename_term(l, map), rename_term(r, map)))
            }
            Formula::Not(x) => Formula::not(walk(x, map, used)),
            Formula::And(l, r) => Formula::and(walk(l, map, used), walk(r, map, used)),
            Formula::Or(l, r) => Formula::or(walk(l, map, used), walk(r, map, used)),
            Formula::Implies(l, r) => Formula::implies(walk(l, map, used), walk(r, map, used)),
            Formula::Quant(q, v, body) => {
                let count = used.entry(v.clone()).or_insert(0);
                *count += 1;
                let fresh = if *count == 1 {
                    v.clone()
                } else {
                    format!("{v}#{count}")
                };
                let shadowed = map.insert(v.clone(), fresh.clone());
                let body = walk(body, map, used);
                match shadowed {
                    Some(old) => {
                        map.insert(v.clone(), old);
                    }
                    None => {
                        map.remove(v);
                    }
                }
                Formula::Quant(*q, fresh, Box::new(body))
            }
        }
    }
    walk(f, &mut FxHashMap::default(), &mut FxHashMap::default())
}

/// Collect the membership atoms `var ∈ R` of a formula (after renaming,
/// variable names are unique, so a flat map suffices). A variable bound to
/// two different relations is rejected; binding the same relation twice is
/// harmless.
fn collect_ranges(f: &Formula, ranges: &mut FxHashMap<VarName, String>) -> Result<()> {
    match f {
        Formula::Atom(Atom::Member { var, rel }) => {
            if let Some(existing) = ranges.get(var) {
                if existing != rel {
                    return Err(CalculusError::TypeError(format!(
                        "variable `{var}` ranges over both `{existing}` and `{rel}`"
                    )));
                }
            }
            ranges.insert(var.clone(), rel.clone());
            Ok(())
        }
        Formula::Atom(_) => Ok(()),
        Formula::Not(x) => collect_ranges(x, ranges),
        Formula::And(l, r) | Formula::Or(l, r) | Formula::Implies(l, r) => {
            collect_ranges(l, ranges)?;
            collect_ranges(r, ranges)
        }
        Formula::Quant(_, _, body) => collect_ranges(body, ranges),
    }
}

fn quantified_vars(f: &Formula, out: &mut Vec<VarName>) {
    match f {
        Formula::Atom(_) => {}
        Formula::Not(x) => quantified_vars(x, out),
        Formula::And(l, r) | Formula::Or(l, r) | Formula::Implies(l, r) => {
            quantified_vars(l, out);
            quantified_vars(r, out);
        }
        Formula::Quant(_, v, body) => {
            out.push(v.clone());
            quantified_vars(body, out);
        }
    }
}

/// Look up the schema for a (possibly auxiliary) relation name.
pub(crate) fn resolve_schema<'s>(
    schema: &'s DatabaseSchema,
    name: &str,
) -> Result<&'s RelationSchema> {
    let base = auxiliary::base_of(name);
    // `R@wat` would parse as base `R@wat` (invalid aux suffix) and fail the
    // schema lookup below, so no separate validation is needed.
    schema
        .relation(base)
        .map_err(|_| CalculusError::UnknownRelation(name.to_owned()))
}

/// Resolve an attribute selector against a relation schema, producing the
/// 1-based position.
fn resolve_sel(rs: &RelationSchema, rel: &str, sel: &AttrSel) -> Result<usize> {
    match sel {
        AttrSel::Position(p) => {
            if *p >= 1 && *p <= rs.arity() {
                Ok(*p)
            } else {
                Err(CalculusError::UnknownAttribute {
                    relation: rel.to_owned(),
                    attribute: p.to_string(),
                })
            }
        }
        AttrSel::Name(n) => {
            rs.position_of(n)
                .map(|p| p + 1)
                .map_err(|_| CalculusError::UnknownAttribute {
                    relation: rel.to_owned(),
                    attribute: n.clone(),
                })
        }
    }
}

/// The inferred type of a term (coarse: exact scalar type).
fn term_type(
    t: &Term,
    schema: &DatabaseSchema,
    ranges: &FxHashMap<VarName, String>,
) -> Result<Option<ValueType>> {
    match t {
        Term::Const(v) => Ok(v.value_type()),
        Term::Attr { var, sel } => {
            let rel = ranges
                .get(var)
                .ok_or_else(|| CalculusError::UnboundVariable(var.clone()))?;
            let rs = resolve_schema(schema, rel)?;
            let pos = resolve_sel(rs, rel, sel)?;
            Ok(Some(rs.attributes()[pos - 1].value_type()))
        }
        Term::Arith(_, l, r) => {
            for side in [l, r] {
                if let Some(ty) = term_type(side, schema, ranges)? {
                    if !matches!(ty, ValueType::Int | ValueType::Double) {
                        return Err(CalculusError::TypeError(format!(
                            "arithmetic over non-numeric term `{side}` of type {ty}"
                        )));
                    }
                }
            }
            let lt = term_type(l, schema, ranges)?;
            let rt = term_type(r, schema, ranges)?;
            Ok(match (lt, rt) {
                (Some(ValueType::Double), _) | (_, Some(ValueType::Double)) => {
                    Some(ValueType::Double)
                }
                _ => Some(ValueType::Int),
            })
        }
        Term::Agg { func, rel, sel } => {
            let rs = resolve_schema(schema, rel)?;
            let pos = resolve_sel(rs, rel, sel)?;
            let col_ty = rs.attributes()[pos - 1].value_type();
            match func {
                AggFn::Avg => Ok(Some(ValueType::Double)),
                AggFn::Sum => {
                    if matches!(col_ty, ValueType::Int | ValueType::Double) {
                        Ok(Some(col_ty))
                    } else {
                        Err(CalculusError::TypeError(format!(
                            "SUM over non-numeric attribute of `{rel}`"
                        )))
                    }
                }
                AggFn::Min | AggFn::Max => Ok(Some(col_ty)),
            }
        }
        Term::Cnt { rel } => {
            resolve_schema(schema, rel)?;
            Ok(Some(ValueType::Int))
        }
    }
}

fn comparable(l: Option<ValueType>, r: Option<ValueType>) -> bool {
    match (l, r) {
        (None, _) | (_, None) => true, // null compares with anything
        (Some(a), Some(b)) => {
            a == b
                || (matches!(a, ValueType::Int | ValueType::Double)
                    && matches!(b, ValueType::Int | ValueType::Double))
        }
    }
}

/// Resolve attribute names to positions throughout a formula.
fn resolve_formula(
    f: &Formula,
    schema: &DatabaseSchema,
    ranges: &FxHashMap<VarName, String>,
) -> Result<Formula> {
    fn resolve_term(
        t: &Term,
        schema: &DatabaseSchema,
        ranges: &FxHashMap<VarName, String>,
    ) -> Result<Term> {
        match t {
            Term::Attr { var, sel } => {
                let rel = ranges
                    .get(var)
                    .ok_or_else(|| CalculusError::UnboundVariable(var.clone()))?;
                let rs = resolve_schema(schema, rel)?;
                let pos = resolve_sel(rs, rel, sel)?;
                Ok(Term::Attr {
                    var: var.clone(),
                    sel: AttrSel::Position(pos),
                })
            }
            Term::Arith(op, l, r) => Ok(Term::Arith(
                *op,
                Box::new(resolve_term(l, schema, ranges)?),
                Box::new(resolve_term(r, schema, ranges)?),
            )),
            Term::Agg { func, rel, sel } => {
                let rs = resolve_schema(schema, rel)?;
                let pos = resolve_sel(rs, rel, sel)?;
                Ok(Term::Agg {
                    func: *func,
                    rel: rel.clone(),
                    sel: AttrSel::Position(pos),
                })
            }
            Term::Cnt { rel } => {
                resolve_schema(schema, rel)?;
                Ok(t.clone())
            }
            Term::Const(_) => Ok(t.clone()),
        }
    }
    match f {
        Formula::Atom(Atom::Cmp(op, l, r)) => {
            let lt = term_type(l, schema, ranges)?;
            let rt = term_type(r, schema, ranges)?;
            if !comparable(lt, rt) {
                return Err(CalculusError::TypeError(format!(
                    "cannot compare `{l}` with `{r}`"
                )));
            }
            Ok(Formula::Atom(Atom::Cmp(
                *op,
                resolve_term(l, schema, ranges)?,
                resolve_term(r, schema, ranges)?,
            )))
        }
        Formula::Atom(Atom::Member { var, rel }) => {
            resolve_schema(schema, rel)?;
            Ok(Formula::Atom(Atom::Member {
                var: var.clone(),
                rel: rel.clone(),
            }))
        }
        Formula::Atom(Atom::TupleEq(a, b)) => {
            // Both sides must range over union-compatible relations.
            let ra = ranges
                .get(a)
                .ok_or_else(|| CalculusError::UnboundVariable(a.clone()))?;
            let rb = ranges
                .get(b)
                .ok_or_else(|| CalculusError::UnboundVariable(b.clone()))?;
            let sa = resolve_schema(schema, ra)?;
            let sb = resolve_schema(schema, rb)?;
            if !sa.union_compatible(sb) {
                return Err(CalculusError::TypeError(format!(
                    "tuple comparison `{a} == {b}` over incompatible relations `{ra}`/`{rb}`"
                )));
            }
            Ok(f.clone())
        }
        Formula::Not(x) => Ok(Formula::not(resolve_formula(x, schema, ranges)?)),
        Formula::And(l, r) => Ok(Formula::and(
            resolve_formula(l, schema, ranges)?,
            resolve_formula(r, schema, ranges)?,
        )),
        Formula::Or(l, r) => Ok(Formula::or(
            resolve_formula(l, schema, ranges)?,
            resolve_formula(r, schema, ranges)?,
        )),
        Formula::Implies(l, r) => Ok(Formula::implies(
            resolve_formula(l, schema, ranges)?,
            resolve_formula(r, schema, ranges)?,
        )),
        Formula::Quant(q, v, body) => Ok(Formula::Quant(
            *q,
            v.clone(),
            Box::new(resolve_formula(body, schema, ranges)?),
        )),
    }
}

/// Analyse a constraint formula against a database schema.
///
/// Checks, in order: closedness, safety (every quantified variable has a
/// membership atom), schema resolution (relations, attributes) and type
/// consistency of comparisons. Returns the resolved formula plus the
/// variable range map used by evaluation and translation.
pub fn analyze(f: &Formula, schema: &DatabaseSchema) -> Result<ConstraintInfo> {
    let free = free_variables(f);
    if !free.is_empty() {
        return Err(CalculusError::NotClosed(free));
    }
    let renamed = alpha_rename(f);
    let mut ranges = FxHashMap::default();
    collect_ranges(&renamed, &mut ranges)?;
    let mut qvars = Vec::new();
    quantified_vars(&renamed, &mut qvars);
    for v in &qvars {
        if !ranges.contains_key(v) {
            return Err(CalculusError::UnsafeVariable(v.clone()));
        }
    }
    let resolved = resolve_formula(&renamed, schema, &ranges)?;
    let relations = resolved.referenced_relations();
    Ok(ConstraintInfo {
        formula: resolved,
        ranges,
        relations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use tm_relational::schema::beer_schema;

    fn analyze_src(src: &str) -> Result<ConstraintInfo> {
        analyze(&parse_formula(src).unwrap(), &beer_schema())
    }

    #[test]
    fn paper_constraints_analyze() {
        let info = analyze_src("forall x (x in beer implies x.alcohol >= 0)").unwrap();
        assert_eq!(info.ranges.get("x").map(String::as_str), Some("beer"));
        // alcohol is position 4 (1-based)
        assert!(info.formula.to_string().contains("x.4"));

        let info = analyze_src(
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        )
        .unwrap();
        assert_eq!(info.ranges.get("y").map(String::as_str), Some("brewery"));
        assert!(info.formula.to_string().contains("x.3 = y.1"));
    }

    #[test]
    fn free_variables_detected() {
        let f = parse_formula("x.alcohol >= 0").unwrap();
        assert_eq!(free_variables(&f), vec!["x".to_owned()]);
        assert!(matches!(
            analyze(&f, &beer_schema()),
            Err(CalculusError::NotClosed(_))
        ));
    }

    #[test]
    fn unsafe_variable_detected() {
        // x is quantified but never bound to a relation.
        let e = analyze_src("forall x (x.1 >= 0)").unwrap_err();
        assert!(matches!(e, CalculusError::UnsafeVariable(_)));
    }

    #[test]
    fn unknown_relation_and_attribute() {
        assert!(matches!(
            analyze_src("forall x (x in nosuch implies x.1 > 0)"),
            Err(CalculusError::UnknownRelation(_))
        ));
        assert!(matches!(
            analyze_src("forall x (x in beer implies x.nosuch > 0)"),
            Err(CalculusError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            analyze_src("forall x (x in beer implies x.9 > 0)"),
            Err(CalculusError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn type_errors_detected() {
        // name (str) compared with int
        assert!(matches!(
            analyze_src("forall x (x in beer implies x.name > 5)"),
            Err(CalculusError::TypeError(_))
        ));
        // arithmetic over string
        assert!(matches!(
            analyze_src("forall x (x in beer implies x.name + 1 > 5)"),
            Err(CalculusError::TypeError(_))
        ));
        // int/double comparison is fine
        assert!(analyze_src("forall x (x in beer implies x.alcohol >= 0)").is_ok());
    }

    #[test]
    fn sibling_scopes_alpha_renamed() {
        let info = analyze_src(
            "forall x (x in beer implies x.alcohol >= 0) and \
             forall x (x in brewery implies x.country != 'nowhere')",
        )
        .unwrap();
        // Two distinct entries must exist.
        assert_eq!(info.ranges.len(), 2);
        assert!(info.ranges.values().any(|r| r == "beer"));
        assert!(info.ranges.values().any(|r| r == "brewery"));
    }

    #[test]
    fn conflicting_ranges_rejected() {
        let e = analyze_src("forall x (x in beer and x in brewery implies x.1 = x.1)").unwrap_err();
        assert!(matches!(e, CalculusError::TypeError(_)));
    }

    #[test]
    fn aux_relations_resolve_to_base_schema() {
        let info = analyze_src("forall x (x in beer@pre implies x.alcohol >= 0)").unwrap();
        assert_eq!(info.ranges.get("x").map(String::as_str), Some("beer@pre"));
        assert!(info.formula.to_string().contains("x.4"));
        assert!(matches!(
            analyze_src("forall x (x in beer@bogus implies x.1 = x.1)"),
            Err(CalculusError::UnknownRelation(_))
        ));
    }

    #[test]
    fn tuple_eq_requires_compatibility() {
        assert!(analyze_src(
            "forall x (x in beer implies not exists y (y in beer and x == y and x.1 != y.1))"
        )
        .is_ok());
        assert!(matches!(
            analyze_src("forall x (x in beer implies exists y (y in brewery and x == y))"),
            Err(CalculusError::TypeError(_))
        ));
    }

    #[test]
    fn aggregates_resolve_positions() {
        let info = analyze_src("AVG(beer, alcohol) <= 7.5").unwrap();
        assert!(info.formula.to_string().contains("AVG(beer, 4)"));
        assert!(matches!(
            analyze_src("SUM(beer, name) <= 10"),
            Err(CalculusError::TypeError(_))
        ));
    }
}
