//! Lexer and recursive-descent parser for the ASCII rendering of CL.
//!
//! The concrete syntax mirrors the paper's notation:
//!
//! ```text
//! I1:  forall x (x in beer implies x.alcohol >= 0)
//! I2:  forall x (x in beer implies
//!        exists y (y in brewery and x.brewery = y.name))
//! agg: SUM(account, 2) <= 1000000
//! cnt: CNT(beer) < 100
//! ```
//!
//! * quantifiers: `forall x (...)`, `exists y (...)`; several variables may
//!   be listed (`forall x, y (...)` ≡ nested quantifiers),
//! * connectives: `not`, `and`, `or`, `implies` (also `->`),
//! * membership: `x in beer`; pre-state: `x in beer@pre`,
//! * attribute selection: by 1-based position (`x.2`, the paper's syntax)
//!   or by name (`x.alcohol`),
//! * tuple equality: `x == y` between bare variables,
//! * aggregates: `SUM(rel, attr)`, `AVG`, `MIN`, `MAX`, and `CNT(rel)`.

use tm_relational::Value;

use crate::ast::{AggFn, ArithFn, Atom, AttrSel, CmpOp, Formula, Quantifier, Term};
use crate::error::{CalculusError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Double(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Eq,
    EqEq,
    Ne,
    Ge,
    Gt,
    Arrow,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    offset: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                toks.push(SpannedTok {
                    tok: Tok::Dot,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                toks.push(SpannedTok {
                    tok: Tok::Plus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                toks.push(SpannedTok {
                    tok: Tok::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                toks.push(SpannedTok {
                    tok: Tok::Slash,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(SpannedTok {
                        tok: Tok::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Minus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(SpannedTok {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::EqEq,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(SpannedTok {
                        tok: Tok::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Eq,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(CalculusError::Lex {
                        offset: start,
                        message: "expected `!=`".into(),
                    });
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        Some(&b) if b as char == quote => break,
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                        None => {
                            return Err(CalculusError::Lex {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    offset: start,
                });
                i = j + 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // Decimal point followed by a digit ⇒ double literal.
                if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
                    let mut k = j + 1;
                    while k < bytes.len() && bytes[k].is_ascii_digit() {
                        k += 1;
                    }
                    let text = &src[i..k];
                    let v: f64 = text.parse().map_err(|_| CalculusError::Lex {
                        offset: start,
                        message: format!("bad double literal `{text}`"),
                    })?;
                    toks.push(SpannedTok {
                        tok: Tok::Double(v),
                        offset: start,
                    });
                    i = k;
                } else {
                    let text = &src[i..j];
                    let v: i64 = text.parse().map_err(|_| CalculusError::Lex {
                        offset: start,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    toks.push(SpannedTok {
                        tok: Tok::Int(v),
                        offset: start,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'@')
                {
                    j += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(src[i..j].to_owned()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(CalculusError::Lex {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, message: String) -> CalculusError {
        CalculusError::Parse {
            offset: self.offset(),
            message,
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    // formula := implication (quantifiers are primaries with narrow scope,
    // matching the paper's `(Qx)(W)` notation)
    fn formula(&mut self) -> Result<Formula> {
        self.implication()
    }

    fn quantified(&mut self) -> Result<Formula> {
        for (kw, q) in [
            ("forall", Quantifier::Forall),
            ("exists", Quantifier::Exists),
        ] {
            if self.is_kw(kw) {
                self.pos += 1;
                let mut vars = vec![self.ident("tuple variable")?];
                while self.eat(&Tok::Comma) {
                    vars.push(self.ident("tuple variable")?);
                }
                self.expect(&Tok::LParen, "`(` after quantifier")?;
                let body = self.formula()?;
                self.expect(&Tok::RParen, "`)` closing quantifier body")?;
                let mut f = body;
                for v in vars.into_iter().rev() {
                    f = Formula::Quant(q, v, Box::new(f));
                }
                return Ok(f);
            }
        }
        self.implication()
    }

    fn implication(&mut self) -> Result<Formula> {
        let lhs = self.disjunction()?;
        if self.eat_kw("implies") || self.eat(&Tok::Arrow) {
            let rhs = self.implication()?; // right-associative
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Formula> {
        let mut f = self.conjunction()?;
        while self.eat_kw("or") {
            let r = self.conjunction()?;
            f = Formula::or(f, r);
        }
        Ok(f)
    }

    fn conjunction(&mut self) -> Result<Formula> {
        let mut f = self.unary()?;
        while self.eat_kw("and") {
            let r = self.unary()?;
            f = Formula::and(f, r);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula> {
        if self.eat_kw("not") {
            return Ok(Formula::not(self.unary()?));
        }
        if self.is_kw("forall") || self.is_kw("exists") {
            return self.quantified();
        }
        if self.peek() == Some(&Tok::LParen) {
            // Could be a parenthesized formula or a parenthesized term in a
            // comparison; backtrack on failure.
            let save = self.pos;
            self.pos += 1;
            if let Ok(f) = self.formula() {
                if self.eat(&Tok::RParen) {
                    // `(f)` followed by a comparison operator would mean we
                    // mis-parsed a term; only accept when no term operator
                    // follows.
                    if !matches!(
                        self.peek(),
                        Some(
                            Tok::Lt
                                | Tok::Le
                                | Tok::Eq
                                | Tok::EqEq
                                | Tok::Ne
                                | Tok::Ge
                                | Tok::Gt
                                | Tok::Plus
                                | Tok::Minus
                                | Tok::Star
                                | Tok::Slash
                        )
                    ) {
                        return Ok(f);
                    }
                }
            }
            self.pos = save;
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula> {
        // `x in R`, `x == y`, or a term comparison.
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if !is_agg_keyword(&name) {
                // Lookahead on the token after the identifier.
                match self.toks.get(self.pos + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(kw)) if kw == "in" => {
                        self.pos += 2;
                        let rel = self.ident("relation name")?;
                        return Ok(Formula::Atom(Atom::Member { var: name, rel }));
                    }
                    Some(Tok::EqEq) => {
                        self.pos += 2;
                        let rhs = self.ident("tuple variable")?;
                        return Ok(Formula::Atom(Atom::TupleEq(name, rhs)));
                    }
                    _ => {}
                }
            }
        }
        let lhs = self.term()?;
        let op = match self.bump() {
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Gt) => CmpOp::Gt,
            _ => {
                return Err(self.err("expected comparison operator".into()));
            }
        };
        let rhs = self.term()?;
        Ok(Formula::Atom(Atom::Cmp(op, lhs, rhs)))
    }

    fn term(&mut self) -> Result<Term> {
        let mut t = self.muldiv()?;
        loop {
            if self.eat(&Tok::Plus) {
                let r = self.muldiv()?;
                t = Term::Arith(ArithFn::Add, Box::new(t), Box::new(r));
            } else if self.eat(&Tok::Minus) {
                let r = self.muldiv()?;
                t = Term::Arith(ArithFn::Sub, Box::new(t), Box::new(r));
            } else {
                return Ok(t);
            }
        }
    }

    fn muldiv(&mut self) -> Result<Term> {
        let mut t = self.primary_term()?;
        loop {
            if self.eat(&Tok::Star) {
                let r = self.primary_term()?;
                t = Term::Arith(ArithFn::Mul, Box::new(t), Box::new(r));
            } else if self.eat(&Tok::Slash) {
                let r = self.primary_term()?;
                t = Term::Arith(ArithFn::Div, Box::new(t), Box::new(r));
            } else {
                return Ok(t);
            }
        }
    }

    fn attr_sel(&mut self) -> Result<AttrSel> {
        match self.bump() {
            Some(Tok::Int(i)) if i >= 1 => Ok(AttrSel::Position(i as usize)),
            Some(Tok::Int(i)) => Err(self.err(format!("attribute positions are 1-based; got {i}"))),
            Some(Tok::Ident(n)) => Ok(AttrSel::Name(n)),
            _ => Err(self.err("expected attribute position or name".into())),
        }
    }

    fn primary_term(&mut self) -> Result<Term> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Term::Const(Value::Int(v)))
            }
            Some(Tok::Double(v)) => {
                self.pos += 1;
                Ok(Term::Const(Value::double(v)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Term::Const(Value::Str(s)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                match self.primary_term()? {
                    Term::Const(Value::Int(v)) => Ok(Term::Const(Value::Int(-v))),
                    Term::Const(Value::Double(v)) => Ok(Term::Const(Value::double(-v))),
                    other => Ok(Term::Arith(
                        ArithFn::Sub,
                        Box::new(Term::int(0)),
                        Box::new(other),
                    )),
                }
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let t = self.term()?;
                self.expect(&Tok::RParen, "`)` closing term")?;
                Ok(t)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if let Some(v) = keyword_to_value(&name) {
                    return Ok(Term::Const(v));
                }
                if name == "CNT" {
                    self.expect(&Tok::LParen, "`(` after CNT")?;
                    let rel = self.ident("relation name")?;
                    self.expect(&Tok::RParen, "`)` after CNT argument")?;
                    return Ok(Term::Cnt { rel });
                }
                if let Some(func) = agg_fn(&name) {
                    self.expect(&Tok::LParen, "`(` after aggregate")?;
                    let rel = self.ident("relation name")?;
                    self.expect(&Tok::Comma, "`,` between relation and attribute")?;
                    let sel = self.attr_sel()?;
                    self.expect(&Tok::RParen, "`)` after aggregate arguments")?;
                    return Ok(Term::Agg { func, rel, sel });
                }
                // Attribute selection `x.i` / `x.name`.
                self.expect(&Tok::Dot, "`.` after tuple variable")?;
                let sel = self.attr_sel()?;
                Ok(Term::Attr { var: name, sel })
            }
            _ => Err(self.err("expected a term".into())),
        }
    }
}

fn agg_fn(name: &str) -> Option<AggFn> {
    match name {
        "SUM" => Some(AggFn::Sum),
        "AVG" => Some(AggFn::Avg),
        "MIN" => Some(AggFn::Min),
        "MAX" => Some(AggFn::Max),
        _ => None,
    }
}

fn is_agg_keyword(name: &str) -> bool {
    agg_fn(name).is_some() || name == "CNT"
}

fn keyword_to_value(name: &str) -> Option<Value> {
    match name {
        "null" => Some(Value::Null),
        "true" => Some(Value::Bool(true)),
        "false" => Some(Value::Bool(false)),
        _ => None,
    }
}

/// Parse a CL formula from its ASCII rendering.
pub fn parse_formula(src: &str) -> Result<Formula> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after formula".into()));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula as F;

    #[test]
    fn parses_paper_i1() {
        let f = parse_formula("forall x (x in beer implies x.alcohol >= 0)").unwrap();
        match &f {
            F::Quant(Quantifier::Forall, v, body) => {
                assert_eq!(v, "x");
                match body.as_ref() {
                    F::Implies(l, r) => {
                        assert_eq!(l.as_ref(), &Formula::member("x", "beer"));
                        assert_eq!(
                            r.as_ref(),
                            &F::Atom(Atom::Cmp(
                                CmpOp::Ge,
                                Term::attr_named("x", "alcohol"),
                                Term::int(0)
                            ))
                        );
                    }
                    other => panic!("expected implication, got {other:?}"),
                }
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_i2() {
        let f = parse_formula(
            "forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name))",
        )
        .unwrap();
        assert_eq!(f.referenced_relations(), vec!["beer", "brewery"]);
        assert!(f.to_string().contains("exists y"));
    }

    #[test]
    fn positional_attributes() {
        let f = parse_formula("forall x (x in r implies x.1 < x.2)").unwrap();
        let s = f.to_string();
        assert!(s.contains("x.1 < x.2"));
    }

    #[test]
    fn multi_variable_quantifier_desugars() {
        let f = parse_formula("forall x, y (x in r and y in s implies x.1 = y.1)").unwrap();
        match f {
            F::Quant(Quantifier::Forall, v1, inner) => {
                assert_eq!(v1, "x");
                assert!(matches!(*inner, F::Quant(Quantifier::Forall, ref v2, _) if v2 == "y"));
            }
            other => panic!("expected nested foralls, got {other:?}"),
        }
    }

    #[test]
    fn aggregates_and_counts() {
        let f = parse_formula("SUM(account, 2) <= 1000000").unwrap();
        assert_eq!(
            f,
            F::Atom(Atom::Cmp(
                CmpOp::Le,
                Term::Agg {
                    func: AggFn::Sum,
                    rel: "account".into(),
                    sel: AttrSel::Position(2)
                },
                Term::int(1000000)
            ))
        );
        let f = parse_formula("CNT(beer) < 100").unwrap();
        assert!(matches!(
            f,
            F::Atom(Atom::Cmp(CmpOp::Lt, Term::Cnt { .. }, _))
        ));
        let f = parse_formula("AVG(beer, alcohol) <= 7.5").unwrap();
        assert!(f.to_string().contains("AVG(beer, alcohol)"));
    }

    #[test]
    fn tuple_equality() {
        let f = parse_formula("forall x (exists y (x == y))").unwrap();
        assert!(f.to_string().contains("x == y"));
    }

    #[test]
    fn aux_relation_names() {
        let f = parse_formula("forall x (x in beer@pre implies x.alcohol >= 0)").unwrap();
        assert_eq!(f.referenced_relations(), vec!["beer@pre"]);
        assert!(f.is_transition());
    }

    #[test]
    fn operator_precedence() {
        // implies binds weakest, and binds tighter than or.
        let f = parse_formula("1 = 1 or 2 = 2 and 3 = 3 implies 4 = 4").unwrap();
        match f {
            F::Implies(l, _) => match *l {
                F::Or(_, r) => assert!(matches!(*r, F::And(..))),
                other => panic!("expected or at top of lhs, got {other:?}"),
            },
            other => panic!("expected implies at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let f = parse_formula("x.1 + x.2 * 2 = 7").map_err(|e| e.to_string());
        let f = f.unwrap();
        match f {
            F::Atom(Atom::Cmp(_, lhs, _)) => match lhs {
                Term::Arith(ArithFn::Add, _, r) => {
                    assert!(matches!(*r, Term::Arith(ArithFn::Mul, _, _)));
                }
                other => panic!("expected +, got {other:?}"),
            },
            other => panic!("expected cmp, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_terms_in_comparisons() {
        let f = parse_formula("(x.1 + 1) * 2 > 10");
        assert!(f.is_ok(), "{f:?}");
    }

    #[test]
    fn string_and_null_literals() {
        let f = parse_formula("forall x (x in beer implies x.type != 'stout')").unwrap();
        assert!(f.to_string().contains("\"stout\""));
        let f = parse_formula("forall x (x in beer implies x.brewery != null)").unwrap();
        assert!(f.to_string().contains("null"));
    }

    #[test]
    fn negative_literals() {
        let f = parse_formula("forall x (x in r implies x.1 > -5)").unwrap();
        assert!(f.to_string().contains("-5"));
        let f = parse_formula("forall x (x in r implies x.1 > -5.5)").unwrap();
        assert!(f.to_string().contains("-5.5"));
    }

    #[test]
    fn arrow_synonym_for_implies() {
        let a = parse_formula("forall x (x in r -> x.1 > 0)").unwrap();
        let b = parse_formula("forall x (x in r implies x.1 > 0)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn not_parses() {
        let f = parse_formula("not exists x (x in beer and x.alcohol < 0)").unwrap();
        assert!(matches!(f, F::Not(_)));
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_formula("forall x x in beer)").unwrap_err();
        assert!(matches!(e, CalculusError::Parse { .. }));
        let e = parse_formula("forall x (x in beer implies x.alcohol >= )").unwrap_err();
        assert!(matches!(e, CalculusError::Parse { .. }));
        let e = parse_formula("1 = 1 %").unwrap_err();
        assert!(matches!(e, CalculusError::Lex { .. }));
    }

    #[test]
    fn trailing_input_rejected() {
        let e = parse_formula("1 = 1 2 = 2").unwrap_err();
        assert!(matches!(e, CalculusError::Parse { .. }));
    }

    #[test]
    fn zero_position_rejected() {
        let e = parse_formula("forall x (x in r implies x.0 > 1)").unwrap_err();
        assert!(e.to_string().contains("1-based"));
    }
}
