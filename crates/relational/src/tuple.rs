//! Tuples — elements of `dom(R)` (Definition 2.1).

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple of attribute values.
///
/// Tuples are shared freely between relation states (a committed state and
/// the pre-transaction snapshot typically share almost all tuples), so the
/// payload lives behind an [`Arc`] and cloning a tuple is a reference-count
/// bump, not a deep copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from owned values.
    pub fn from_values(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Build a tuple from anything convertible into values.
    ///
    /// ```
    /// use tm_relational::Tuple;
    /// let t = Tuple::of(("pils", 5.0_f64));
    /// assert_eq!(t.arity(), 2);
    /// ```
    pub fn of<T: IntoTuple>(parts: T) -> Self {
        parts.into_tuple()
    }

    /// The empty tuple. All empty tuples share one allocation (hot
    /// execution paths create one per run), so this is a refcount bump.
    pub fn empty() -> Self {
        static EMPTY: std::sync::OnceLock<Tuple> = std::sync::OnceLock::new();
        EMPTY
            .get_or_init(|| Tuple {
                values: Arc::from(Vec::new()),
            })
            .clone()
    }

    /// Number of attributes in this tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The attribute values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at zero-based position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Concatenate two tuples (used by product/join operators).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::from_values(v)
    }

    /// Project this tuple onto the given zero-based positions.
    ///
    /// Positions may repeat or reorder; out-of-range positions panic (the
    /// algebra layer validates positions against schemas before evaluation).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::from_values(positions.iter().map(|&i| self.values[i].clone()).collect())
    }
}

/// Tuples hash and compare exactly as their value slices (the derived
/// impls delegate through the `Arc`), so hashed containers keyed by
/// `Tuple` can be probed with a borrowed `[Value]` — no allocation.
impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::from_values(iter.into_iter().collect())
    }
}

/// Conversion of Rust tuples into relational [`Tuple`]s, for ergonomic test
/// and example code.
pub trait IntoTuple {
    /// Perform the conversion.
    fn into_tuple(self) -> Tuple;
}

macro_rules! impl_into_tuple {
    ($($name:ident),+) => {
        impl<$($name: Into<Value>),+> IntoTuple for ($($name,)+) {
            #[allow(non_snake_case)]
            fn into_tuple(self) -> Tuple {
                let ($($name,)+) = self;
                Tuple::from_values(vec![$($name.into()),+])
            }
        }
    };
}

impl_into_tuple!(A);
impl_into_tuple!(A, B);
impl_into_tuple!(A, B, C);
impl_into_tuple!(A, B, C, D);
impl_into_tuple!(A, B, C, D, E);
impl_into_tuple!(A, B, C, D, E, F);
impl_into_tuple!(A, B, C, D, E, F, G);
impl_into_tuple!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::of(("ale", 5.5_f64, true));
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::str("ale")));
        assert_eq!(t.get(1), Some(&Value::double(5.5)));
        assert_eq!(t.get(2), Some(&Value::Bool(true)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn concat_projects_back() {
        let a = Tuple::of((1, 2));
        let b = Tuple::of((3,));
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[0, 1]), a);
        assert_eq!(c.project(&[2]), b);
        // Reorder and repeat.
        assert_eq!(c.project(&[2, 0, 2]), Tuple::of((3, 1, 3)));
    }

    #[test]
    fn cheap_clone_shares_payload() {
        let a = Tuple::of((1, "x"));
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.values, &b.values));
    }

    #[test]
    fn equality_and_hash_in_sets() {
        use crate::util::FxHashSet;
        let mut s = FxHashSet::default();
        s.insert(Tuple::of((1, "a")));
        s.insert(Tuple::of((1, "a")));
        s.insert(Tuple::of((2, "a")));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Tuple::of((1, "x")).to_string(), "(1, \"x\")");
    }
}
