#![warn(missing_docs)]

//! # `tm-relational` — the relational data model substrate
//!
//! This crate implements the formal data model of Section 2.1 of
//! Grefen, *Combining Theory and Practice in Integrity Control* (VLDB 1993):
//!
//! * [`Value`] / [`ValueType`] — the attribute domains `dom(A_i)`,
//! * [`Tuple`] — elements of `dom(R) = dom(A_1) × … × dom(A_n)`,
//! * [`RelationSchema`] (Definition 2.1) and [`DatabaseSchema`]
//!   (Definition 2.2),
//! * [`Relation`] — a relation state (a *set* of tuples, the paper's model),
//! * [`Multiset`] — the bag extension sketched in the paper's conclusions,
//! * [`Database`] — a database state with a logical time, and
//! * [`Transition`] — a single-step database transition (Definition 2.3).
//!
//! Everything upstream (the extended relational algebra, the CL constraint
//! language, the transaction modification subsystem) is built on the types in
//! this crate. The crate is deliberately free of any execution logic: it
//! only knows how to store, compare, and validate relational data.
//!
//! ## Auxiliary relations
//!
//! Section 4.1 of the paper introduces *auxiliary relations* that the DBMS
//! maintains automatically for integrity control: the pre-transaction state
//! of a relation and the differential (delta) relations. The reserved naming
//! scheme for these lives in [`auxiliary`]; the actual maintenance is done by
//! the transaction executor in `tm-algebra`.

pub mod auxiliary;
pub mod codec;
pub mod counters;
pub mod database;
pub mod delta;
pub mod error;
pub mod multiset;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod util;
pub mod value;

pub use auxiliary::{del_name, ins_name, pre_name, AuxKind};
pub use codec::{CodecError, CodecResult};
pub use counters::unshare_count;
pub use database::{Database, Transition};
pub use delta::{CommittedDelta, Conflict, RelationDelta, TxFootprint};
pub use error::{RelationalError, Result};
pub use multiset::Multiset;
pub use relation::Relation;
pub use schema::{Attribute, DatabaseSchema, RelationSchema};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
