//! Attribute values and their domains.
//!
//! Definition 2.1 of the paper leaves attribute domains `dom(A_i)` abstract;
//! the prototype (PRISMA/DB) used the usual scalar SQL-ish domains. We
//! support 64-bit integers, IEEE doubles, strings, booleans, and an explicit
//! `null` (needed by the paper's own Example 4.2, whose compensating action
//! inserts `(name, null, null)` tuples into `brewery`).
//!
//! Values must be usable as hash-set members (relations are sets of tuples),
//! so [`Value`] implements `Eq`/`Hash`/`Ord` with a total order. Doubles are
//! compared via [`f64::total_cmp`] semantics (canonicalising NaN and the
//! zero sign on construction so that `Eq`/`Hash` agree).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type (domain) of an attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// 64-bit signed integers.
    Int,
    /// IEEE-754 double precision floats with a canonical total order.
    Double,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Double => write!(f, "double"),
            ValueType::Str => write!(f, "str"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

/// A single attribute value.
///
/// `Null` is a member of every domain: `Value::Null.type_check(t)` succeeds
/// for all `t`. Comparison predicates on `Null` follow the paper's simple
/// two-valued logic — `Null` equals only itself and sorts before every other
/// value — rather than SQL's three-valued logic, because the CL language of
/// Section 4.1 is two-valued.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value, used by compensating actions (cf. Example 4.2).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Canonicalised double (no NaN, no negative zero).
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Construct a double value, canonicalising NaN and `-0.0` so that the
    /// derived equality and hashing are consistent.
    pub fn double(v: f64) -> Self {
        if v.is_nan() {
            // A single canonical NaN keeps Eq/Hash lawful.
            Value::Double(f64::NAN)
        } else if v == 0.0 {
            Value::Double(0.0)
        } else {
            Value::Double(v)
        }
    }

    /// Construct a string value.
    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// The [`ValueType`] of this value, or `None` for `Null` (which belongs
    /// to every domain).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Double(_) => Some(ValueType::Double),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    /// Whether this value is a member of domain `ty` (`Null` always is).
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as an integer if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret as a double, widening integers.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Interpret as a string slice if possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as a boolean if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric comparison used by the value predicates `PV` of
    /// Definition 4.1; integers and doubles compare numerically, other
    /// combinations compare by the total order.
    pub fn compare(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Double(b)) => (*a as f64).total_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.cmp(other),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Feed this value into a hasher such that values equal under
    /// [`Value::compare`] always hash equally — the hash contract of the
    /// engine's *join keys*, as opposed to the derived [`Hash`] impl whose
    /// contract is the typed set equality of relations.
    ///
    /// `compare` equates `Int(i)` with the `Double` it widens to, so both
    /// numeric variants hash under one shared tag as the `f64` bit
    /// pattern. Because two distinct large integers can both compare equal
    /// to the double they round to, compare-equality is not transitive and
    /// has no exact canonical key: hash consumers must bucket by this hash
    /// and re-verify candidates with [`Value::compare`] (false bucket
    /// collisions are possible; false negatives are not).
    pub fn hash_for_join<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(u8::from(*b));
            }
            Value::Int(i) => {
                state.write_u8(3);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Double(d) => {
                state.write_u8(3);
                state.write_u64(d.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(4);
                state.write(s.as_bytes());
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.rank());
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::FxHashSet;

    #[test]
    fn typing() {
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::double(1.5).value_type(), Some(ValueType::Double));
        assert_eq!(Value::str("x").value_type(), Some(ValueType::Str));
        assert_eq!(Value::Bool(true).value_type(), Some(ValueType::Bool));
        assert_eq!(Value::Null.value_type(), None);
        assert!(Value::Null.conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Str));
        assert!(Value::Int(1).conforms_to(ValueType::Int));
        assert!(!Value::Int(1).conforms_to(ValueType::Str));
    }

    #[test]
    fn double_canonicalisation() {
        assert_eq!(Value::double(-0.0), Value::double(0.0));
        #[allow(clippy::zero_divided_by_zero)]
        let nan = 0.0 / 0.0;
        assert_eq!(Value::double(f64::NAN), Value::double(nan));
        let mut s: FxHashSet<Value> = FxHashSet::default();
        s.insert(Value::double(-0.0));
        assert!(s.contains(&Value::double(0.0)));
        s.insert(Value::double(f64::NAN));
        assert!(s.contains(&Value::double(f64::NAN)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).compare(&Value::double(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).compare(&Value::double(2.5)), Ordering::Less);
        assert_eq!(
            Value::double(3.0).compare(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn total_order_is_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(1),
            Value::double(0.5),
            Value::str("a"),
            Value::str("b"),
        ];
        for a in &vals {
            assert_eq!(a.cmp(a), Ordering::Equal);
            for b in &vals {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }
    }

    #[test]
    fn null_equals_only_itself() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::str(""));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(7).as_double(), Some(7.0));
        assert_eq!(Value::str("y").as_str(), Some("y"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("y").as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("ale").to_string(), "\"ale\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
