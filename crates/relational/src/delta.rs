//! Net per-relation change records.
//!
//! A committed transaction's effect on one relation is exactly its net
//! differential pair `(R@ins, R@del)` from Section 4.1 — the same records
//! the executor keeps for rollback double as the redo log entries the
//! durability subsystem persists (`tm-durable`). A [`RelationDelta`] is
//! that pair flattened to sorted tuple lists: deterministic bytes for the
//! WAL, disjoint by construction (a tuple both inserted and deleted nets
//! to nothing and never appears).

use crate::database::Database;
use crate::error::Result;
use crate::tuple::Tuple;

/// The net change a committed transaction made to one relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelationDelta {
    /// The base relation the delta applies to.
    pub relation: String,
    /// Tuples the transaction added (absent before, present after).
    pub inserted: Vec<Tuple>,
    /// Tuples the transaction removed (present before, absent after).
    pub deleted: Vec<Tuple>,
}

impl RelationDelta {
    /// A delta with no effect.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Redo: apply this delta to a database state. Deletions run first;
    /// insertions are re-validated against the schema, so a delta decoded
    /// from damaged storage surfaces an error instead of corrupting the
    /// state.
    pub fn apply(&self, db: &mut Database) -> Result<()> {
        let rel = db.relation_mut(&self.relation)?;
        for t in &self.deleted {
            rel.remove(t);
        }
        for t in &self.inserted {
            rel.insert(t.clone())?;
        }
        Ok(())
    }

    /// Undo: apply the inverse of this delta (remove what it inserted,
    /// re-insert what it deleted). Used when a commit cannot be made
    /// durable and must be rolled back.
    pub fn unapply(&self, db: &mut Database) -> Result<()> {
        let rel = db.relation_mut(&self.relation)?;
        for t in &self.inserted {
            rel.remove(t);
        }
        for t in &self.deleted {
            rel.insert(t.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::beer_schema;

    #[test]
    fn apply_and_unapply_invert() {
        let mut db = Database::new(beer_schema().into_shared());
        db.extend("brewery", vec![Tuple::of(("old", "x", "y"))])
            .unwrap();
        let before = db.unshared_copy();
        let delta = RelationDelta {
            relation: "brewery".into(),
            inserted: vec![Tuple::of(("new", "a", "b"))],
            deleted: vec![Tuple::of(("old", "x", "y"))],
        };
        delta.apply(&mut db).unwrap();
        assert_eq!(db.relation("brewery").unwrap().len(), 1);
        assert!(db
            .relation("brewery")
            .unwrap()
            .contains(&Tuple::of(("new", "a", "b"))));
        delta.unapply(&mut db).unwrap();
        assert!(db.state_eq(&before));
    }
}
