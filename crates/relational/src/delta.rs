//! Net per-relation change records.
//!
//! A committed transaction's effect on one relation is exactly its net
//! differential pair `(R@ins, R@del)` from Section 4.1 — the same records
//! the executor keeps for rollback double as the redo log entries the
//! durability subsystem persists (`tm-durable`). A [`RelationDelta`] is
//! that pair flattened to sorted tuple lists: deterministic bytes for the
//! WAL, disjoint by construction (a tuple both inserted and deleted nets
//! to nothing and never appears).

use std::collections::{BTreeMap, BTreeSet};

use crate::database::Database;
use crate::error::Result;
use crate::tuple::Tuple;

/// The net change a committed transaction made to one relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelationDelta {
    /// The base relation the delta applies to.
    pub relation: String,
    /// Tuples the transaction added (absent before, present after).
    pub inserted: Vec<Tuple>,
    /// Tuples the transaction removed (present before, absent after).
    pub deleted: Vec<Tuple>,
}

impl RelationDelta {
    /// A delta with no effect.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Redo: apply this delta to a database state. Deletions run first;
    /// insertions are re-validated against the schema, so a delta decoded
    /// from damaged storage surfaces an error instead of corrupting the
    /// state.
    pub fn apply(&self, db: &mut Database) -> Result<()> {
        let rel = db.relation_mut(&self.relation)?;
        for t in &self.deleted {
            rel.remove(t);
        }
        for t in &self.inserted {
            rel.insert(t.clone())?;
        }
        Ok(())
    }

    /// Undo: apply the inverse of this delta (remove what it inserted,
    /// re-insert what it deleted). Used when a commit cannot be made
    /// durable and must be rolled back.
    pub fn unapply(&self, db: &mut Database) -> Result<()> {
        let rel = db.relation_mut(&self.relation)?;
        for t in &self.inserted {
            rel.remove(t);
        }
        for t in &self.deleted {
            rel.insert(t.clone())?;
        }
        Ok(())
    }
}

/// The conflict footprint one snapshot execution declares to the commit
/// applier: what it read and what it intended to write. First-committer-wins
/// validation compares this footprint against every [`CommittedDelta`] that
/// landed after the execution's snapshot epoch.
///
/// The two halves have different granularity on purpose:
///
/// * `read_rels` is **relation-level** — constraint checks (hash probes,
///   alarm scans) depend on whole relation states, so any concurrent write
///   to a read relation invalidates the execution's decision (this is what
///   catches write skew through a constraint, and what makes an *abort*
///   decision revalidatable);
/// * `write_keys` is **tuple-level** — two transactions inserting different
///   rows into the same relation do not conflict, which is the whole point
///   of running them concurrently. Declared rows are included even when
///   they netted to nothing (a no-op insert of an existing tuple is an
///   undeclared read of that tuple's presence).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxFootprint {
    /// Base relations whose contents the execution's outcome depends on.
    pub read_rels: BTreeSet<String>,
    /// Per-relation tuples the execution declared it would insert/delete.
    pub write_keys: BTreeMap<String, BTreeSet<Tuple>>,
}

impl TxFootprint {
    /// Record a relation-level read dependency.
    pub fn add_read(&mut self, relation: &str) {
        if !self.read_rels.contains(relation) {
            self.read_rels.insert(relation.to_string());
        }
    }

    /// Record a declared write of `tuple` against `relation`.
    pub fn add_write(&mut self, relation: &str, tuple: Tuple) {
        self.write_keys
            .entry(relation.to_string())
            .or_default()
            .insert(tuple);
    }

    /// Fold a net differential into the write half of the footprint.
    pub fn absorb_delta(&mut self, delta: &RelationDelta) {
        if delta.is_empty() {
            return;
        }
        let entry = self.write_keys.entry(delta.relation.clone()).or_default();
        for t in delta.inserted.iter().chain(delta.deleted.iter()) {
            entry.insert(t.clone());
        }
    }

    /// Nothing read, nothing written — trivially conflict-free.
    pub fn is_empty(&self) -> bool {
        self.read_rels.is_empty() && self.write_keys.is_empty()
    }

    /// First-committer-wins test: does a transaction committed after this
    /// footprint's snapshot invalidate it? Returns the first conflict
    /// found (relation + which half of the footprint it hit), or `None`
    /// when the histories commute.
    pub fn conflicts_with(&self, committed: &CommittedDelta) -> Option<Conflict> {
        for (rel, theirs) in &committed.touched {
            if theirs.is_empty() {
                continue;
            }
            if self.read_rels.contains(rel) {
                return Some(Conflict {
                    relation: rel.clone(),
                    committed_epoch: committed.epoch,
                    read: true,
                });
            }
            if let Some(mine) = self.write_keys.get(rel) {
                let (small, large) = if mine.len() <= theirs.len() {
                    (mine, theirs)
                } else {
                    (theirs, mine)
                };
                if small.iter().any(|t| large.contains(t)) {
                    return Some(Conflict {
                        relation: rel.clone(),
                        committed_epoch: committed.epoch,
                        read: false,
                    });
                }
            }
        }
        None
    }
}

/// One committed transaction's record in the epoch log: the tuples it
/// touched (indexed for first-committer-wins validation) plus the net
/// differentials themselves (replayable, so a session's cached database
/// copy can roll forward to a later epoch at O(Δ) instead of re-cloning
/// and re-paying the COW unshare of every relation it writes). Retained
/// while any live snapshot predates it, plus a bounded roll-forward
/// window behind the newest commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedDelta {
    /// The epoch the applier assigned this commit.
    pub epoch: u64,
    /// Per-relation set of every tuple inserted or deleted.
    pub touched: BTreeMap<String, BTreeSet<Tuple>>,
    /// The non-empty net differentials, as applied to the authoritative
    /// state — replaying them onto any copy of the pre-commit state
    /// reproduces the post-commit state exactly.
    pub deltas: Vec<RelationDelta>,
}

impl CommittedDelta {
    /// Flatten a commit's net differentials into a touched-tuple record,
    /// retaining the (non-empty) differentials for replay.
    pub fn from_deltas(epoch: u64, deltas: &[RelationDelta]) -> Self {
        let mut touched: BTreeMap<String, BTreeSet<Tuple>> = BTreeMap::new();
        let mut kept = Vec::new();
        for d in deltas {
            if d.is_empty() {
                continue;
            }
            let entry = touched.entry(d.relation.clone()).or_default();
            for t in d.inserted.iter().chain(d.deleted.iter()) {
                entry.insert(t.clone());
            }
            kept.push(d.clone());
        }
        CommittedDelta {
            epoch,
            touched,
            deltas: kept,
        }
    }

    /// Replay this commit onto a database copy of its pre-commit state,
    /// advancing the copy to the post-commit state.
    pub fn replay(&self, db: &mut Database) -> Result<()> {
        for d in &self.deltas {
            d.apply(db)?;
        }
        Ok(())
    }
}

/// A first-committer-wins conflict: the losing footprint's relation, the
/// epoch of the commit it lost to, and which half of the footprint was
/// invalidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The relation both transactions touched.
    pub relation: String,
    /// Epoch of the already-committed transaction.
    pub committed_epoch: u64,
    /// `true` if the loser *read* the relation (its decision may be
    /// stale); `false` for a tuple-level write overlap.
    pub read: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::beer_schema;

    #[test]
    fn apply_and_unapply_invert() {
        let mut db = Database::new(beer_schema().into_shared());
        db.extend("brewery", vec![Tuple::of(("old", "x", "y"))])
            .unwrap();
        let before = db.unshared_copy();
        let delta = RelationDelta {
            relation: "brewery".into(),
            inserted: vec![Tuple::of(("new", "a", "b"))],
            deleted: vec![Tuple::of(("old", "x", "y"))],
        };
        delta.apply(&mut db).unwrap();
        assert_eq!(db.relation("brewery").unwrap().len(), 1);
        assert!(db
            .relation("brewery")
            .unwrap()
            .contains(&Tuple::of(("new", "a", "b"))));
        delta.unapply(&mut db).unwrap();
        assert!(db.state_eq(&before));
    }

    fn delta_of(rel: &str, ins: &[Tuple], del: &[Tuple]) -> RelationDelta {
        RelationDelta {
            relation: rel.into(),
            inserted: ins.to_vec(),
            deleted: del.to_vec(),
        }
    }

    #[test]
    fn disjoint_writes_commute() {
        let mut fp = TxFootprint::default();
        fp.absorb_delta(&delta_of(
            "beer",
            &[Tuple::of(("a", "s", "b", 5.0_f64))],
            &[],
        ));
        let committed = CommittedDelta::from_deltas(
            7,
            &[delta_of(
                "beer",
                &[Tuple::of(("z", "s", "b", 5.0_f64))],
                &[],
            )],
        );
        assert_eq!(fp.conflicts_with(&committed), None);
    }

    #[test]
    fn tuple_overlap_conflicts() {
        let row = Tuple::of(("a", "s", "b", 5.0_f64));
        let mut fp = TxFootprint::default();
        fp.add_write("beer", row.clone());
        let committed = CommittedDelta::from_deltas(3, &[delta_of("beer", &[], &[row])]);
        let c = fp.conflicts_with(&committed).unwrap();
        assert_eq!(c.relation, "beer");
        assert_eq!(c.committed_epoch, 3);
        assert!(!c.read);
    }

    #[test]
    fn read_relation_conflicts_regardless_of_tuple() {
        let mut fp = TxFootprint::default();
        fp.add_read("brewery");
        fp.add_write("beer", Tuple::of(("a", "s", "b", 5.0_f64)));
        let committed = CommittedDelta::from_deltas(
            1,
            &[delta_of("brewery", &[], &[Tuple::of(("g", "d", "ie"))])],
        );
        let c = fp.conflicts_with(&committed).unwrap();
        assert_eq!(c.relation, "brewery");
        assert!(c.read);
    }

    #[test]
    fn empty_committed_delta_never_conflicts() {
        let mut fp = TxFootprint::default();
        fp.add_read("beer");
        let committed = CommittedDelta::from_deltas(9, &[delta_of("beer", &[], &[])]);
        assert_eq!(fp.conflicts_with(&committed), None);
    }
}
