//! Error types for the relational substrate.

use std::fmt;

use crate::value::ValueType;

/// Convenience alias used throughout `tm-relational`.
pub type Result<T> = std::result::Result<T, RelationalError>;

/// Errors raised by schema validation and relation manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A relation name was declared twice in a database schema.
    DuplicateRelation(String),
    /// An attribute name was declared twice in a relation schema.
    DuplicateAttribute {
        /// Relation in which the duplicate occurred.
        relation: String,
        /// The repeated attribute name.
        attribute: String,
    },
    /// A referenced relation does not exist in the schema.
    UnknownRelation(String),
    /// A referenced attribute does not exist in a relation schema.
    UnknownAttribute {
        /// Relation that was searched.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        /// Relation the tuple was destined for.
        relation: String,
        /// Arity required by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A tuple value does not conform to the attribute domain.
    TypeMismatch {
        /// Relation the tuple was destined for.
        relation: String,
        /// Zero-based attribute position.
        position: usize,
        /// Domain required by the schema.
        expected: ValueType,
        /// What the tuple contained.
        actual: String,
    },
    /// A user relation name uses the reserved auxiliary-relation syntax.
    ReservedName(String),
    /// Two relation states with different schemas were combined.
    SchemaMismatch {
        /// Schema description of the left operand.
        left: String,
        /// Schema description of the right operand.
        right: String,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is declared more than once")
            }
            RelationalError::DuplicateAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "attribute `{attribute}` is declared more than once in relation `{relation}`"
            ),
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            RelationalError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "tuple arity {actual} does not match schema of `{relation}` (arity {expected})"
            ),
            RelationalError::TypeMismatch {
                relation,
                position,
                expected,
                actual,
            } => write!(
                f,
                "value {actual} at position {position} of a tuple for `{relation}` \
                 is not in domain {expected}"
            ),
            RelationalError::ReservedName(name) => write!(
                f,
                "relation name `{name}` uses the reserved auxiliary-relation marker `@`"
            ),
            RelationalError::SchemaMismatch { left, right } => {
                write!(f, "incompatible relation schemas: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationalError::ArityMismatch {
            relation: "beer".into(),
            expected: 4,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("beer"));
        assert!(msg.contains('4'));
        assert!(msg.contains('3'));

        let e = RelationalError::TypeMismatch {
            relation: "beer".into(),
            position: 3,
            expected: ValueType::Int,
            actual: "\"stout\"".into(),
        };
        assert!(e.to_string().contains("stout"));
    }
}
