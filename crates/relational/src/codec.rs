//! Binary serialization of relational data.
//!
//! The durability subsystem (`tm-durable`) persists tuples in WAL frames
//! and checkpoint snapshots; this module is the codec it builds on. The
//! format is a simple little-endian tag-length-value encoding:
//!
//! * integers are fixed-width little-endian (`u32`/`u64`/`i64`),
//! * strings are a `u32` byte length followed by UTF-8 bytes,
//! * values are a one-byte tag (`0` Null, `1` Int, `2` Double, `3` Str,
//!   `4` Bool) followed by the payload,
//! * tuples are a `u32` arity followed by that many values,
//! * tuple lists are a `u32` count followed by that many tuples.
//!
//! Doubles are encoded as their IEEE-754 bit pattern and decoded through
//! [`Value::double`], which re-canonicalizes NaN and negative zero — so a
//! decoded value always satisfies the same `Eq`/`Hash` invariants as a
//! constructed one, even when the input bytes were corrupted.
//!
//! Decoding never panics: every malformed input — short buffer, unknown
//! tag, invalid UTF-8, a length that overruns the buffer — is reported as
//! a [`CodecError`] carrying the byte offset where decoding failed.

use std::fmt;

use crate::tuple::Tuple;
use crate::value::Value;

/// A decoding failure, with the byte offset at which it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// Offset at which more bytes were needed.
        offset: usize,
        /// Bytes that were needed at that offset.
        needed: usize,
    },
    /// An unknown value tag byte.
    InvalidTag {
        /// Offset of the tag byte.
        offset: usize,
        /// The unrecognized tag.
        tag: u8,
    },
    /// A string payload was not valid UTF-8.
    InvalidUtf8 {
        /// Offset of the string payload.
        offset: usize,
    },
    /// A boolean payload byte was neither 0 nor 1.
    InvalidBool {
        /// Offset of the payload byte.
        offset: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A declared length exceeds the remaining buffer — corrupt input
    /// rather than a short read, reported before any allocation is sized
    /// by it.
    LengthOverrun {
        /// Offset of the length field.
        offset: usize,
        /// The declared length.
        declared: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Well-formed decoding finished but bytes were left over where the
    /// caller demanded the buffer be fully consumed.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { offset, needed } => {
                write!(f, "unexpected end of input at byte {offset} (needed {needed} more)")
            }
            CodecError::InvalidTag { offset, tag } => {
                write!(f, "invalid value tag {tag:#04x} at byte {offset}")
            }
            CodecError::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 in string at byte {offset}")
            }
            CodecError::InvalidBool { offset, byte } => {
                write!(f, "invalid boolean byte {byte:#04x} at byte {offset}")
            }
            CodecError::LengthOverrun {
                offset,
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} at byte {offset} exceeds the {remaining} remaining bytes"
            ),
            CodecError::TrailingBytes { offset, count } => {
                write!(f, "{count} trailing byte(s) after decoded value at byte {offset}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Codec result alias.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Append a `u32` in little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append one encoded [`Value`].
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            put_u64(out, d.to_bits());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
    }
}

/// Append one encoded [`Tuple`] (arity then values).
pub fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, t.values().len() as u32);
    for v in t.values() {
        put_value(out, v);
    }
}

/// Append an encoded tuple list (count then tuples). The caller provides
/// the tuples in a deterministic order when byte-stable output matters.
pub fn put_tuples<'a>(out: &mut Vec<u8>, tuples: impl ExactSizeIterator<Item = &'a Tuple>) {
    put_u32(out, tuples.len() as u32);
    for t in tuples {
        put_tuple(out, t);
    }
}

/// A bounds-checked cursor over an encoded buffer. All reads advance the
/// cursor; all failures carry the offset at which they occurred.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Open a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current offset into the buffer.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the buffer is fully consumed.
    pub fn expect_end(&self) -> CodecResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                offset: self.pos,
                count: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a declared element count, rejecting counts that could not
    /// possibly fit in the remaining bytes (each element occupies at least
    /// `min_elem_size` bytes). This bounds allocations on corrupt input.
    pub fn count(&mut self, min_elem_size: usize) -> CodecResult<usize> {
        let offset = self.pos;
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(CodecError::LengthOverrun {
                offset,
                declared: n as u64,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let offset = self.pos;
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::LengthOverrun {
                offset,
                declared: len as u64,
                remaining: self.remaining(),
            });
        }
        let payload_offset = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::InvalidUtf8 {
                offset: payload_offset,
            })
    }

    /// Read one encoded [`Value`].
    pub fn value(&mut self) -> CodecResult<Value> {
        let offset = self.pos;
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => Ok(Value::Int(self.i64()?)),
            // Decode through the canonicalizing constructor: a corrupted
            // bit pattern must not smuggle a non-canonical NaN or -0.0
            // past the Eq/Hash invariants.
            TAG_DOUBLE => Ok(Value::double(f64::from_bits(self.u64()?))),
            TAG_STR => Ok(Value::Str(self.str()?)),
            TAG_BOOL => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                byte => Err(CodecError::InvalidBool {
                    offset: offset + 1,
                    byte,
                }),
            },
            tag => Err(CodecError::InvalidTag { offset, tag }),
        }
    }

    /// Read one encoded [`Tuple`].
    pub fn tuple(&mut self) -> CodecResult<Tuple> {
        let arity = self.count(1)?;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Tuple::from_values(values))
    }

    /// Read an encoded tuple list.
    pub fn tuples(&mut self) -> CodecResult<Vec<Tuple>> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.tuple()?);
        }
        Ok(out)
    }
}

/// Encode a single value to a fresh buffer (round-trip convenience).
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    put_value(&mut out, v);
    out
}

/// Decode a single value, requiring the whole buffer to be consumed.
pub fn decode_value(buf: &[u8]) -> CodecResult<Value> {
    let mut r = ByteReader::new(buf);
    let v = r.value()?;
    r.expect_end()?;
    Ok(v)
}

/// Encode a single tuple to a fresh buffer.
pub fn encode_tuple(t: &Tuple) -> Vec<u8> {
    let mut out = Vec::new();
    put_tuple(&mut out, t);
    out
}

/// Decode a single tuple, requiring the whole buffer to be consumed.
pub fn decode_tuple(buf: &[u8]) -> CodecResult<Tuple> {
    let mut r = ByteReader::new(buf);
    let t = r.tuple()?;
    r.expect_end()?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let bytes = encode_value(&v);
        assert_eq!(decode_value(&bytes).unwrap(), v, "{v:?}");
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Int(0));
        roundtrip_value(Value::Int(i64::MIN));
        roundtrip_value(Value::Int(-17));
        roundtrip_value(Value::double(0.0));
        roundtrip_value(Value::double(-0.0)); // canonicalized on both sides
        roundtrip_value(Value::double(f64::INFINITY));
        roundtrip_value(Value::double(f64::NEG_INFINITY));
        roundtrip_value(Value::double(f64::NAN));
        roundtrip_value(Value::str(""));
        roundtrip_value(Value::str("münchner weißbier"));
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
    }

    #[test]
    fn tuple_roundtrips() {
        for t in [
            Tuple::from_values(vec![]),
            Tuple::of((1, "two", 3.0_f64)),
            Tuple::from_values(vec![Value::Null, Value::Bool(false)]),
        ] {
            let bytes = encode_tuple(&t);
            assert_eq!(decode_tuple(&bytes).unwrap(), t);
        }
    }

    #[test]
    fn corrupt_inputs_error_without_panicking() {
        // Truncations of a valid encoding.
        let bytes = encode_tuple(&Tuple::of((42, "beer", 1.5_f64)));
        for cut in 0..bytes.len() {
            assert!(decode_tuple(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Unknown tag.
        assert!(matches!(
            decode_value(&[9]),
            Err(CodecError::InvalidTag { tag: 9, .. })
        ));
        // Bad bool payload.
        assert!(matches!(
            decode_value(&[TAG_BOOL, 7]),
            Err(CodecError::InvalidBool { byte: 7, .. })
        ));
        // String length overrunning the buffer must not allocate 4 GiB.
        let mut huge = vec![TAG_STR];
        put_u32(&mut huge, u32::MAX);
        assert!(matches!(
            decode_value(&huge),
            Err(CodecError::LengthOverrun { .. })
        ));
        // Invalid UTF-8 payload.
        let mut bad = vec![TAG_STR];
        put_u32(&mut bad, 2);
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            decode_value(&bad),
            Err(CodecError::InvalidUtf8 { .. })
        ));
        // Trailing garbage is rejected by the strict decoders.
        let mut extra = encode_value(&Value::Int(1));
        extra.push(0);
        assert!(matches!(
            decode_value(&extra),
            Err(CodecError::TrailingBytes { count: 1, .. })
        ));
    }

    #[test]
    fn corrupt_arity_is_bounded() {
        // A tuple claiming 2^32-1 values in a 5-byte buffer must be
        // rejected by the count guard, not attempted.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        buf.push(TAG_NULL);
        assert!(matches!(
            decode_tuple(&buf),
            Err(CodecError::LengthOverrun { .. })
        ));
    }
}
