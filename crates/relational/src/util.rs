//! Small utilities shared across the workspace.
//!
//! The main export is a fast, non-cryptographic hasher used for tuple sets.
//! Tuple hashing sits on the hot path of every set-semantics operator
//! (union, difference, join build sides), and the default `SipHash 1-3` is
//! measurably slower for short keys. The offline dependency set does not
//! include `rustc-hash`, so we vendor the ~30-line FxHash core here (the
//! algorithm is public domain; see the `rustc-hash` crate for provenance).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic, DoS-*unsafe* hasher for in-process hash maps.
///
/// Do not use for anything exposed to untrusted input where collision
/// attacks matter; every use in this workspace hashes data the process
/// itself generated.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut bytes = bytes;
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Finalize a 64-bit hash by spreading entropy into the low bits
/// (xor-shift-multiply, the SplitMix64 finalizer). [`FxHasher`] mixes only
/// upward — the low `b` bits of its state depend only on the low `b` bits
/// of the inputs — so hashing values whose low bits are constant (e.g. the
/// IEEE-754 bit patterns of small integers, which have dozens of trailing
/// mantissa zeros) yields hashes that collide in every power-of-two bucket
/// index. Precomputed keys that are themselves stored in a hash table
/// (join-key hashes) must pass through this finalizer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a sequence of join-key values, consistently with
/// [`Value::compare`](crate::Value::compare): compare-equal key sequences
/// always produce equal hashes (via
/// [`Value::hash_for_join`](crate::Value::hash_for_join)), and the result
/// is [`mix64`]-finalized so it can itself be stored in a hash table.
/// This is the one authoritative implementation of the join-key hash —
/// `tm-algebra`'s hash joins and `tm-calculus`'s quantifier indexes both
/// build on it. Candidates sharing a hash must still be verified with
/// `Value::compare` (compare-equality is not transitive; see
/// `hash_for_join`).
pub fn hash_join_key<'a>(values: impl IntoIterator<Item = &'a crate::Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash_for_join(&mut h);
    }
    mix64(std::hash::Hasher::finish(&h))
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Create an empty [`FxHashMap`] with space for `cap` entries.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Create an empty [`FxHashSet`] with space for `cap` entries.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&vec![1, 2, 3]), hash_of(&vec![1, 2, 3]));
    }

    #[test]
    fn different_values_hash_differently() {
        // Not guaranteed in general, but these simple cases must not collide
        // for the hasher to be useful at all.
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i64> = fx_map_with_capacity(4);
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));

        let mut s: FxHashSet<i64> = fx_set_with_capacity(4);
        s.insert(10);
        assert!(s.contains(&10));
        assert!(!s.contains(&11));
    }

    #[test]
    fn byte_tails_are_hashed() {
        // Regression guard: 9-byte input exercises the 8-byte chunk plus the
        // 1-byte tail; 13 bytes exercises chunk + u32 + tail.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_of(&a), hash_of(&b));
        let c: &[u8] = &[0; 13];
        let d: &[u8] = &[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        assert_ne!(hash_of(&c), hash_of(&d));
    }
}
