//! Reserved names for the auxiliary relations of Section 4.1.
//!
//! > "The auxiliary relations are calculated from the base relations
//! > automatically by the database management system for specific integrity
//! > control purposes. An important type of auxiliary relation is the
//! > pre-transaction state of a relation, necessary for the specification of
//! > transition constraints."
//!
//! Three auxiliary relations exist per base relation `R`:
//!
//! * `R@pre` — the pre-transaction state `R` had at transaction begin
//!   (drives transition constraints),
//! * `R@ins` — the *net* set of tuples inserted so far in the running
//!   transaction (differential relation, cf. §5.2.1 and refs \[18, 5, 7\]),
//! * `R@del` — the net set of tuples deleted so far.
//!
//! The `@` marker cannot appear in user relation names
//! ([`crate::schema::DatabaseSchema::add_relation`] rejects it), so
//! auxiliary names can never collide with base relations.

/// Marker separating a base relation name from an auxiliary suffix.
pub const AUX_MARKER: char = '@';

/// The kind of auxiliary relation derived from a base relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuxKind {
    /// Pre-transaction state (`R@pre`).
    Pre,
    /// Net inserted tuples in the running transaction (`R@ins`).
    Ins,
    /// Net deleted tuples in the running transaction (`R@del`).
    Del,
}

impl AuxKind {
    /// The textual suffix of this kind.
    pub fn suffix(self) -> &'static str {
        match self {
            AuxKind::Pre => "pre",
            AuxKind::Ins => "ins",
            AuxKind::Del => "del",
        }
    }

    /// All kinds, for iteration.
    pub fn all() -> [AuxKind; 3] {
        [AuxKind::Pre, AuxKind::Ins, AuxKind::Del]
    }
}

/// Auxiliary name for the pre-transaction state of `base`.
pub fn pre_name(base: &str) -> String {
    format!("{base}{AUX_MARKER}pre")
}

/// Auxiliary name for the inserted-differential of `base`.
pub fn ins_name(base: &str) -> String {
    format!("{base}{AUX_MARKER}ins")
}

/// Auxiliary name for the deleted-differential of `base`.
pub fn del_name(base: &str) -> String {
    format!("{base}{AUX_MARKER}del")
}

/// Auxiliary name of the given kind for `base`.
pub fn aux_name(base: &str, kind: AuxKind) -> String {
    format!("{base}{AUX_MARKER}{}", kind.suffix())
}

/// Whether `name` is an auxiliary relation name.
pub fn is_auxiliary(name: &str) -> bool {
    name.contains(AUX_MARKER)
}

/// Decompose an auxiliary name into `(base, kind)`; `None` when `name` is
/// not a well-formed auxiliary name.
pub fn parse_auxiliary(name: &str) -> Option<(&str, AuxKind)> {
    let (base, suffix) = name.rsplit_once(AUX_MARKER)?;
    if base.is_empty() || base.contains(AUX_MARKER) {
        return None;
    }
    let kind = match suffix {
        "pre" => AuxKind::Pre,
        "ins" => AuxKind::Ins,
        "del" => AuxKind::Del,
        _ => return None,
    };
    Some((base, kind))
}

/// The base relation a (possibly auxiliary) name refers to.
pub fn base_of(name: &str) -> &str {
    match parse_auxiliary(name) {
        Some((base, _)) => base,
        None => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!(
            parse_auxiliary(&pre_name("beer")),
            Some(("beer", AuxKind::Pre))
        );
        assert_eq!(
            parse_auxiliary(&ins_name("beer")),
            Some(("beer", AuxKind::Ins))
        );
        assert_eq!(
            parse_auxiliary(&del_name("beer")),
            Some(("beer", AuxKind::Del))
        );
        for kind in AuxKind::all() {
            assert_eq!(parse_auxiliary(&aux_name("r", kind)), Some(("r", kind)));
        }
    }

    #[test]
    fn detection() {
        assert!(is_auxiliary("beer@pre"));
        assert!(!is_auxiliary("beer"));
        assert_eq!(parse_auxiliary("beer"), None);
        assert_eq!(parse_auxiliary("beer@wat"), None);
        assert_eq!(parse_auxiliary("@pre"), None);
        assert_eq!(parse_auxiliary("a@b@pre"), None);
    }

    #[test]
    fn base_extraction() {
        assert_eq!(base_of("beer@pre"), "beer");
        assert_eq!(base_of("beer"), "beer");
    }
}
