//! Database states and transitions (Definitions 2.2 and 2.3).

use std::fmt;
use std::sync::Arc;

use crate::error::{RelationalError, Result};
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use crate::tuple::Tuple;
use crate::util::FxHashMap;

/// A database state `D` of schema `𝒟`: one relation state per relation
/// schema, plus the logical time `t` of Definition 2.3.
///
/// Database states are value-like: cloning produces an independent state.
/// With [`Relation`]'s copy-on-write tuple storage a clone is
/// O(#relations) reference-count bumps — no tuple set is copied until one
/// side mutates it, and then only that relation's set. Holders of clones
/// (engine snapshots, transition reporting, tests) therefore cost the
/// writer at most one set copy per relation per outstanding clone, while
/// the transaction executor in `tm-algebra` mutates the live state in
/// place and restores it from its change records on abort — O(Δ), never a
/// database copy.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Arc<DatabaseSchema>,
    relations: FxHashMap<String, Relation>,
    logical_time: u64,
}

impl Database {
    /// Create an empty database state (all relations empty, time 0).
    pub fn new(schema: Arc<DatabaseSchema>) -> Self {
        let mut relations = FxHashMap::default();
        for r in schema.relations() {
            relations.insert(r.name().to_owned(), Relation::empty(Arc::new(r.clone())));
        }
        Database {
            schema,
            relations,
            logical_time: 0,
        }
    }

    /// The database schema.
    pub fn schema(&self) -> &Arc<DatabaseSchema> {
        &self.schema
    }

    /// The logical time `t` of this state.
    pub fn logical_time(&self) -> u64 {
        self.logical_time
    }

    /// Advance the logical time by one step (called on commit *and* abort:
    /// Definition 2.5 installs either `[D^{t,n}]` or `D^t` as `D^{t+1}`).
    pub fn tick(&mut self) {
        self.logical_time += 1;
    }

    /// Restore the logical time to a recorded value. This exists for
    /// crash recovery (`tm-durable` checkpoints record the time alongside
    /// the state); live execution only ever moves the clock via
    /// [`Database::tick`].
    pub fn set_logical_time(&mut self, t: u64) {
        self.logical_time = t;
    }

    /// Borrow a relation state by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_owned()))
    }

    /// Mutably borrow a relation state by name.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_owned()))
    }

    /// Replace a relation state wholesale (assignment to a base relation).
    pub fn set_relation(&mut self, name: &str, rel: Relation) -> Result<()> {
        if !self.relations.contains_key(name) {
            return Err(RelationalError::UnknownRelation(name.to_owned()));
        }
        self.relations.insert(name.to_owned(), rel);
        Ok(())
    }

    /// Insert a tuple into a base relation; returns whether it was new.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        self.relation_mut(name)?.insert(tuple)
    }

    /// Remove a tuple from a base relation; returns whether it was present.
    pub fn delete(&mut self, name: &str, tuple: &Tuple) -> Result<bool> {
        Ok(self.relation_mut(name)?.remove(tuple))
    }

    /// Bulk insert into a base relation; returns how many tuples were new.
    /// One name lookup and at most one COW unshare for the whole batch
    /// (see [`Relation::extend`]) — per-tuple [`Database::insert`] pays
    /// the lookup, the share check, and schema validation on every call.
    pub fn extend(&mut self, name: &str, tuples: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        self.relation_mut(name)?.extend(tuples)
    }

    /// [`Database::extend`], returning the actually-inserted tuples (see
    /// [`Relation::extend_returning`]) — the undo-precise bulk-load path.
    pub fn extend_returning(
        &mut self,
        name: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Vec<Tuple>> {
        self.relation_mut(name)?.extend_returning(tuples)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Iterate over `(name, relation)` pairs in schema declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.schema
            .relations()
            .iter()
            .map(move |rs| (rs.name(), &self.relations[rs.name()]))
    }

    /// Produce a state whose relation storage shares nothing with `self` —
    /// every tuple set is physically copied (tuple payloads still share
    /// their `Arc<[Value]>`, as tuple handles always do). This is the
    /// pre-COW cost of one `Database::clone`; the `txn_throughput` bench
    /// uses it as the retained `clone_snapshot` baseline, and tests use it
    /// to build reference states that COW aliasing bugs cannot reach.
    pub fn unshared_copy(&self) -> Database {
        Database {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(name, rel)| (name.clone(), rel.unshared_copy()))
                .collect(),
            logical_time: self.logical_time,
        }
    }

    /// State equality disregarding logical time — two states are the same
    /// point of the database universe when all relation states agree.
    pub fn state_eq(&self, other: &Database) -> bool {
        if self.schema != other.schema {
            return false;
        }
        self.iter()
            .all(|(name, rel)| other.relations.get(name).is_some_and(|o| o == rel))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "database @ t={}", self.logical_time)?;
        for (_, rel) in self.iter() {
            write!(f, "{rel}")?;
        }
        Ok(())
    }
}

/// A single-step database transition `(D^t, D^{t+1})` (Definition 2.3).
///
/// Transition constraints (Definition 3.3) are evaluated over this pair;
/// the `before` state also backs the `R@pre` auxiliary relations.
#[derive(Debug, Clone)]
pub struct Transition {
    /// The pre-transaction state `D^{t1}`.
    pub before: Database,
    /// The post-transaction state `D^{t2}`, `t1 < t2`.
    pub after: Database,
}

impl Transition {
    /// Create a transition, asserting the logical-time ordering of
    /// Definition 2.3 (`t1 < t2`).
    pub fn new(before: Database, after: Database) -> Self {
        debug_assert!(
            before.logical_time() < after.logical_time(),
            "transition requires t1 < t2"
        );
        Transition { before, after }
    }

    /// Whether this is an identity transition (aborted transaction).
    pub fn is_identity(&self) -> bool {
        self.before.state_eq(&self.after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::beer_schema;

    fn db() -> Database {
        Database::new(beer_schema().into_shared())
    }

    fn beer_tuple(name: &str) -> Tuple {
        Tuple::of((name, "pils", "heineken", 5.0_f64))
    }

    #[test]
    fn new_database_is_empty() {
        let d = db();
        assert_eq!(d.logical_time(), 0);
        assert_eq!(d.total_tuples(), 0);
        assert!(d.relation("beer").unwrap().is_empty());
        assert!(d.relation("nope").is_err());
    }

    #[test]
    fn insert_delete_round_trip() {
        let mut d = db();
        assert!(d.insert("beer", beer_tuple("a")).unwrap());
        assert!(!d.insert("beer", beer_tuple("a")).unwrap());
        assert_eq!(d.total_tuples(), 1);
        assert!(d.delete("beer", &beer_tuple("a")).unwrap());
        assert!(!d.delete("beer", &beer_tuple("a")).unwrap());
    }

    #[test]
    fn extend_bulk_loads() {
        let mut d = db();
        let snapshot = d.clone();
        let n = d
            .extend(
                "beer",
                vec![beer_tuple("a"), beer_tuple("b"), beer_tuple("a")],
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(d.relation("beer").unwrap().len(), 2);
        assert_eq!(snapshot.relation("beer").unwrap().len(), 0);
        assert!(d.extend("nope", vec![beer_tuple("c")]).is_err());
    }

    #[test]
    fn clone_isolation() {
        let mut d = db();
        d.insert("beer", beer_tuple("a")).unwrap();
        let snapshot = d.clone();
        d.insert("beer", beer_tuple("b")).unwrap();
        assert_eq!(snapshot.relation("beer").unwrap().len(), 1);
        assert_eq!(d.relation("beer").unwrap().len(), 2);
    }

    #[test]
    fn state_eq_ignores_time() {
        let mut a = db();
        let mut b = db();
        a.insert("beer", beer_tuple("a")).unwrap();
        b.insert("beer", beer_tuple("a")).unwrap();
        b.tick();
        assert!(a.state_eq(&b));
        b.insert("beer", beer_tuple("b")).unwrap();
        assert!(!a.state_eq(&b));
    }

    #[test]
    fn transition_identity() {
        let before = db();
        let mut after = before.clone();
        after.tick();
        let t = Transition::new(before, after);
        assert!(t.is_identity());
    }

    #[test]
    fn clone_shares_per_relation_cow_storage() {
        let mut d = db();
        d.insert("beer", beer_tuple("a")).unwrap();
        let snapshot = d.clone();
        for (name, rel) in d.iter() {
            assert!(rel.shares_storage(snapshot.relation(name).unwrap()));
        }
        // Touching one relation unshares only that relation.
        d.insert("beer", beer_tuple("b")).unwrap();
        assert!(!d
            .relation("beer")
            .unwrap()
            .shares_storage(snapshot.relation("beer").unwrap()));
        assert!(d
            .relation("brewery")
            .unwrap()
            .shares_storage(snapshot.relation("brewery").unwrap()));
    }

    #[test]
    fn unshared_copy_shares_nothing() {
        let mut d = db();
        d.insert("beer", beer_tuple("a")).unwrap();
        let copy = d.unshared_copy();
        assert!(d.state_eq(&copy));
        for (name, rel) in d.iter() {
            assert!(!rel.shares_storage(copy.relation(name).unwrap()));
        }
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let d = db();
        let names: Vec<&str> = d.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["beer", "brewery"]);
    }
}
