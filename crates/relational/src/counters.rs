//! Process-wide storage counters — observability hooks for the service
//! metrics sink.
//!
//! The copy-on-write tuple storage ([`crate::Relation`]) makes snapshots
//! and clones free until a write actually unshares a relation's tuple set.
//! How often that one full set copy happens under a real workload is
//! exactly the kind of behaviour that is invisible from outcomes alone, so
//! every genuine unshare (an [`std::sync::Arc::make_mut`] that found the
//! storage shared and had to copy) bumps a global relaxed atomic counter.
//!
//! The counter is monotonic and process-wide; consumers (the `tm-server`
//! metrics sink) sample it and report deltas per interval. No-op mutations
//! that the COW layer elides (duplicate inserts, absent removes, all-true
//! retains) never count — they never copy.

use std::sync::atomic::{AtomicU64, Ordering};

static UNSHARES: AtomicU64 = AtomicU64::new(0);

/// Record one genuine unshare (internal hook; called by the relation
/// storage just before a shared tuple set is copied).
#[inline]
pub(crate) fn note_unshare() {
    UNSHARES.fetch_add(1, Ordering::Relaxed);
}

/// Total number of copy-on-write unshares (full tuple-set copies forced by
/// writing to shared storage) since process start. Monotonic; sample twice
/// and subtract for a per-interval rate.
pub fn unshare_count() -> u64 {
    UNSHARES.load(Ordering::Relaxed)
}
