//! Multiset (bag) relations — the SQL-oriented extension the paper's
//! conclusions point to ("An extension to a multi-set relational algebra is
//! presented in \[8\]. As a multi-set algebra is closely connected to SQL-like
//! environments, this can be an important factor in the usability of the
//! technique in practice.").
//!
//! A [`Multiset`] stores each distinct tuple with a positive multiplicity.
//! The `MLT` counting function mentioned in Algorithm 5.7's symbol legend
//! (`Γ2 ∈ {CNT, MLT}`) is the multiplicity lookup defined here.

use std::fmt;
use std::sync::Arc;

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::util::FxHashMap;

/// A bag of tuples: each distinct tuple carries a multiplicity ≥ 1.
///
/// Like [`Relation`], the multiplicity map is copy-on-write behind an
/// [`Arc`]: cloning a bag is a reference-count bump, and the first
/// mutation of a shared bag pays one map copy. Removals of absent tuples
/// never unshare.
#[derive(Debug, Clone)]
pub struct Multiset {
    schema: Arc<RelationSchema>,
    counts: Arc<FxHashMap<Tuple, u64>>,
    total: u64,
}

impl Multiset {
    /// Create an empty bag of the given schema.
    pub fn empty(schema: Arc<RelationSchema>) -> Self {
        Multiset {
            schema,
            counts: Arc::new(FxHashMap::default()),
            total: 0,
        }
    }

    /// Build a bag from tuples (duplicates accumulate multiplicity).
    pub fn from_tuples(
        schema: Arc<RelationSchema>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut m = Multiset::empty(schema);
        for t in tuples {
            m.insert(t)?;
        }
        Ok(m)
    }

    /// Lift a set relation into a bag (all multiplicities 1).
    pub fn from_relation(rel: &Relation) -> Self {
        let mut counts = FxHashMap::default();
        for t in rel.iter() {
            counts.insert(t.clone(), 1);
        }
        Multiset {
            schema: rel.schema().clone(),
            total: counts.len() as u64,
            counts: Arc::new(counts),
        }
    }

    /// The bag's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Total number of tuples counting multiplicity (`CNT` under bag
    /// semantics).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Number of *distinct* tuples.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The multiplicity of `tuple` — the paper's `MLT` function. Zero when
    /// absent.
    pub fn multiplicity(&self, tuple: &Tuple) -> u64 {
        self.counts.get(tuple).copied().unwrap_or(0)
    }

    /// Insert one occurrence of `tuple` after schema validation.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        self.insert_n(tuple, 1)
    }

    /// Insert `n` occurrences of `tuple` after schema validation.
    pub fn insert_n(&mut self, tuple: Tuple, n: u64) -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        self.schema.validate_tuple(&tuple)?;
        *Arc::make_mut(&mut self.counts).entry(tuple).or_insert(0) += n;
        self.total += n;
        Ok(())
    }

    /// Remove one occurrence; returns `true` if the tuple was present.
    /// Removing an absent tuple from a shared bag does not unshare it.
    pub fn remove_one(&mut self, tuple: &Tuple) -> bool {
        if !self.counts.contains_key(tuple) {
            return false;
        }
        let counts = Arc::make_mut(&mut self.counts);
        match counts.get_mut(tuple) {
            Some(c) if *c > 1 => *c -= 1,
            _ => {
                counts.remove(tuple);
            }
        }
        self.total -= 1;
        true
    }

    /// Remove all occurrences; returns the removed multiplicity. Removing
    /// an absent tuple from a shared bag does not unshare it.
    pub fn remove_all(&mut self, tuple: &Tuple) -> u64 {
        if !self.counts.contains_key(tuple) {
            return 0;
        }
        match Arc::make_mut(&mut self.counts).remove(tuple) {
            Some(c) => {
                self.total -= c;
                c
            }
            None => 0,
        }
    }

    /// Bag union: multiplicities add.
    pub fn union(&self, other: &Multiset) -> Multiset {
        if other.is_empty() {
            return self.clone(); // shares storage
        }
        let mut out = self.clone();
        let counts = Arc::make_mut(&mut out.counts);
        for (t, &c) in other.counts.iter() {
            *counts.entry(t.clone()).or_insert(0) += c;
        }
        out.total += other.total;
        out
    }

    /// Bag difference: multiplicities subtract, clamped at zero (monus).
    pub fn difference(&self, other: &Multiset) -> Multiset {
        if other.is_empty() {
            return self.clone(); // shares storage
        }
        let mut counts = FxHashMap::default();
        let mut total = 0;
        for (t, &c) in self.counts.iter() {
            let oc = other.multiplicity(t);
            if c > oc {
                counts.insert(t.clone(), c - oc);
                total += c - oc;
            }
        }
        Multiset {
            schema: self.schema.clone(),
            counts: Arc::new(counts),
            total,
        }
    }

    /// Bag intersection: pointwise minimum of multiplicities.
    pub fn intersect(&self, other: &Multiset) -> Multiset {
        let mut counts = FxHashMap::default();
        let mut total = 0;
        for (t, &c) in self.counts.iter() {
            let m = c.min(other.multiplicity(t));
            if m > 0 {
                counts.insert(t.clone(), m);
                total += m;
            }
        }
        Multiset {
            schema: self.schema.clone(),
            counts: Arc::new(counts),
            total,
        }
    }

    /// Collapse to set semantics (duplicate elimination).
    pub fn to_relation(&self) -> Relation {
        let mut rel = Relation::with_capacity(self.schema.clone(), self.counts.len());
        for t in self.counts.keys() {
            rel.insert_unchecked(t.clone());
        }
        rel
    }

    /// Iterate over `(tuple, multiplicity)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Iterate over every occurrence (tuples repeated per multiplicity).
    pub fn iter_occurrences(&self) -> impl Iterator<Item = &Tuple> {
        self.counts
            .iter()
            .flat_map(|(t, &c)| std::iter::repeat_n(t, c as usize))
    }

    /// Bag equality: same multiplicities for all tuples.
    pub fn bag_eq(&self, other: &Multiset) -> bool {
        self.total == other.total
            && (Arc::ptr_eq(&self.counts, &other.counts) || self.counts == other.counts)
    }

    /// Whether two bags share the same physical multiplicity map (COW
    /// aliasing probe, mirroring [`Relation::shares_storage`]).
    pub fn shares_storage(&self, other: &Multiset) -> bool {
        Arc::ptr_eq(&self.counts, &other.counts)
    }
}

impl fmt::Display for Multiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{} tuples, {} distinct]",
            self.schema,
            self.total,
            self.distinct_len()
        )?;
        let mut entries: Vec<(&Tuple, u64)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (t, c) in entries {
            writeln!(f, "  {t} x{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::ValueType;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::of("r", &[("a", ValueType::Int)]))
    }

    fn bag(vals: &[i64]) -> Multiset {
        Multiset::from_tuples(schema(), vals.iter().map(|&v| Tuple::of((v,)))).unwrap()
    }

    #[test]
    fn multiplicity_tracking() {
        let m = bag(&[1, 1, 2]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct_len(), 2);
        assert_eq!(m.multiplicity(&Tuple::of((1,))), 2);
        assert_eq!(m.multiplicity(&Tuple::of((2,))), 1);
        assert_eq!(m.multiplicity(&Tuple::of((9,))), 0);
    }

    #[test]
    fn remove_one_vs_all() {
        let mut m = bag(&[1, 1, 1]);
        assert!(m.remove_one(&Tuple::of((1,))));
        assert_eq!(m.multiplicity(&Tuple::of((1,))), 2);
        assert_eq!(m.remove_all(&Tuple::of((1,))), 2);
        assert!(m.is_empty());
        assert!(!m.remove_one(&Tuple::of((1,))));
    }

    #[test]
    fn bag_union_adds_multiplicities() {
        let a = bag(&[1, 2]);
        let b = bag(&[1, 1, 3]);
        let u = a.union(&b);
        assert_eq!(u.multiplicity(&Tuple::of((1,))), 3);
        assert_eq!(u.multiplicity(&Tuple::of((2,))), 1);
        assert_eq!(u.multiplicity(&Tuple::of((3,))), 1);
        assert_eq!(u.len(), 5);
    }

    #[test]
    fn bag_difference_is_monus() {
        let a = bag(&[1, 1, 1, 2]);
        let b = bag(&[1, 2, 2]);
        let d = a.difference(&b);
        assert_eq!(d.multiplicity(&Tuple::of((1,))), 2);
        assert_eq!(d.multiplicity(&Tuple::of((2,))), 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn bag_intersection_is_min() {
        let a = bag(&[1, 1, 2]);
        let b = bag(&[1, 1, 1]);
        let i = a.intersect(&b);
        assert_eq!(i.multiplicity(&Tuple::of((1,))), 2);
        assert_eq!(i.multiplicity(&Tuple::of((2,))), 0);
    }

    #[test]
    fn set_collapse_round_trip() {
        let m = bag(&[1, 1, 2, 3, 3, 3]);
        let r = m.to_relation();
        assert_eq!(r.len(), 3);
        let back = Multiset::from_relation(&r);
        assert_eq!(back.len(), 3);
        assert_eq!(back.multiplicity(&Tuple::of((3,))), 1);
    }

    #[test]
    fn insert_n_and_zero() {
        let mut m = Multiset::empty(schema());
        m.insert_n(Tuple::of((5,)), 4).unwrap();
        m.insert_n(Tuple::of((5,)), 0).unwrap();
        assert_eq!(m.multiplicity(&Tuple::of((5,))), 4);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn schema_still_validated() {
        let mut m = Multiset::empty(schema());
        assert!(m.insert(Tuple::of(("wrong",))).is_err());
    }

    #[test]
    fn bag_equality() {
        assert!(bag(&[1, 1, 2]).bag_eq(&bag(&[2, 1, 1])));
        assert!(!bag(&[1, 2]).bag_eq(&bag(&[1, 1, 2])));
    }

    #[test]
    fn clone_is_cow() {
        let mut a = bag(&[1, 1, 2]);
        let b = a.clone();
        assert!(a.shares_storage(&b));
        // Absent removals keep sharing; a real mutation unshares.
        assert!(!a.remove_one(&Tuple::of((9,))));
        assert_eq!(a.remove_all(&Tuple::of((9,))), 0);
        assert!(a.shares_storage(&b));
        a.insert(Tuple::of((1,))).unwrap();
        assert!(!a.shares_storage(&b));
        assert_eq!(b.multiplicity(&Tuple::of((1,))), 2);
        assert_eq!(a.multiplicity(&Tuple::of((1,))), 3);
    }

    #[test]
    fn union_difference_with_empty_share() {
        let a = bag(&[1, 2]);
        let empty = Multiset::empty(schema());
        assert!(a.union(&empty).shares_storage(&a));
        assert!(a.difference(&empty).shares_storage(&a));
    }
}
