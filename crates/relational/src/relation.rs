//! Relation states — sets of tuples (Definition 2.1).

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::error::Result;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::util::{fx_set_with_capacity, FxHashSet};
use crate::value::Value;

/// The one empty tuple set every freshly created empty relation points at.
/// Empty relations are created constantly (differentials, operator
/// outputs), so they share a single allocation until first mutation.
fn shared_empty() -> Arc<FxHashSet<Tuple>> {
    static EMPTY: OnceLock<Arc<FxHashSet<Tuple>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(FxHashSet::default())).clone()
}

/// [`Arc::make_mut`] with the observability hook of [`crate::counters`]:
/// when the storage is still shared, `make_mut` is about to pay the one
/// full set copy of the copy-on-write contract — record it. Private
/// storage passes straight through (a relaxed load is the only cost).
fn cow_mut(tuples: &mut Arc<FxHashSet<Tuple>>) -> &mut FxHashSet<Tuple> {
    if Arc::strong_count(tuples) > 1 {
        crate::counters::note_unshare();
    }
    Arc::make_mut(tuples)
}

/// A relation state `R`: the name of its schema plus a *set* of tuples in
/// `dom(R)` (Definition 2.1). Set semantics follow the paper; the bag
/// extension lives in [`crate::multiset`].
///
/// The schema is shared behind an [`Arc`] because many relation states of
/// the same schema coexist (committed state, pre-transaction snapshot,
/// differentials, intermediate results).
///
/// The tuple set is **copy-on-write**: it also lives behind an [`Arc`], so
/// cloning a relation — and hence cloning a whole [`crate::Database`] for
/// a snapshot, a transition report, or a pre-state reconstruction — is a
/// reference-count bump regardless of cardinality. The first genuine
/// mutation of a shared state unshares it with [`Arc::make_mut`] (one
/// full set copy, paid once per outstanding clone); mutations that would
/// not change the set (inserting a present tuple, removing an absent one)
/// are detected *before* unsharing and never copy anything. Relations no
/// clone-holder touches share storage forever — [`Relation::shares_storage`]
/// makes that observable for tests.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<RelationSchema>,
    tuples: Arc<FxHashSet<Tuple>>,
}

impl Relation {
    /// Create an empty relation state of the given schema.
    pub fn empty(schema: Arc<RelationSchema>) -> Self {
        Relation {
            schema,
            tuples: shared_empty(),
        }
    }

    /// Create an empty relation state with capacity for `cap` tuples.
    pub fn with_capacity(schema: Arc<RelationSchema>, cap: usize) -> Self {
        Relation {
            schema,
            tuples: Arc::new(fx_set_with_capacity(cap)),
        }
    }

    /// Create a relation from tuples, validating each against the schema.
    pub fn from_tuples(
        schema: Arc<RelationSchema>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The relation name (that of its schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples (set cardinality).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Set membership test against a borrowed value slice — identical to
    /// [`Relation::contains`] without materializing a [`Tuple`] (tuples
    /// hash and compare as their slices). Hot probe paths use this.
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.tuples.contains(row)
    }

    /// Insert a tuple after validating it against the schema. Returns
    /// `true` when the tuple was not already present.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.validate_tuple(&tuple)?;
        Ok(self.insert_inner(tuple))
    }

    /// Insert a tuple that is already known to satisfy the schema
    /// (operator-internal fast path; debug builds still assert validity).
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert!(self.schema.validate_tuple(&tuple).is_ok());
        self.insert_inner(tuple)
    }

    fn insert_inner(&mut self, tuple: Tuple) -> bool {
        match Arc::get_mut(&mut self.tuples) {
            // Uniquely owned: mutate in place, exactly the pre-COW cost.
            Some(set) => set.insert(tuple),
            // Shared: a duplicate insert must not pay the unsharing copy.
            None => {
                if self.tuples.contains(&tuple) {
                    false
                } else {
                    cow_mut(&mut self.tuples).insert(tuple)
                }
            }
        }
    }

    /// Bulk insert: validate and add every tuple, returning how many were
    /// new. Unlike a loop over [`Relation::insert`], a shared state is
    /// unshared (and its capacity grown) **once** for the whole batch, not
    /// re-checked per call — the path for initial loads and view
    /// materialization. Validation happens up front, so a batch with an
    /// invalid tuple changes nothing; a batch that would change nothing
    /// (empty, or every tuple already present) never unshares, keeping
    /// the no-op-mutations-never-copy invariant of the per-tuple path.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let batch: Vec<Tuple> = tuples.into_iter().collect();
        for t in &batch {
            self.schema.validate_tuple(t)?;
        }
        if batch.is_empty()
            || (Arc::get_mut(&mut self.tuples).is_none()
                && batch.iter().all(|t| self.tuples.contains(t)))
        {
            return Ok(0);
        }
        // One unshare for the whole batch (no-op when already private).
        let set = cow_mut(&mut self.tuples);
        set.reserve(batch.len());
        let mut added = 0;
        for t in batch {
            if set.insert(t) {
                added += 1;
            }
        }
        Ok(added)
    }

    /// [`Relation::extend`], returning the tuples that were actually new.
    /// Relations are sets: a batch may overlap existing contents, and a
    /// caller that must undo the bulk insert (e.g. a failed durability
    /// append) has to roll back exactly what was inserted — removing the
    /// whole input batch would delete pre-existing tuples. Pays one clone
    /// per *inserted* tuple; the plain [`Relation::extend`] stays
    /// clone-free for hot paths that never undo.
    pub fn extend_returning(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Vec<Tuple>> {
        let batch: Vec<Tuple> = tuples.into_iter().collect();
        for t in &batch {
            self.schema.validate_tuple(t)?;
        }
        if batch.is_empty()
            || (Arc::get_mut(&mut self.tuples).is_none()
                && batch.iter().all(|t| self.tuples.contains(t)))
        {
            return Ok(Vec::new());
        }
        let set = cow_mut(&mut self.tuples);
        set.reserve(batch.len());
        let mut added = Vec::new();
        for t in batch {
            if set.insert(t.clone()) {
                added.push(t);
            }
        }
        Ok(added)
    }

    /// Remove a tuple; returns `true` when it was present. Removing an
    /// absent tuple from a shared state does not unshare it.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        match Arc::get_mut(&mut self.tuples) {
            Some(set) => set.remove(tuple),
            None => {
                if self.tuples.contains(tuple) {
                    cow_mut(&mut self.tuples).remove(tuple)
                } else {
                    false
                }
            }
        }
    }

    /// Remove all tuples. A shared state is simply repointed at the shared
    /// empty set — the previous contents are never copied just to be
    /// discarded.
    pub fn clear(&mut self) {
        if self.tuples.is_empty() {
            return;
        }
        match Arc::get_mut(&mut self.tuples) {
            Some(set) => set.clear(), // keep the allocation when private
            None => self.tuples = shared_empty(),
        }
    }

    /// Iterate over the tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples sorted by the total tuple order — deterministic output for
    /// display, goldens and reports.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Set equality with another relation state of a union-compatible
    /// schema.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema.union_compatible(other.schema())
            && (Arc::ptr_eq(&self.tuples, &other.tuples) || self.tuples == other.tuples)
    }

    /// Retain tuples satisfying a predicate (used by delete). When the
    /// state is shared and nothing would be removed, it stays shared.
    pub fn retain(&mut self, mut f: impl FnMut(&Tuple) -> bool) {
        if let Some(set) = Arc::get_mut(&mut self.tuples) {
            set.retain(f);
            return;
        }
        // Shared: find the doomed tuples first (cheap Arc-handle clones),
        // unshare only when there is something to remove. The predicate
        // still runs exactly once per tuple.
        let doomed: Vec<Tuple> = self.tuples.iter().filter(|t| !f(t)).cloned().collect();
        if doomed.is_empty() {
            return;
        }
        let set = cow_mut(&mut self.tuples);
        for t in &doomed {
            set.remove(t);
        }
    }

    /// Replace this state with `other`'s — tuples **and** schema. The
    /// schemas must be union-compatible: adopting the source schema keeps
    /// the invariant that a relation's tuples validated against the schema
    /// it carries (keeping `self`'s schema would silently pair it with
    /// tuples that never validated against it).
    ///
    /// # Panics
    /// Debug builds panic when the schemas are not union-compatible.
    pub fn assign_from(&mut self, other: &Relation) {
        debug_assert!(
            self.schema.union_compatible(other.schema()),
            "assign_from between incompatible schemas `{}` and `{}`",
            self.schema,
            other.schema()
        );
        self.schema = other.schema.clone();
        // COW: assignment shares the source's storage (refcount bump).
        self.tuples = other.tuples.clone();
    }

    /// Consume the relation and return its tuple set (copies only when the
    /// storage is still shared with another state).
    pub fn into_tuples(self) -> FxHashSet<Tuple> {
        Arc::try_unwrap(self.tuples).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Borrow the underlying tuple set.
    pub fn tuples(&self) -> &FxHashSet<Tuple> {
        &self.tuples
    }

    /// Whether two relation states share the same physical tuple storage —
    /// the observable guarantee of the copy-on-write layout. True for a
    /// fresh clone (or any chain of clones none of which was mutated);
    /// false as soon as either side unshares. Sharing implies set
    /// equality, never the converse.
    pub fn shares_storage(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.tuples, &other.tuples)
    }

    /// Produce a private deep copy whose tuple set shares nothing with
    /// `self` (the tuples themselves still share their `Arc<[Value]>`
    /// payloads, as all tuple handles do). This is exactly the per-relation
    /// cost the executor paid on *every* transaction begin before the COW
    /// layout — retained as the honest baseline for the `txn_throughput`
    /// benchmark and for callers that genuinely need unaliased storage.
    pub fn unshared_copy(&self) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: Arc::new((*self.tuples).clone()),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && (Arc::ptr_eq(&self.tuples, &other.tuples) || self.tuples == other.tuples)
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.sorted_tuples() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::{Value, ValueType};

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::of(
            "r",
            &[("a", ValueType::Int), ("b", ValueType::Str)],
        ))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut r = Relation::empty(schema());
        assert!(r.insert(Tuple::of((1, "x"))).unwrap());
        assert!(!r.insert(Tuple::of((1, "x"))).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::of((1, "x"))));
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = Relation::empty(schema());
        assert!(r.insert(Tuple::of(("bad", "x"))).is_err());
        assert!(r.insert(Tuple::of((1,))).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn remove_and_retain() {
        let mut r = Relation::from_tuples(
            schema(),
            vec![
                Tuple::of((1, "x")),
                Tuple::of((2, "y")),
                Tuple::of((3, "z")),
            ],
        )
        .unwrap();
        assert!(r.remove(&Tuple::of((2, "y"))));
        assert!(!r.remove(&Tuple::of((2, "y"))));
        r.retain(|t| t.get(0) == Some(&Value::Int(1)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn sorted_tuples_is_deterministic() {
        let mut r = Relation::empty(schema());
        for i in (0..10).rev() {
            r.insert(Tuple::of((i, "t"))).unwrap();
        }
        let sorted = r.sorted_tuples();
        for w in sorted.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn set_equality_ignores_names() {
        let a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let other_schema = Arc::new(RelationSchema::of(
            "s",
            &[("c", ValueType::Int), ("d", ValueType::Str)],
        ));
        let b = Relation::from_tuples(other_schema, vec![Tuple::of((1, "x"))]).unwrap();
        assert!(a.set_eq(&b));
        assert_ne!(a, b); // strict equality compares schemas
    }

    #[test]
    fn assign_from_replaces_contents() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let b = Relation::from_tuples(schema(), vec![Tuple::of((2, "y"))]).unwrap();
        a.assign_from(&b);
        assert!(a.contains(&Tuple::of((2, "y"))));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn assign_from_adopts_source_schema() {
        // Union-compatible but differently named schema: the tuples only
        // validated against the *source* schema, so it must come along.
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let other = Arc::new(RelationSchema::of(
            "s",
            &[("c", ValueType::Int), ("d", ValueType::Str)],
        ));
        let b = Relation::from_tuples(other.clone(), vec![Tuple::of((2, "y"))]).unwrap();
        a.assign_from(&b);
        assert_eq!(a.schema(), &other);
        assert!(a.insert(Tuple::of((3, "z"))).is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "incompatible schemas")]
    fn assign_from_incompatible_schema_asserts() {
        let mut a = Relation::empty(schema());
        let b = Relation::empty(Arc::new(RelationSchema::of("q", &[("n", ValueType::Int)])));
        a.assign_from(&b);
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let b = a.clone();
        assert!(a.shares_storage(&b));
        a.insert(Tuple::of((2, "y"))).unwrap();
        assert!(!a.shares_storage(&b), "mutation must unshare");
        assert_eq!(b.len(), 1, "clone unaffected by mutation");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn noop_mutations_keep_sharing() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let b = a.clone();
        // Duplicate insert, absent remove, all-true retain: none unshares.
        assert!(!a.insert(Tuple::of((1, "x"))).unwrap());
        assert!(!a.remove(&Tuple::of((9, "z"))));
        a.retain(|_| true);
        assert!(a.shares_storage(&b));
    }

    #[test]
    fn shared_retain_removes_without_touching_clone() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x")), Tuple::of((2, "y"))])
            .unwrap();
        let b = a.clone();
        a.retain(|t| t.get(0) == Some(&Value::Int(1)));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert!(!a.shares_storage(&b));
    }

    #[test]
    fn clear_on_shared_state_repoints_not_copies() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let b = a.clone();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(b.len(), 1);
        // Two independently cleared/created empties share the one global
        // empty set.
        assert!(a.shares_storage(&Relation::empty(schema())));
    }

    #[test]
    fn empty_relations_share_the_global_empty() {
        let a = Relation::empty(schema());
        let b = Relation::empty(Arc::new(RelationSchema::of("q", &[("n", ValueType::Int)])));
        assert!(a.shares_storage(&b));
    }

    #[test]
    fn assign_from_shares_source_storage() {
        let mut a = Relation::empty(schema());
        let b = Relation::from_tuples(schema(), vec![Tuple::of((2, "y"))]).unwrap();
        a.assign_from(&b);
        assert!(a.shares_storage(&b));
    }

    #[test]
    fn unshared_copy_is_deep() {
        let a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let b = a.unshared_copy();
        assert_eq!(a, b);
        assert!(!a.shares_storage(&b));
    }

    #[test]
    fn extend_bulk_inserts_and_validates_up_front() {
        let mut a = Relation::empty(schema());
        let n = a
            .extend(vec![
                Tuple::of((1, "x")),
                Tuple::of((2, "y")),
                Tuple::of((1, "x")), // duplicate
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(a.len(), 2);
        // An invalid tuple anywhere in the batch rejects the whole batch.
        let err = a.extend(vec![Tuple::of((3, "z")), Tuple::of(("bad",))]);
        assert!(err.is_err());
        assert_eq!(a.len(), 2, "failed batch must change nothing");
    }

    #[test]
    fn extend_returning_reports_only_new_tuples() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let added = a
            .extend_returning(vec![Tuple::of((1, "x")), Tuple::of((2, "y"))])
            .unwrap();
        assert_eq!(added, vec![Tuple::of((2, "y"))]);
        assert_eq!(a.len(), 2);
        // An all-duplicate batch inserts (and returns) nothing.
        assert!(a
            .extend_returning(vec![Tuple::of((2, "y"))])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn extend_unshares_once_and_only_from_clones() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let snapshot = a.clone();
        a.extend((2..100).map(|i| Tuple::of((i, "t")))).unwrap();
        assert_eq!(a.len(), 99);
        assert_eq!(snapshot.len(), 1, "clone must not see the batch");
        assert!(!a.shares_storage(&snapshot));
        // A private state stays private (no observable resharing).
        let before = a.clone();
        a.extend(std::iter::empty()).unwrap();
        assert!(a.shares_storage(&before), "empty batch must not copy");
        // An all-duplicate batch on a shared state must not unshare —
        // the bulk counterpart of `insert`'s duplicate guard.
        let n = a
            .extend(vec![Tuple::of((2, "t")), Tuple::of((3, "t"))])
            .unwrap();
        assert_eq!(n, 0);
        assert!(
            a.shares_storage(&before),
            "no-op batch on a shared state must not copy"
        );
    }

    #[test]
    fn into_tuples_shared_and_unique() {
        let a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let b = a.clone();
        // Shared: consuming one copies, leaving the other intact.
        let set = a.into_tuples();
        assert_eq!(set.len(), 1);
        assert_eq!(b.len(), 1);
        // Unique: consuming moves without a copy (observable only as
        // correctness here).
        let set = b.into_tuples();
        assert_eq!(set.len(), 1);
    }
}
