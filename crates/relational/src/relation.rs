//! Relation states — sets of tuples (Definition 2.1).

use std::fmt;
use std::sync::Arc;

use crate::error::Result;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::util::{fx_set_with_capacity, FxHashSet};

/// A relation state `R`: the name of its schema plus a *set* of tuples in
/// `dom(R)` (Definition 2.1). Set semantics follow the paper; the bag
/// extension lives in [`crate::multiset`].
///
/// The schema is shared behind an [`Arc`] because many relation states of
/// the same schema coexist (committed state, pre-transaction snapshot,
/// differentials, intermediate results).
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<RelationSchema>,
    tuples: FxHashSet<Tuple>,
}

impl Relation {
    /// Create an empty relation state of the given schema.
    pub fn empty(schema: Arc<RelationSchema>) -> Self {
        Relation {
            schema,
            tuples: FxHashSet::default(),
        }
    }

    /// Create an empty relation state with capacity for `cap` tuples.
    pub fn with_capacity(schema: Arc<RelationSchema>, cap: usize) -> Self {
        Relation {
            schema,
            tuples: fx_set_with_capacity(cap),
        }
    }

    /// Create a relation from tuples, validating each against the schema.
    pub fn from_tuples(
        schema: Arc<RelationSchema>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The relation name (that of its schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples (set cardinality).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Insert a tuple after validating it against the schema. Returns
    /// `true` when the tuple was not already present.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.validate_tuple(&tuple)?;
        Ok(self.tuples.insert(tuple))
    }

    /// Insert a tuple that is already known to satisfy the schema
    /// (operator-internal fast path; debug builds still assert validity).
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert!(self.schema.validate_tuple(&tuple).is_ok());
        self.tuples.insert(tuple)
    }

    /// Remove a tuple; returns `true` when it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.tuples.remove(tuple)
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }

    /// Iterate over the tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples sorted by the total tuple order — deterministic output for
    /// display, goldens and reports.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Set equality with another relation state of a union-compatible
    /// schema.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema.union_compatible(other.schema()) && self.tuples == other.tuples
    }

    /// Retain tuples satisfying a predicate (used by delete).
    pub fn retain(&mut self, f: impl FnMut(&Tuple) -> bool) {
        self.tuples.retain(f);
    }

    /// Replace this state with `other`'s — tuples **and** schema. The
    /// schemas must be union-compatible: adopting the source schema keeps
    /// the invariant that a relation's tuples validated against the schema
    /// it carries (keeping `self`'s schema would silently pair it with
    /// tuples that never validated against it).
    ///
    /// # Panics
    /// Debug builds panic when the schemas are not union-compatible.
    pub fn assign_from(&mut self, other: &Relation) {
        debug_assert!(
            self.schema.union_compatible(other.schema()),
            "assign_from between incompatible schemas `{}` and `{}`",
            self.schema,
            other.schema()
        );
        self.schema = other.schema.clone();
        self.tuples = other.tuples.clone();
    }

    /// Consume the relation and return its tuple set.
    pub fn into_tuples(self) -> FxHashSet<Tuple> {
        self.tuples
    }

    /// Borrow the underlying tuple set.
    pub fn tuples(&self) -> &FxHashSet<Tuple> {
        &self.tuples
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.sorted_tuples() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::{Value, ValueType};

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::of(
            "r",
            &[("a", ValueType::Int), ("b", ValueType::Str)],
        ))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut r = Relation::empty(schema());
        assert!(r.insert(Tuple::of((1, "x"))).unwrap());
        assert!(!r.insert(Tuple::of((1, "x"))).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::of((1, "x"))));
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = Relation::empty(schema());
        assert!(r.insert(Tuple::of(("bad", "x"))).is_err());
        assert!(r.insert(Tuple::of((1,))).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn remove_and_retain() {
        let mut r = Relation::from_tuples(
            schema(),
            vec![
                Tuple::of((1, "x")),
                Tuple::of((2, "y")),
                Tuple::of((3, "z")),
            ],
        )
        .unwrap();
        assert!(r.remove(&Tuple::of((2, "y"))));
        assert!(!r.remove(&Tuple::of((2, "y"))));
        r.retain(|t| t.get(0) == Some(&Value::Int(1)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn sorted_tuples_is_deterministic() {
        let mut r = Relation::empty(schema());
        for i in (0..10).rev() {
            r.insert(Tuple::of((i, "t"))).unwrap();
        }
        let sorted = r.sorted_tuples();
        for w in sorted.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn set_equality_ignores_names() {
        let a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let other_schema = Arc::new(RelationSchema::of(
            "s",
            &[("c", ValueType::Int), ("d", ValueType::Str)],
        ));
        let b = Relation::from_tuples(other_schema, vec![Tuple::of((1, "x"))]).unwrap();
        assert!(a.set_eq(&b));
        assert_ne!(a, b); // strict equality compares schemas
    }

    #[test]
    fn assign_from_replaces_contents() {
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let b = Relation::from_tuples(schema(), vec![Tuple::of((2, "y"))]).unwrap();
        a.assign_from(&b);
        assert!(a.contains(&Tuple::of((2, "y"))));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn assign_from_adopts_source_schema() {
        // Union-compatible but differently named schema: the tuples only
        // validated against the *source* schema, so it must come along.
        let mut a = Relation::from_tuples(schema(), vec![Tuple::of((1, "x"))]).unwrap();
        let other = Arc::new(RelationSchema::of(
            "s",
            &[("c", ValueType::Int), ("d", ValueType::Str)],
        ));
        let b = Relation::from_tuples(other.clone(), vec![Tuple::of((2, "y"))]).unwrap();
        a.assign_from(&b);
        assert_eq!(a.schema(), &other);
        assert!(a.insert(Tuple::of((3, "z"))).is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "incompatible schemas")]
    fn assign_from_incompatible_schema_asserts() {
        let mut a = Relation::empty(schema());
        let b = Relation::empty(Arc::new(RelationSchema::of("q", &[("n", ValueType::Int)])));
        a.assign_from(&b);
    }
}
