//! Relation and database schemas (Definitions 2.1 and 2.2).

use std::fmt;
use std::sync::Arc;

use crate::error::{RelationalError, Result};
use crate::tuple::Tuple;
use crate::util::FxHashMap;
use crate::value::ValueType;

/// A named, typed attribute `A_i` with domain `dom(A_i)` (Definition 2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    name: String,
    ty: ValueType,
}

impl Attribute {
    /// Create an attribute with the given name and domain.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    pub fn value_type(&self) -> ValueType {
        self.ty
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// A relation schema `R` — a relation name plus an attribute list
/// (Definition 2.1). The type of the schema is the cartesian product of the
/// attribute domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Create a relation schema, rejecting duplicate attribute names.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Result<Self> {
        let name = name.into();
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name() == a.name()) {
                return Err(RelationalError::DuplicateAttribute {
                    relation: name,
                    attribute: a.name().to_owned(),
                });
            }
        }
        Ok(RelationSchema { name, attributes })
    }

    /// Shorthand constructor from `(name, type)` pairs; panics on duplicate
    /// attribute names (intended for tests and examples).
    pub fn of(name: &str, attrs: &[(&str, ValueType)]) -> Self {
        RelationSchema::new(
            name,
            attrs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
        )
        .expect("duplicate attribute name")
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered attribute list.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Zero-based position of the attribute named `name`.
    pub fn position_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_owned(),
            })
    }

    /// The attribute domains in order, i.e. `dom(R)` as a vector.
    pub fn domain(&self) -> Vec<ValueType> {
        self.attributes.iter().map(Attribute::value_type).collect()
    }

    /// Validate that `tuple` is an element of `dom(R)`: correct arity and
    /// every value in its attribute's domain.
    pub fn validate_tuple(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, (v, a)) in tuple.values().iter().zip(&self.attributes).enumerate() {
            if !v.conforms_to(a.value_type()) {
                return Err(RelationalError::TypeMismatch {
                    relation: self.name.clone(),
                    position: i,
                    expected: a.value_type(),
                    actual: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// A renamed copy of this schema (used for auxiliary relations, which
    /// share the base relation's attribute list).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        RelationSchema {
            name: name.into(),
            attributes: self.attributes.clone(),
        }
    }

    /// True when two schemas are *union-compatible*: same arity and the same
    /// attribute domains position-by-position (names may differ).
    pub fn union_compatible(&self, other: &RelationSchema) -> bool {
        self.arity() == other.arity()
            && self
                .attributes
                .iter()
                .zip(&other.attributes)
                .all(|(a, b)| a.value_type() == b.value_type())
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A database schema `D` — a set of relation schemas (Definition 2.2).
///
/// Iteration order is deterministic (declaration order) so that plans,
/// reports and tests are reproducible.
#[derive(Debug, Clone, Default)]
pub struct DatabaseSchema {
    relations: Vec<RelationSchema>,
    index: FxHashMap<String, usize>,
}

impl DatabaseSchema {
    /// Create an empty database schema.
    pub fn new() -> Self {
        DatabaseSchema::default()
    }

    /// Build a schema from a list of relation schemas.
    pub fn from_relations(relations: Vec<RelationSchema>) -> Result<Self> {
        let mut schema = DatabaseSchema::new();
        for r in relations {
            schema.add_relation(r)?;
        }
        Ok(schema)
    }

    /// Add a relation schema; rejects duplicates and reserved names.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<()> {
        if crate::auxiliary::is_auxiliary(relation.name()) {
            return Err(RelationalError::ReservedName(relation.name().to_owned()));
        }
        if self.index.contains_key(relation.name()) {
            return Err(RelationalError::DuplicateRelation(
                relation.name().to_owned(),
            ));
        }
        self.index
            .insert(relation.name().to_owned(), self.relations.len());
        self.relations.push(relation);
        Ok(())
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.index
            .get(name)
            .map(|&i| &self.relations[i])
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_owned()))
    }

    /// Whether a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// All relation schemas in declaration order.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Share the schema behind an [`Arc`].
    pub fn into_shared(self) -> Arc<DatabaseSchema> {
        Arc::new(self)
    }
}

impl PartialEq for DatabaseSchema {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for DatabaseSchema {}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// The beer/brewery example schema used throughout the paper
/// (Example 4.1): `beer(name, type, brewery, alcohol)` and
/// `brewery(name, city, country)`.
pub fn beer_schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "beer",
            &[
                ("name", ValueType::Str),
                ("type", ValueType::Str),
                ("brewery", ValueType::Str),
                ("alcohol", ValueType::Double),
            ],
        ),
        RelationSchema::of(
            "brewery",
            &[
                ("name", ValueType::Str),
                ("city", ValueType::Str),
                ("country", ValueType::Str),
            ],
        ),
    ])
    .expect("static schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn relation_schema_basics() {
        let s = RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Str)]);
        assert_eq!(s.name(), "r");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.position_of("b").unwrap(), 1);
        assert!(s.position_of("z").is_err());
        assert_eq!(s.domain(), vec![ValueType::Int, ValueType::Str]);
        assert_eq!(s.to_string(), "r(a: int, b: str)");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let r = RelationSchema::new(
            "r",
            vec![
                Attribute::new("a", ValueType::Int),
                Attribute::new("a", ValueType::Str),
            ],
        );
        assert!(matches!(r, Err(RelationalError::DuplicateAttribute { .. })));
    }

    #[test]
    fn tuple_validation() {
        let s = RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Str)]);
        assert!(s
            .validate_tuple(&Tuple::from_values(vec![Value::Int(1), Value::str("x")]))
            .is_ok());
        // Null fits any domain.
        assert!(s
            .validate_tuple(&Tuple::from_values(vec![Value::Null, Value::Null]))
            .is_ok());
        assert!(matches!(
            s.validate_tuple(&Tuple::from_values(vec![Value::Int(1)])),
            Err(RelationalError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate_tuple(&Tuple::from_values(vec![
                Value::str("oops"),
                Value::str("x")
            ])),
            Err(RelationalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn union_compatibility() {
        let a = RelationSchema::of("a", &[("x", ValueType::Int)]);
        let b = RelationSchema::of("b", &[("y", ValueType::Int)]);
        let c = RelationSchema::of("c", &[("z", ValueType::Str)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn database_schema_add_and_lookup() {
        let mut db = DatabaseSchema::new();
        db.add_relation(RelationSchema::of("r", &[("a", ValueType::Int)]))
            .unwrap();
        assert!(db.contains("r"));
        assert!(db.relation("r").is_ok());
        assert!(db.relation("s").is_err());
        assert_eq!(db.len(), 1);
        let dup = db.add_relation(RelationSchema::of("r", &[("b", ValueType::Int)]));
        assert!(matches!(dup, Err(RelationalError::DuplicateRelation(_))));
    }

    #[test]
    fn reserved_names_rejected() {
        let mut db = DatabaseSchema::new();
        let r = db.add_relation(RelationSchema::of("r@pre", &[("a", ValueType::Int)]));
        assert!(matches!(r, Err(RelationalError::ReservedName(_))));
    }

    #[test]
    fn beer_schema_matches_paper() {
        let db = beer_schema();
        assert_eq!(db.len(), 2);
        let beer = db.relation("beer").unwrap();
        assert_eq!(beer.arity(), 4);
        assert_eq!(beer.position_of("alcohol").unwrap(), 3);
        let brewery = db.relation("brewery").unwrap();
        assert_eq!(brewery.arity(), 3);
    }

    #[test]
    fn renamed_preserves_attributes() {
        let s = RelationSchema::of("r", &[("a", ValueType::Int)]);
        let t = s.renamed("r@pre");
        assert_eq!(t.name(), "r@pre");
        assert_eq!(t.attributes(), s.attributes());
    }
}
