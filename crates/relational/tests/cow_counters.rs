//! The COW unshare counter observes exactly the genuine unshares.
//!
//! This lives in its own integration binary (own process) because the
//! counter is process-wide: unit tests exercising COW in parallel threads
//! would perturb the samples.

use std::sync::Arc;
use tm_relational::{unshare_count, Relation, RelationSchema, Tuple, ValueType};

#[test]
fn unshares_are_counted_and_noops_are_not() {
    let schema = Arc::new(RelationSchema::of("c", &[("a", ValueType::Int)]));
    let mut r = Relation::from_tuples(schema, vec![Tuple::of((1,))]).unwrap();
    let snapshot = r.clone();
    let before = unshare_count();
    // No-op mutations on shared storage never copy, never count.
    assert!(!r.insert(Tuple::of((1,))).unwrap());
    assert!(!r.remove(&Tuple::of((9,))));
    r.retain(|_| true);
    assert_eq!(unshare_count(), before, "no-op mutations must not count");
    // A genuine write to shared storage copies exactly once.
    r.insert(Tuple::of((2,))).unwrap();
    assert_eq!(unshare_count(), before + 1);
    assert_eq!(snapshot.len(), 1);
    // Now private: further writes are in-place, not unshares.
    r.insert(Tuple::of((3,))).unwrap();
    assert_eq!(unshare_count(), before + 1);
}
