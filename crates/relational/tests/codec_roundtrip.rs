//! Property tests for the binary value/tuple codec: every encodable value
//! decodes back to itself (the WAL and checkpoint formats depend on this
//! being exact), and corrupted or truncated input yields typed errors —
//! never a panic, never a silent wrong value.

use proptest::prelude::*;

use tm_relational::codec::{
    decode_tuple, decode_value, encode_tuple, encode_value, put_tuples, ByteReader,
};
use tm_relational::{Tuple, Value};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (i64::MIN..=i64::MAX).prop_map(Value::Int),
        // Doubles from raw bit patterns: covers NaN payloads, both
        // infinities, -0.0, subnormals. `Value::double` canonicalizes, so
        // the round-trip target is the canonical form.
        (0u64..=u64::MAX).prop_map(|bits| Value::double(f64::from_bits(bits))),
        Just(Value::double(f64::NAN)),
        Just(Value::double(f64::INFINITY)),
        Just(Value::double(f64::NEG_INFINITY)),
        Just(Value::double(-0.0)),
        Just(Value::Int(i64::MIN)),
        Just(Value::str("")),
        "[a-z0-9 ]{0,12}".prop_map(Value::str),
        prop_oneof![Just(true), Just(false)].prop_map(Value::Bool),
    ]
}

fn tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value(), 0..6).prop_map(Tuple::from_values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn value_round_trips(v in value()) {
        let bytes = encode_value(&v);
        let back = decode_value(&bytes).expect("decode of a fresh encoding");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn tuple_round_trips(t in tuple()) {
        let bytes = encode_tuple(&t);
        let back = decode_tuple(&bytes).expect("decode of a fresh encoding");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn tuple_batches_round_trip(ts in proptest::collection::vec(tuple(), 0..8)) {
        let mut buf = Vec::new();
        put_tuples(&mut buf, ts.iter());
        let mut r = ByteReader::new(&buf);
        let back = r.tuples().expect("decode of a fresh batch");
        r.expect_end().expect("batch decoding consumes everything");
        prop_assert_eq!(back, ts);
    }

    /// Every proper prefix of an encoding is rejected with an error — the
    /// torn-write case the WAL scanner leans on.
    #[test]
    fn truncations_error_not_panic(t in tuple(), frac in 0u64..1000) {
        let bytes = encode_tuple(&t);
        if !bytes.is_empty() {
            let cut = (frac as usize * bytes.len()) / 1000;
            prop_assert!(decode_tuple(&bytes[..cut]).is_err());
        }
    }

    /// Arbitrary bytes either decode to *some* tuple or error cleanly;
    /// decoding never panics, and whatever decodes re-encodes (no
    /// out-of-range values sneak through).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        if let Ok(t) = decode_tuple(&bytes) {
            let re = encode_tuple(&t);
            prop_assert_eq!(decode_tuple(&re).unwrap(), t);
        }
    }

    /// Single-byte corruption of a value encoding is either detected or
    /// decodes to a *different-but-valid* value (a flipped payload byte is
    /// indistinguishable at this layer — the WAL's CRC catches it); it
    /// must never panic.
    #[test]
    fn flipped_bytes_never_panic(v in value(), pos in 0usize..64, mask in 1u8..=255) {
        let mut bytes = encode_value(&v);
        if !bytes.is_empty() {
            let pos = pos % bytes.len();
            bytes[pos] ^= mask;
            let _ = decode_value(&bytes);
        }
    }
}

#[test]
fn tuple_of_every_kind_round_trips() {
    let t = Tuple::from_values(vec![
        Value::Null,
        Value::Int(i64::MIN),
        Value::Int(-1),
        Value::double(f64::NAN),
        Value::double(f64::NEG_INFINITY),
        Value::double(-0.0),
        Value::str(""),
        Value::str("käse–smörgås"),
        Value::Bool(false),
    ]);
    let bytes = encode_tuple(&t);
    assert_eq!(decode_tuple(&bytes).unwrap(), t);
}
