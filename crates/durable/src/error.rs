//! Errors of the durability subsystem.
//!
//! Every error carries the context a postmortem needs: which file, which
//! operation, and — for log damage — the byte offset and LSN at which the
//! problem was detected. I/O failures are stringified at the boundary
//! (`EngineError` upstream derives `Clone`/`PartialEq`, which
//! `std::io::Error` does not).

use std::fmt;
use std::path::Path;

use tm_relational::CodecError;

/// Result alias for durability operations.
pub type Result<T> = std::result::Result<T, DurableError>;

/// A durability failure: I/O, torn/corrupt log data, or an unusable
/// checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// An operating-system I/O failure.
    Io {
        /// The operation that failed (`"write"`, `"fsync"`, `"rename"`, …).
        op: String,
        /// The file or directory involved.
        path: String,
        /// The rendered `io::Error`.
        detail: String,
    },
    /// A WAL frame failed validation — torn tail, checksum mismatch,
    /// undecodable payload, or a non-monotonic LSN.
    CorruptFrame {
        /// Byte offset of the frame within the log file.
        offset: u64,
        /// The frame's LSN, when the header decoded far enough to read it.
        lsn: Option<u64>,
        /// What the validator rejected.
        detail: String,
    },
    /// A checkpoint file failed validation (bad magic, checksum mismatch,
    /// undecodable contents).
    CorruptCheckpoint {
        /// The checkpoint file.
        path: String,
        /// What the validator rejected.
        detail: String,
    },
    /// Recovery found no loadable checkpoint in the directory.
    NoCheckpoint {
        /// The durability directory searched.
        dir: String,
    },
}

impl DurableError {
    /// Wrap an `io::Error` with its operation and path.
    pub fn io(op: &str, path: &Path, e: std::io::Error) -> DurableError {
        DurableError::Io {
            op: op.to_owned(),
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }

    /// A corrupt frame built from a codec failure at `offset`.
    pub fn frame_codec(offset: u64, lsn: Option<u64>, e: CodecError) -> DurableError {
        DurableError::CorruptFrame {
            offset,
            lsn,
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { op, path, detail } => {
                write!(f, "I/O error during {op} on `{path}`: {detail}")
            }
            DurableError::CorruptFrame {
                offset,
                lsn,
                detail,
            } => {
                write!(f, "corrupt WAL frame at offset {offset}")?;
                if let Some(lsn) = lsn {
                    write!(f, " (lsn {lsn})")?;
                }
                write!(f, ": {detail}")
            }
            DurableError::CorruptCheckpoint { path, detail } => {
                write!(f, "corrupt checkpoint `{path}`: {detail}")
            }
            DurableError::NoCheckpoint { dir } => {
                write!(f, "no loadable checkpoint found in `{dir}`")
            }
        }
    }
}

impl std::error::Error for DurableError {}
