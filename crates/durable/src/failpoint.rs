//! Fault injection for durability I/O.
//!
//! [`FailpointFile`] wraps the WAL's file handle; a shared [`Failpoints`]
//! plan makes it misbehave on command:
//!
//! * **torn writes** — a byte budget after which writes are cut short
//!   mid-buffer and everything later is silently dropped, exactly what a
//!   power cut during `write(2)` leaves behind,
//! * **bit rot** — XOR a byte at a chosen file offset on its way to disk,
//! * **failed fsync** — the next N `fsync` calls return an error.
//!
//! The plan is `Arc`-shared so a test holds one handle while the engine
//! writes through another. With no failpoints armed the wrapper is a thin
//! pass-through.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::{DurableError, Result};

/// The armable faults. All fields default to "healthy".
#[derive(Debug, Clone, Default)]
pub struct FailPlan {
    /// Bytes that may still reach the file; writes beyond the budget are
    /// truncated (the first over-budget write) then dropped entirely —
    /// simulating a crash mid-`write`. `None` = unlimited.
    pub write_budget: Option<u64>,
    /// The next this-many `write` calls fail after physically writing
    /// only the first half of the buffer — a *reported* partial-write
    /// failure (ENOSPC, EIO): unlike the budget, the caller sees the
    /// error, but garbage bytes are already on disk past the tracked
    /// length and the OS cursor sits after them.
    pub fail_writes: u32,
    /// The next this-many `fsync` calls fail with an injected error.
    pub fail_fsyncs: u32,
    /// XOR this mask into the byte at this absolute file offset as it is
    /// written (bit rot on the write path).
    pub flip: Option<(u64, u8)>,
}

/// Shared handle to a [`FailPlan`]; cloning shares the same plan.
#[derive(Debug, Clone, Default)]
pub struct Failpoints {
    plan: Arc<Mutex<FailPlan>>,
    crashed: Arc<Mutex<bool>>,
}

impl Failpoints {
    /// A healthy, never-failing plan.
    pub fn none() -> Failpoints {
        Failpoints::default()
    }

    /// Replace the armed plan.
    pub fn arm(&self, plan: FailPlan) {
        *self.plan.lock().unwrap() = plan;
    }

    /// Whether a write was cut short by the byte budget (the simulated
    /// crash has happened; later writes are being dropped).
    pub fn crashed(&self) -> bool {
        *self.crashed.lock().unwrap()
    }
}

/// A file handle that routes all durability I/O through the armed
/// failpoints.
#[derive(Debug)]
pub struct FailpointFile {
    file: File,
    path: PathBuf,
    points: Failpoints,
    /// Current append offset (failpoint bookkeeping; the file is only
    /// ever appended to or truncated through this wrapper).
    pos: u64,
}

impl FailpointFile {
    /// Create (truncate) a file for appending.
    pub fn create(path: &Path, points: Failpoints) -> Result<FailpointFile> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| DurableError::io("create", path, e))?;
        Ok(FailpointFile {
            file,
            path: path.to_owned(),
            points,
            pos: 0,
        })
    }

    /// Open an existing file for appending at `len` (the validated length
    /// the caller will append after; anything beyond it is truncated away
    /// first — tail truncation happens at a frame boundary, never mid-log).
    pub fn open_append(path: &Path, len: u64, points: Failpoints) -> Result<FailpointFile> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| DurableError::io("open", path, e))?;
        file.set_len(len)
            .map_err(|e| DurableError::io("truncate", path, e))?;
        file.seek(SeekFrom::Start(len))
            .map_err(|e| DurableError::io("seek", path, e))?;
        Ok(FailpointFile {
            file,
            path: path.to_owned(),
            points,
            pos: len,
        })
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes appended so far (the logical end of file).
    pub fn len(&self) -> u64 {
        self.pos
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }

    /// Append `buf` at the end of the file, subject to the armed faults.
    /// A budget-exhausted (post-"crash") write reports success without
    /// writing — the caller believes the write happened, the bytes never
    /// hit the disk, exactly the lie a dying machine tells.
    pub fn append(&mut self, buf: &[u8]) -> Result<()> {
        if self.points.crashed() {
            self.pos += buf.len() as u64;
            return Ok(());
        }
        let mut data = buf.to_vec();
        {
            let plan = self.points.plan.lock().unwrap();
            if let Some((off, mask)) = plan.flip {
                if off >= self.pos && off < self.pos + data.len() as u64 {
                    data[(off - self.pos) as usize] ^= mask;
                }
            }
        }
        let fail_write = {
            let mut plan = self.points.plan.lock().unwrap();
            if plan.fail_writes > 0 {
                plan.fail_writes -= 1;
                true
            } else {
                false
            }
        };
        if fail_write {
            // Half the buffer lands on disk before the error: `pos` does
            // not advance, so the caller's tracked length now disagrees
            // with the physical file until it truncates back to it.
            let _ = self.file.write_all(&data[..data.len() / 2]);
            return Err(DurableError::Io {
                op: "write".to_owned(),
                path: self.path.display().to_string(),
                detail: "injected write failure (partial)".to_owned(),
            });
        }
        let allowed = {
            let mut plan = self.points.plan.lock().unwrap();
            match &mut plan.write_budget {
                None => data.len(),
                Some(budget) => {
                    let allowed = (*budget).min(data.len() as u64) as usize;
                    *budget -= allowed as u64;
                    allowed
                }
            }
        };
        if allowed < data.len() {
            *self.points.crashed.lock().unwrap() = true;
        }
        self.file
            .write_all(&data[..allowed])
            .map_err(|e| DurableError::io("write", &self.path, e))?;
        self.pos += buf.len() as u64;
        Ok(())
    }

    /// Force written data to stable storage, subject to the armed faults.
    pub fn sync(&mut self) -> Result<()> {
        {
            let mut plan = self.points.plan.lock().unwrap();
            if plan.fail_fsyncs > 0 {
                plan.fail_fsyncs -= 1;
                return Err(DurableError::Io {
                    op: "fsync".to_owned(),
                    path: self.path.display().to_string(),
                    detail: "injected fsync failure".to_owned(),
                });
            }
        }
        if self.points.crashed() {
            return Ok(());
        }
        self.file
            .sync_data()
            .map_err(|e| DurableError::io("fsync", &self.path, e))
    }

    /// Truncate the file to `len` bytes and realign the write cursor —
    /// tail truncation after a torn or failed write. Not subject to the
    /// error-injection faults, but a post-"crash" (budget-exhausted)
    /// handle leaves the disk untouched like every other call on a dead
    /// machine.
    pub fn truncate(&mut self, len: u64) -> Result<()> {
        if self.points.crashed() {
            self.pos = len;
            return Ok(());
        }
        self.file
            .set_len(len)
            .map_err(|e| DurableError::io("truncate", &self.path, e))?;
        self.file
            .seek(SeekFrom::Start(len))
            .map_err(|e| DurableError::io("seek", &self.path, e))?;
        self.pos = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-durable-fp-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn budget_cuts_writes_short_and_drops_the_rest() {
        let path = tmp("budget");
        let points = Failpoints::none();
        points.arm(FailPlan {
            write_budget: Some(5),
            ..FailPlan::default()
        });
        let mut f = FailpointFile::create(&path, points.clone()).unwrap();
        f.append(b"0123456789").unwrap();
        assert!(points.crashed());
        f.append(b"after the crash").unwrap(); // silently dropped
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_write_leaves_partial_garbage_until_truncated() {
        let path = tmp("failwrite");
        let points = Failpoints::none();
        let mut f = FailpointFile::create(&path, points.clone()).unwrap();
        f.append(b"good").unwrap();
        points.arm(FailPlan {
            fail_writes: 1,
            ..FailPlan::default()
        });
        assert!(matches!(
            f.append(b"0123456789"),
            Err(DurableError::Io { .. })
        ));
        // The tracked length did not advance, but half the buffer is on
        // disk past it — exactly the state a real partial write leaves.
        assert_eq!(f.len(), 4);
        assert_eq!(std::fs::read(&path).unwrap(), b"good01234");
        // Truncating back to the tracked length discards the garbage and
        // realigns the cursor, so the next append lands contiguously.
        f.truncate(4).unwrap();
        f.append(b"next").unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"goodnext");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_failures_are_injected_then_clear() {
        let path = tmp("fsync");
        let points = Failpoints::none();
        points.arm(FailPlan {
            fail_fsyncs: 1,
            ..FailPlan::default()
        });
        let mut f = FailpointFile::create(&path, points).unwrap();
        f.append(b"x").unwrap();
        assert!(matches!(f.sync(), Err(DurableError::Io { .. })));
        f.sync().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flip_corrupts_exactly_one_byte() {
        let path = tmp("flip");
        let points = Failpoints::none();
        points.arm(FailPlan {
            flip: Some((2, 0xff)),
            ..FailPlan::default()
        });
        let mut f = FailpointFile::create(&path, points).unwrap();
        f.append(b"ab").unwrap();
        f.append(b"cd").unwrap();
        drop(f);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            [b'a', b'b', b'c' ^ 0xff, b'd']
        );
        std::fs::remove_file(&path).unwrap();
    }
}
