//! Checkpoints: atomic full-state snapshots that bound recovery work and
//! let the WAL be truncated.
//!
//! A checkpoint file `checkpoint-<lsn>.ckpt` captures everything the
//! engine needs to rebuild itself: the schema, every rule's canonical
//! text (in declaration order — triggering-graph analysis is
//! order-sensitive only in naming, but we preserve it anyway), every view
//! definition, every relation's tuples (sorted, for byte-deterministic
//! snapshots), the logical clock, and an opaque engine-config blob whose
//! encoding the engine layer owns (keeping this crate free of an upward
//! dependency).
//!
//! ## Atomicity protocol
//!
//! The snapshot is written to `<name>.tmp`, fsynced, then atomically
//! renamed over the final name. A crash mid-write leaves at worst a stale
//! `.tmp` (ignored by recovery) and the previous checkpoint intact. Only
//! after the rename succeeds are older checkpoints deleted and the WAL
//! truncated.
//!
//! ## File layout
//!
//! `MAGIC ‖ body ‖ crc32(body) u32` where the body is the
//! [`Checkpoint`] fields in order, in the tm-relational binary codec.

use std::path::{Path, PathBuf};

use tm_relational::codec::{put_str, put_tuples, put_u32, put_u64, ByteReader};
use tm_relational::{Attribute, CodecResult, DatabaseSchema, RelationSchema, Tuple, ValueType};

use crate::crc::crc32;
use crate::error::{DurableError, Result};

/// File magic: `TMCK` + format version 1.
const MAGIC: &[u8; 8] = b"TMCK\x00\x00\x00\x01";

/// A full engine-state snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The last LSN whose effects are included in this snapshot. Replay
    /// resumes strictly after it.
    pub lsn: u64,
    /// The database's logical clock at snapshot time.
    pub logical_time: u64,
    /// Opaque engine-config bytes (encoded and decoded by the engine
    /// layer; this crate only stores them).
    pub config: Vec<u8>,
    /// The database schema.
    pub schema: DatabaseSchema,
    /// All catalog rules as `(name, canonical text)`, in declaration
    /// order. View maintenance rules appear here like any other rule.
    pub rules: Vec<(String, String)>,
    /// All view definitions as `(name, rendered expression)`, in
    /// definition order.
    pub views: Vec<(String, String)>,
    /// Every relation's tuples, sorted, keyed by name.
    pub relations: Vec<(String, Vec<Tuple>)>,
}

fn value_type_tag(t: ValueType) -> u8 {
    match t {
        ValueType::Int => 1,
        ValueType::Double => 2,
        ValueType::Str => 3,
        ValueType::Bool => 4,
    }
}

fn encode_body(ck: &Checkpoint, out: &mut Vec<u8>) {
    put_u64(out, ck.lsn);
    put_u64(out, ck.logical_time);
    put_u32(out, ck.config.len() as u32);
    out.extend_from_slice(&ck.config);
    put_u32(out, ck.schema.len() as u32);
    for rel in ck.schema.relations() {
        put_str(out, rel.name());
        put_u32(out, rel.arity() as u32);
        for attr in rel.attributes() {
            put_str(out, attr.name());
            out.push(value_type_tag(attr.value_type()));
        }
    }
    put_u32(out, ck.rules.len() as u32);
    for (name, text) in &ck.rules {
        put_str(out, name);
        put_str(out, text);
    }
    put_u32(out, ck.views.len() as u32);
    for (name, definition) in &ck.views {
        put_str(out, name);
        put_str(out, definition);
    }
    put_u32(out, ck.relations.len() as u32);
    for (name, tuples) in &ck.relations {
        put_str(out, name);
        put_tuples(out, tuples.iter());
    }
}

fn decode_body(buf: &[u8]) -> CodecResult<(Checkpoint, String)> {
    let mut r = ByteReader::new(buf);
    let lsn = r.u64()?;
    let logical_time = r.u64()?;
    let config_len = r.count(1)?;
    let mut config = Vec::with_capacity(config_len);
    for _ in 0..config_len {
        config.push(r.u8()?);
    }
    let n_rels = r.count(2)?;
    let mut schema_err = None;
    let mut schema = DatabaseSchema::new();
    for _ in 0..n_rels {
        let name = r.str()?;
        let arity = r.count(2)?;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            let attr_name = r.str()?;
            let offset = r.offset();
            let ty = match r.u8()? {
                1 => ValueType::Int,
                2 => ValueType::Double,
                3 => ValueType::Str,
                4 => ValueType::Bool,
                tag => {
                    return Err(tm_relational::CodecError::InvalidTag { offset, tag });
                }
            };
            attrs.push(Attribute::new(attr_name, ty));
        }
        // Structural failures (dup relation, dup attribute) are not codec
        // errors; carry them out as a detail string for the caller.
        if schema_err.is_none() {
            match RelationSchema::new(name, attrs) {
                Ok(rs) => {
                    if let Err(e) = schema.add_relation(rs) {
                        schema_err = Some(e.to_string());
                    }
                }
                Err(e) => schema_err = Some(e.to_string()),
            }
        }
    }
    let n_rules = r.count(2)?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        rules.push((r.str()?, r.str()?));
    }
    let n_views = r.count(2)?;
    let mut views = Vec::with_capacity(n_views);
    for _ in 0..n_views {
        views.push((r.str()?, r.str()?));
    }
    let n_data = r.count(2)?;
    let mut relations = Vec::with_capacity(n_data);
    for _ in 0..n_data {
        relations.push((r.str()?, r.tuples()?));
    }
    r.expect_end()?;
    Ok((
        Checkpoint {
            lsn,
            logical_time,
            config,
            schema,
            rules,
            views,
            relations,
        },
        schema_err.unwrap_or_default(),
    ))
}

/// The checkpoint file name for a given LSN.
pub fn checkpoint_file_name(lsn: u64) -> String {
    format!("checkpoint-{lsn:020}.ckpt")
}

fn corrupt(path: &Path, detail: impl Into<String>) -> DurableError {
    DurableError::CorruptCheckpoint {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

impl Checkpoint {
    /// Serialize the checkpoint (magic, body, trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(1024);
        encode_body(self, &mut body);
        let mut out = Vec::with_capacity(body.len() + MAGIC.len() + 4);
        out.extend_from_slice(MAGIC);
        let crc = crc32(&body);
        out.append(&mut body);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Write the checkpoint into `dir` via the temp-file + atomic-rename
    /// protocol; returns the final path. Older checkpoints are *not*
    /// removed here — the caller deletes them (and truncates the WAL)
    /// only after this returns successfully.
    pub fn write_atomic(&self, dir: &Path) -> Result<PathBuf> {
        let final_path = dir.join(checkpoint_file_name(self.lsn));
        let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(self.lsn)));
        let bytes = self.encode();
        {
            let mut f = std::fs::File::create(&tmp_path)
                .map_err(|e| DurableError::io("create", &tmp_path, e))?;
            use std::io::Write;
            f.write_all(&bytes)
                .map_err(|e| DurableError::io("write", &tmp_path, e))?;
            f.sync_data()
                .map_err(|e| DurableError::io("fsync", &tmp_path, e))?;
        }
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| DurableError::io("rename", &tmp_path, e))?;
        // Make the rename itself durable — a failure here means the
        // checkpoint may not survive a power loss, so it must surface.
        fsync_dir(dir)?;
        Ok(final_path)
    }

    /// Load and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint> {
        let data = std::fs::read(path).map_err(|e| DurableError::io("read", path, e))?;
        if data.len() < MAGIC.len() + 4 {
            return Err(corrupt(
                path,
                format!("file too short ({} bytes)", data.len()),
            ));
        }
        if &data[..MAGIC.len()] != MAGIC {
            return Err(corrupt(
                path,
                "bad magic (not a checkpoint, or wrong version)",
            ));
        }
        let body = &data[MAGIC.len()..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt(path, "checksum mismatch"));
        }
        let (ck, schema_err) =
            decode_body(body).map_err(|e| corrupt(path, format!("undecodable body: {e}")))?;
        if !schema_err.is_empty() {
            return Err(corrupt(path, format!("invalid schema: {schema_err}")));
        }
        Ok(ck)
    }
}

/// Fsync a directory, making renames and unlinks inside it durable.
pub fn fsync_dir(dir: &Path) -> Result<()> {
    let d = std::fs::File::open(dir).map_err(|e| DurableError::io("opendir", dir, e))?;
    d.sync_data()
        .map_err(|e| DurableError::io("fsync-dir", dir, e))
}

/// List checkpoint files in `dir`, newest (highest LSN) first. Ignores
/// stale `.tmp` files and anything that does not parse as a checkpoint
/// name. A missing directory lists as empty.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(DurableError::io("readdir", dir, e)),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| DurableError::io("readdir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".ckpt"))
        else {
            continue;
        };
        if let Ok(lsn) = stem.parse::<u64>() {
            found.push((lsn, entry.path()));
        }
    }
    found.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    Ok(found)
}

/// Delete every checkpoint in `dir` older than `keep_lsn`. Failures to
/// delete are ignored — a leftover old checkpoint is harmless (recovery
/// prefers the newest) and will be retried at the next checkpoint.
pub fn prune_checkpoints(dir: &Path, keep_lsn: u64) {
    if let Ok(all) = list_checkpoints(dir) {
        for (lsn, path) in all {
            if lsn < keep_lsn {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::schema::beer_schema;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-durable-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            lsn: 42,
            logical_time: 7,
            config: vec![1, 2, 3],
            schema: beer_schema(),
            rules: vec![("r1".into(), "WHEN INS(beer) IF NOT 1 = 1 THEN abort".into())],
            views: vec![("v".into(), "project[#0](beer)".into())],
            relations: vec![(
                "beer".into(),
                vec![Tuple::of(("ale", "b1")), Tuple::of(("lager", "b2"))],
            )],
        }
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let ck = sample();
        let path = ck.write_atomic(&dir).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        assert_eq!(list_checkpoints(&dir).unwrap(), vec![(42, path)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let path = sample().write_atomic(&dir).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for victim in 0..clean.len() {
            let mut data = clean.clone();
            data[victim] ^= 0x20;
            std::fs::write(&path, &data).unwrap();
            assert!(
                matches!(
                    Checkpoint::load(&path),
                    Err(DurableError::CorruptCheckpoint { .. })
                ),
                "flip at {victim} went undetected"
            );
        }
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(Checkpoint::load(&path).is_err(), "cut {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_prefers_newest_and_prune_keeps_it() {
        let dir = tmpdir("prune");
        for lsn in [3, 1, 2] {
            let mut ck = sample();
            ck.lsn = lsn;
            ck.write_atomic(&dir).unwrap();
        }
        // A stale tmp file from a crashed checkpoint is ignored.
        std::fs::write(dir.join("checkpoint-9.ckpt.tmp"), b"junk").unwrap();
        let lsns: Vec<u64> = list_checkpoints(&dir)
            .unwrap()
            .iter()
            .map(|c| c.0)
            .collect();
        assert_eq!(lsns, vec![3, 2, 1]);
        prune_checkpoints(&dir, 3);
        let lsns: Vec<u64> = list_checkpoints(&dir)
            .unwrap()
            .iter()
            .map(|c| c.0)
            .collect();
        assert_eq!(lsns, vec![3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
