//! Process-wide WAL I/O counters — observability hooks for the service
//! metrics sink.
//!
//! The durability cost of a workload is dominated by two numbers: how many
//! bytes of WAL frames actually reach the OS, and how many fsyncs the
//! durability policy pays. Both are invisible from transaction outcomes,
//! so the [`crate::Wal`] write paths bump global relaxed atomic counters:
//! one `write` of `n` frame bytes adds `n` to [`wal_bytes_written`], one
//! file sync adds `1` to [`wal_fsyncs`].
//!
//! The counters are monotonic and process-wide (they aggregate over every
//! live WAL — all tenants of a server share them); consumers such as the
//! `tm-server` metrics sink sample them and report deltas per interval.
//! Bytes parked in the userspace buffer of [`crate::Durability::Buffered`]
//! do not count until they are flushed — the counter measures I/O, not
//! intent.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
static FSYNCS: AtomicU64 = AtomicU64::new(0);

/// Record `n` WAL frame bytes handed to the OS (internal hook; called by
/// the WAL flush path after a successful write).
#[inline]
pub(crate) fn note_bytes_written(n: u64) {
    BYTES_WRITTEN.fetch_add(n, Ordering::Relaxed);
}

/// Record one WAL fsync (internal hook; called after a successful file
/// sync).
#[inline]
pub(crate) fn note_fsync() {
    FSYNCS.fetch_add(1, Ordering::Relaxed);
}

/// Total WAL frame bytes written through to the OS since process start,
/// across all logs. Monotonic; sample twice and subtract for a rate.
pub fn wal_bytes_written() -> u64 {
    BYTES_WRITTEN.load(Ordering::Relaxed)
}

/// Total WAL fsyncs since process start, across all logs. Monotonic;
/// sample twice and subtract for a rate.
pub fn wal_fsyncs() -> u64 {
    FSYNCS.load(Ordering::Relaxed)
}
