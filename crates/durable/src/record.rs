//! WAL record types and their binary codec.
//!
//! The log records *logical* events: a committed transaction's net
//! per-relation differentials (the Section 4.1 `R@ins`/`R@del` pairs,
//! doubling as redo records), and the catalog DDL operations — rule
//! addition/removal, view definition, bulk load — as first-class records
//! so recovery rebuilds the catalog, trigger index, and analysis state by
//! replaying the same operations the live engine ran. Rules and view
//! definitions travel as their canonical text form and are re-compiled on
//! replay.

use tm_relational::codec::{put_str, put_tuples, put_u32, ByteReader};
use tm_relational::{CodecError, CodecResult, RelationDelta, Tuple};

const TAG_COMMIT: u8 = 1;
const TAG_ADD_RULE: u8 = 2;
const TAG_REMOVE_RULE: u8 = 3;
const TAG_DEFINE_VIEW: u8 = 4;
const TAG_LOAD: u8 = 5;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed transaction's net differentials, one entry per touched
    /// relation.
    Commit {
        /// Net per-relation change records, sorted by relation name.
        deltas: Vec<RelationDelta>,
    },
    /// A rule added to the catalog (`Engine::add_rule` and friends).
    AddRule {
        /// The rule name (travels outside the text: view maintenance
        /// rules contain `$`, which the `RULE` header does not admit).
        name: String,
        /// The rule's canonical RL text.
        text: String,
    },
    /// A rule removed from the catalog.
    RemoveRule {
        /// The rule name.
        name: String,
    },
    /// A materialized view defined (`Engine::define_view`). Replay re-runs
    /// the definition — including the initial materialization — so no
    /// separate commit record is logged for it.
    DefineView {
        /// The view (relation) name.
        name: String,
        /// The defining relational expression, rendered.
        definition: String,
    },
    /// A bulk load (`Engine::load`): one record — one frame, one fsync —
    /// for the whole batch.
    Load {
        /// Target relation.
        relation: String,
        /// The loaded tuples.
        tuples: Vec<Tuple>,
    },
}

impl WalRecord {
    /// Append the encoded record.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Commit { deltas } => {
                out.push(TAG_COMMIT);
                put_u32(out, deltas.len() as u32);
                for d in deltas {
                    put_str(out, &d.relation);
                    put_tuples(out, d.inserted.iter());
                    put_tuples(out, d.deleted.iter());
                }
            }
            WalRecord::AddRule { name, text } => {
                out.push(TAG_ADD_RULE);
                put_str(out, name);
                put_str(out, text);
            }
            WalRecord::RemoveRule { name } => {
                out.push(TAG_REMOVE_RULE);
                put_str(out, name);
            }
            WalRecord::DefineView { name, definition } => {
                out.push(TAG_DEFINE_VIEW);
                put_str(out, name);
                put_str(out, definition);
            }
            WalRecord::Load { relation, tuples } => {
                out.push(TAG_LOAD);
                put_str(out, relation);
                put_tuples(out, tuples.iter());
            }
        }
    }

    /// Decode a record from a frame payload, requiring full consumption.
    pub fn decode(buf: &[u8]) -> CodecResult<WalRecord> {
        let mut r = ByteReader::new(buf);
        let record = Self::read(&mut r)?;
        r.expect_end()?;
        Ok(record)
    }

    fn read(r: &mut ByteReader<'_>) -> CodecResult<WalRecord> {
        let offset = r.offset();
        match r.u8()? {
            TAG_COMMIT => {
                let n = r.count(1)?;
                let mut deltas = Vec::with_capacity(n);
                for _ in 0..n {
                    let relation = r.str()?;
                    let inserted = r.tuples()?;
                    let deleted = r.tuples()?;
                    deltas.push(RelationDelta {
                        relation,
                        inserted,
                        deleted,
                    });
                }
                Ok(WalRecord::Commit { deltas })
            }
            TAG_ADD_RULE => Ok(WalRecord::AddRule {
                name: r.str()?,
                text: r.str()?,
            }),
            TAG_REMOVE_RULE => Ok(WalRecord::RemoveRule { name: r.str()? }),
            TAG_DEFINE_VIEW => Ok(WalRecord::DefineView {
                name: r.str()?,
                definition: r.str()?,
            }),
            TAG_LOAD => Ok(WalRecord::Load {
                relation: r.str()?,
                tuples: r.tuples()?,
            }),
            tag => Err(CodecError::InvalidTag { offset, tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: WalRecord) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(WalRecord::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn records_roundtrip() {
        roundtrip(WalRecord::Commit { deltas: vec![] });
        roundtrip(WalRecord::Commit {
            deltas: vec![RelationDelta {
                relation: "beer".into(),
                inserted: vec![Tuple::of(("a", 1))],
                deleted: vec![Tuple::of(("b", 2)), Tuple::of(("c", 3))],
            }],
        });
        roundtrip(WalRecord::AddRule {
            name: "r1".into(),
            text: "WHEN INS(beer) IF NOT 1 = 1 THEN abort".into(),
        });
        roundtrip(WalRecord::RemoveRule { name: "r1".into() });
        roundtrip(WalRecord::DefineView {
            name: "big".into(),
            definition: "select[(#1 > 100)](orders)".into(),
        });
        roundtrip(WalRecord::Load {
            relation: "brewery".into(),
            tuples: vec![Tuple::of(("x", "y", "z"))],
        });
    }

    #[test]
    fn truncated_records_error() {
        let mut buf = Vec::new();
        WalRecord::Load {
            relation: "brewery".into(),
            tuples: vec![Tuple::of(("x", "y", "z"))],
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(WalRecord::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
        assert!(WalRecord::decode(&[0]).is_err(), "unknown tag");
    }
}
