//! The write-ahead log: length-prefixed, CRC-checksummed frames with
//! monotonic LSNs.
//!
//! ## Frame layout
//!
//! ```text
//! ┌─────────┬─────────┬──────────────────────────────┐
//! │ len u32 │ crc u32 │ payload = lsn u64 ‖ record   │
//! └─────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! `len` is the payload length; `crc` is CRC-32 (IEEE) over the payload.
//! LSNs are assigned by the writer and strictly increase across the life
//! of the log — including across truncations at checkpoints — so a frame
//! from a stale tail can never masquerade as new.
//!
//! ## Torn-tail contract
//!
//! [`scan_wal`] validates frames in order and stops at the **first**
//! invalid one: a truncated header, a length overrunning the file, a
//! checksum mismatch, an undecodable payload, or a non-monotonic LSN.
//! Everything before that point is the valid prefix; everything at and
//! after it is the torn tail, reported with its offset so recovery can
//! truncate it away — at the frame boundary, never mid-log.

use std::path::Path;

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::failpoint::{FailpointFile, Failpoints};
use crate::record::WalRecord;

/// Bytes of the `len`+`crc` frame header.
pub const FRAME_HEADER: u64 = 8;

/// Size at which the userspace frame buffer is flushed to the OS (see
/// [`Wal::append_buffered`]).
pub const BUFFER_FLUSH_BYTES: usize = 64 * 1024;

/// How hard a commit pushes its WAL frames toward stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No logging at all: the database is durable only up to its latest
    /// checkpoint. The zero-overhead baseline.
    None,
    /// Frames accumulate in a userspace buffer flushed to the OS once it
    /// reaches [`BUFFER_FLUSH_BYTES`], at checkpoints, and on drop (a
    /// clean shutdown): the commit hot path pays no syscall, and a crash
    /// loses at most the buffered tail — always a committed prefix.
    Buffered,
    /// Frames are fsynced at commit (group commit batches the fsync over
    /// [`DurabilityConfig::group_commit`] consecutive commits).
    #[default]
    Fsync,
}

/// Durability knobs on the engine config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// The commit durability level.
    pub level: Durability,
    /// Under [`Durability::Fsync`], fsync once per this many commits
    /// (group commit). `1` fsyncs every commit; higher values amortize
    /// the fsync over a batch — a crash loses at most the unsynced batch,
    /// still always a committed prefix.
    pub group_commit: usize,
    /// Take an automatic checkpoint after this many logged frames
    /// (`0` = checkpoint only on explicit request).
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            level: Durability::Fsync,
            group_commit: 1,
            checkpoint_every: 0,
        }
    }
}

/// An appendable WAL file.
#[derive(Debug)]
pub struct Wal {
    file: FailpointFile,
    next_lsn: u64,
    /// Commits appended since the last fsync (group-commit bookkeeping).
    unsynced: usize,
    /// Frames not yet handed to the OS (see [`Wal::append_buffered`]).
    pending: Vec<u8>,
}

impl Wal {
    /// Create a fresh (empty) log whose first frame will carry `next_lsn`.
    pub fn create(path: &Path, next_lsn: u64, points: Failpoints) -> Result<Wal> {
        Ok(Wal {
            file: FailpointFile::create(path, points)?,
            next_lsn,
            unsynced: 0,
            pending: Vec::new(),
        })
    }

    /// Open an existing log for appending after its valid prefix.
    /// `valid_len` and `next_lsn` come from a prior [`scan_wal`]; any torn
    /// tail beyond `valid_len` is truncated away here.
    pub fn open_append(
        path: &Path,
        valid_len: u64,
        next_lsn: u64,
        points: Failpoints,
    ) -> Result<Wal> {
        Ok(Wal {
            file: FailpointFile::open_append(path, valid_len, points)?,
            next_lsn,
            unsynced: 0,
            pending: Vec::new(),
        })
    }

    /// The LSN the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN of the last appended record (`None` before any append).
    pub fn last_lsn(&self) -> Option<u64> {
        self.next_lsn.checked_sub(1).filter(|_| self.next_lsn > 1)
    }

    /// Current log length in bytes (including frames still in the
    /// userspace buffer).
    pub fn len(&self) -> u64 {
        self.file.len() + self.pending.len() as u64
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode one record as a frame into the userspace buffer and assign
    /// its LSN. Infallible: nothing touches the file. The payload is
    /// encoded in place and the `len`+`crc` header backpatched — no
    /// per-frame allocation.
    fn push_frame(&mut self, record: &WalRecord) -> u64 {
        let lsn = self.next_lsn;
        let header_at = self.pending.len();
        self.pending
            .extend_from_slice(&[0u8; FRAME_HEADER as usize]);
        let payload_at = self.pending.len();
        self.pending.extend_from_slice(&lsn.to_le_bytes());
        record.encode(&mut self.pending);
        let payload_len = (self.pending.len() - payload_at) as u32;
        let crc = crc32(&self.pending[payload_at..]);
        self.pending[header_at..header_at + 4].copy_from_slice(&payload_len.to_le_bytes());
        self.pending[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
        self.next_lsn += 1;
        self.unsynced += 1;
        lsn
    }

    /// Append one record as a frame and hand it to the OS immediately
    /// (one `write`); returns its LSN. Calling [`Wal::sync`] is the
    /// caller's durability policy.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let lsn = self.push_frame(record);
        self.flush()?;
        Ok(lsn)
    }

    /// Append one record into the userspace buffer — no syscall on this
    /// path. The buffer reaches the OS when it grows past
    /// [`BUFFER_FLUSH_BYTES`], on [`Wal::flush`]/[`Wal::sync`], and on
    /// drop. The policy behind [`Durability::Buffered`].
    pub fn append_buffered(&mut self, record: &WalRecord) -> Result<u64> {
        let lsn = self.push_frame(record);
        if self.pending.len() >= BUFFER_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(lsn)
    }

    /// Write any buffered frames through to the OS. On failure the buffer
    /// is kept, so [`Wal::rollback_to`] can still surgically remove the
    /// frame that could not be made durable.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.append(&self.pending)?;
        crate::counters::note_bytes_written(self.pending.len() as u64);
        self.pending.clear();
        Ok(())
    }

    /// Flush and fsync the log. Clears the group-commit counter.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.file.sync()?;
        crate::counters::note_fsync();
        self.unsynced = 0;
        Ok(())
    }

    /// Fsync only when at least `group` commits are pending — the group
    /// commit policy under [`Durability::Fsync`].
    pub fn sync_every(&mut self, group: usize) -> Result<()> {
        if self.unsynced >= group.max(1) {
            self.sync()?;
        }
        Ok(())
    }

    /// Truncate the log to empty after a checkpoint made its contents
    /// redundant. LSNs keep increasing: the checkpoint records the LSN up
    /// to which state is included, and the next frame continues past it.
    pub fn reset(&mut self) -> Result<()> {
        self.pending.clear();
        self.unsynced = 0;
        self.file.truncate(0)
    }

    /// Roll the log back to `len` bytes and `next_lsn`, removing frames
    /// whose durability could not be established (a failed fsync after an
    /// already-written append): the frame bytes are poison — if they
    /// stayed, recovery would replay a commit the engine reported as
    /// failed and rolled back in memory. Frames still sitting in the
    /// userspace buffer are simply dropped from it.
    pub fn rollback_to(&mut self, len: u64, next_lsn: u64) -> Result<()> {
        let on_disk = self.file.len();
        if len >= on_disk {
            self.pending.truncate((len - on_disk) as usize);
            // Even when every removed frame was still buffered, a failed
            // physical write may have left partial garbage on disk beyond
            // the tracked length, with the OS cursor displaced past it —
            // later appends would land after the garbage and scanning
            // would stop there, losing successfully-fsynced commits.
            // Truncate unconditionally to discard it and realign.
            self.file.truncate(on_disk)?;
        } else {
            self.pending.clear();
            self.file.truncate(len)?;
        }
        // Best effort: push the poison-frame removal itself toward stable
        // storage so a power loss does not resurrect the truncated bytes.
        let _ = self.file.sync();
        self.next_lsn = next_lsn;
        self.unsynced = 0;
        Ok(())
    }
}

impl Drop for Wal {
    /// A clean shutdown hands buffered frames to the OS (best effort) —
    /// dropping a [`Durability::Buffered`] engine is a clean exit, not a
    /// crash.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// One validated frame from a log scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedFrame {
    /// The frame's LSN.
    pub lsn: u64,
    /// Byte offset of the frame header in the file.
    pub offset: u64,
    /// The decoded record.
    pub record: WalRecord,
}

/// The result of scanning a log file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// The valid frame prefix, in log order.
    pub frames: Vec<ScannedFrame>,
    /// Byte length of the valid prefix (the tail-truncation point when
    /// `corruption` is set).
    pub valid_len: u64,
    /// Why scanning stopped before the end of the file, when it did.
    pub corruption: Option<DurableError>,
}

impl WalScan {
    /// LSN of the last valid frame.
    pub fn last_lsn(&self) -> Option<u64> {
        self.frames.last().map(|f| f.lsn)
    }
}

/// Scan a log file into its valid frame prefix. A missing file is an
/// empty log. I/O failures are errors; *data* damage is not — it is
/// reported in [`WalScan::corruption`] with the offset of the first bad
/// frame, and the frames before it are returned.
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(DurableError::io("read", path, e)),
    };
    let mut frames = Vec::new();
    let mut pos: u64 = 0;
    let mut prev_lsn: Option<u64> = None;
    let len = data.len() as u64;
    let corruption = loop {
        if pos == len {
            break None;
        }
        if len - pos < FRAME_HEADER {
            break Some(DurableError::CorruptFrame {
                offset: pos,
                lsn: None,
                detail: format!("truncated frame header ({} byte(s) left)", len - pos),
            });
        }
        let header = &data[pos as usize..(pos + FRAME_HEADER) as usize];
        let frame_len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if frame_len < 8 {
            break Some(DurableError::CorruptFrame {
                offset: pos,
                lsn: None,
                detail: format!("frame length {frame_len} is shorter than an LSN"),
            });
        }
        if frame_len > len - pos - FRAME_HEADER {
            break Some(DurableError::CorruptFrame {
                offset: pos,
                lsn: None,
                detail: format!(
                    "frame length {frame_len} overruns the file ({} byte(s) left)",
                    len - pos - FRAME_HEADER
                ),
            });
        }
        let payload =
            &data[(pos + FRAME_HEADER) as usize..(pos + FRAME_HEADER + frame_len) as usize];
        if crc32(payload) != crc {
            break Some(DurableError::CorruptFrame {
                offset: pos,
                lsn: None,
                detail: "checksum mismatch".to_owned(),
            });
        }
        let lsn = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        if let Some(prev) = prev_lsn {
            if lsn <= prev {
                break Some(DurableError::CorruptFrame {
                    offset: pos,
                    lsn: Some(lsn),
                    detail: format!("non-monotonic LSN (previous frame had {prev})"),
                });
            }
        }
        let record = match WalRecord::decode(&payload[8..]) {
            Ok(r) => r,
            Err(e) => break Some(DurableError::frame_codec(pos, Some(lsn), e)),
        };
        frames.push(ScannedFrame {
            lsn,
            offset: pos,
            record,
        });
        prev_lsn = Some(lsn);
        pos += FRAME_HEADER + frame_len;
    };
    Ok(WalScan {
        frames,
        valid_len: pos,
        corruption,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use tm_relational::{RelationDelta, Tuple};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-durable-wal-{}-{name}.log", std::process::id()));
        p
    }

    fn commit(i: i64) -> WalRecord {
        WalRecord::Commit {
            deltas: vec![RelationDelta {
                relation: "r".into(),
                inserted: vec![Tuple::of((i,))],
                deleted: vec![],
            }],
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path, 1, Failpoints::none()).unwrap();
        for i in 0..5 {
            assert_eq!(wal.append(&commit(i)).unwrap(), 1 + i as u64);
        }
        wal.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 5);
        assert_eq!(scan.last_lsn(), Some(5));
        assert!(scan.corruption.is_none());
        assert_eq!(scan.valid_len, wal.len());
        assert_eq!(scan.frames[2].record, commit(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_truncation_point_yields_a_valid_prefix() {
        let path = tmp("truncate");
        let mut wal = Wal::create(&path, 1, Failpoints::none()).unwrap();
        let mut boundaries = vec![0u64];
        for i in 0..4 {
            wal.append(&commit(i)).unwrap();
            boundaries.push(wal.len());
        }
        wal.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            // The valid prefix is the largest frame boundary <= cut.
            let expect_frames = boundaries.iter().filter(|b| **b <= cut as u64).count() - 1;
            assert_eq!(scan.frames.len(), expect_frames, "cut {cut}");
            assert_eq!(scan.valid_len, boundaries[expect_frames], "cut {cut}");
            assert_eq!(
                scan.corruption.is_some(),
                cut as u64 != boundaries[expect_frames]
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_byte_stops_the_scan_at_that_frame() {
        let path = tmp("flip");
        let mut wal = Wal::create(&path, 1, Failpoints::none()).unwrap();
        for i in 0..3 {
            wal.append(&commit(i)).unwrap();
        }
        wal.sync().unwrap();
        let clean = std::fs::read(&path).unwrap();
        for victim in 0..clean.len() {
            let mut data = clean.clone();
            data[victim] ^= 0x40;
            std::fs::write(&path, &data).unwrap();
            let scan = scan_wal(&path).unwrap();
            assert!(
                scan.corruption.is_some(),
                "flip at {victim} went undetected"
            );
            // The surviving prefix must be validly decodable and strictly
            // shorter than the full log.
            assert!(scan.frames.len() < 3, "flip at {victim}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffered_appends_stay_in_userspace_until_flush_or_drop() {
        let path = tmp("buffered");
        let mut wal = Wal::create(&path, 1, Failpoints::none()).unwrap();
        for i in 0..3 {
            wal.append_buffered(&commit(i)).unwrap();
        }
        // No syscall yet: the file on disk is still empty, but the log's
        // logical length already counts the buffered frames.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        assert!(!wal.is_empty());
        let logical = wal.len();
        drop(wal); // clean shutdown flushes
        assert_eq!(std::fs::metadata(&path).unwrap().len(), logical);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert!(scan.corruption.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rollback_removes_buffered_and_written_frames_alike() {
        let path = tmp("rollback");
        let mut wal = Wal::create(&path, 1, Failpoints::none()).unwrap();
        wal.append(&commit(0)).unwrap(); // written through
        let (keep_len, keep_lsn) = (wal.len(), wal.next_lsn());
        wal.append_buffered(&commit(1)).unwrap(); // userspace only
        wal.rollback_to(keep_len, keep_lsn).unwrap();
        assert_eq!(wal.len(), keep_len);
        wal.append(&commit(2)).unwrap(); // reuses the rolled-back LSN
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.corruption.is_none());
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.last_lsn(), Some(2));
        assert_eq!(scan.frames[1].record, commit(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rollback_discards_partial_write_garbage_from_the_file() {
        use crate::failpoint::FailPlan;
        let path = tmp("partial");
        let points = Failpoints::none();
        let mut wal = Wal::create(&path, 1, points.clone()).unwrap();
        wal.append(&commit(0)).unwrap();
        let (keep_len, keep_lsn) = (wal.len(), wal.next_lsn());
        // A reported partial write: half the frame lands on disk, the
        // caller sees the error and rolls back.
        points.arm(FailPlan {
            fail_writes: 1,
            ..FailPlan::default()
        });
        assert!(wal.append(&commit(1)).is_err());
        wal.rollback_to(keep_len, keep_lsn).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep_len);
        // Later appends must land contiguously after the valid prefix —
        // no garbage bytes in between to stop the scan.
        wal.append(&commit(2)).unwrap();
        wal.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.corruption.is_none(), "garbage survived the rollback");
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[1].record, commit(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_lsn_rejected() {
        let path = tmp("lsn");
        let mut wal = Wal::create(&path, 10, Failpoints::none()).unwrap();
        wal.append(&commit(0)).unwrap();
        drop(wal);
        // A second writer restarting at a stale LSN simulates an old tail.
        let valid = scan_wal(&path).unwrap().valid_len;
        let mut wal = Wal::open_append(&path, valid, 10, Failpoints::none()).unwrap();
        wal.append(&commit(1)).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert!(matches!(
            scan.corruption,
            Some(DurableError::CorruptFrame { lsn: Some(10), .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
