//! # tm-durable — the durability subsystem
//!
//! Crash safety for the transaction-modification engine, built on the
//! paper's own differentials: the per-relation `R@ins`/`R@del` nets that
//! transaction modification computes anyway (Section 4.1) double as redo
//! records, so the WAL logs exactly the logical change a commit made —
//! no physical pages, no undo, no ARIES machinery.
//!
//! Three pieces:
//!
//! * [`wal`] — length-prefixed, CRC-32-checksummed frames with strictly
//!   monotonic LSNs; [`Durability`] levels (`None`/`Buffered`/`Fsync`)
//!   and group commit via [`DurabilityConfig`];
//! * [`checkpoint`] — atomic full-state snapshots (temp file + rename)
//!   that bound recovery work and allow log truncation;
//! * [`failpoint`] — a fault-injection file shim (torn writes, bit rot,
//!   failed fsync) that the crash-matrix test suite drives.
//!
//! The crate depends only on `tm-relational` — the engine layer
//! (`txmod`) owns the replay logic, feeding scanned [`record::WalRecord`]s
//! back through its normal execution paths so recovery reproduces the
//! committed prefix bit-for-bit.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod counters;
pub mod crc;
pub mod error;
pub mod failpoint;
pub mod record;
pub mod wal;

pub use checkpoint::{fsync_dir, list_checkpoints, prune_checkpoints, Checkpoint};
pub use counters::{wal_bytes_written, wal_fsyncs};
pub use crc::crc32;
pub use error::{DurableError, Result};
pub use failpoint::{FailPlan, FailpointFile, Failpoints};
pub use record::WalRecord;
pub use wal::{scan_wal, Durability, DurabilityConfig, ScannedFrame, Wal, WalScan};
