//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), implemented in-tree —
//! the workspace vendors no external crates. Slicing-by-8: eight derived
//! tables computed at first use let the hot loop consume eight bytes per
//! iteration, which matters both per-commit (every WAL frame is
//! checksummed on the hot path) and at recovery (the whole log is
//! re-checksummed on scan).

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        let (t0, derived) = t.split_first_mut().expect("eight tables");
        for (i, slot) in t0.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for i in 0..256 {
            let mut c = t0[i];
            for tk in derived.iter_mut() {
                c = t0[(c & 0xff) as usize] ^ (c >> 8);
                tk[i] = c;
            }
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, initial value all-ones, final complement).
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        let lo = u32::from_le_bytes(w[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(w[4..8].try_into().unwrap());
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"frame payload");
        let mut data = b"frame payload".to_vec();
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
