//! The WAL I/O counters observe exactly the bytes and fsyncs that reach
//! the file.
//!
//! This lives in its own integration binary (own process) because the
//! counters are process-wide: WAL unit tests running in parallel threads
//! would perturb the samples.

use tm_durable::{wal_bytes_written, wal_fsyncs, Failpoints, Wal, WalRecord};

#[test]
fn writes_and_syncs_are_counted() {
    let mut path = std::env::temp_dir();
    path.push(format!("tm-durable-counters-{}.log", std::process::id()));
    let mut wal = Wal::create(&path, 1, Failpoints::none()).unwrap();
    let (bytes0, syncs0) = (wal_bytes_written(), wal_fsyncs());
    wal.append(&WalRecord::RemoveRule { name: "r".into() })
        .unwrap();
    let written = wal.len();
    assert_eq!(wal_bytes_written(), bytes0 + written);
    assert_eq!(wal_fsyncs(), syncs0, "plain append must not fsync");
    wal.sync().unwrap();
    assert_eq!(wal_fsyncs(), syncs0 + 1);
    // Buffered appends count nothing until flushed: the counter measures
    // I/O, not intent.
    wal.append_buffered(&WalRecord::RemoveRule { name: "s".into() })
        .unwrap();
    assert_eq!(wal_bytes_written(), bytes0 + written);
    let total = wal.len();
    wal.flush().unwrap();
    assert_eq!(wal_bytes_written(), bytes0 + total);
    drop(wal);
    std::fs::remove_file(&path).unwrap();
}
