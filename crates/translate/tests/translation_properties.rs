//! Property test: for randomly *generated* constraints in the supported
//! class, the translated alarm program agrees with direct semantic
//! evaluation on random database states — the translator's soundness and
//! completeness over its whole input space, not just hand-picked examples.

use proptest::prelude::*;

use tm_algebra::Executor;
use tm_calculus::ast::{Atom, CmpOp, Formula, Term};
use tm_calculus::{analyze, eval_constraint, StateSource};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, ValueType};
use tm_translate::trans_c;

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Int)]),
        RelationSchema::of("s", &[("c", ValueType::Int), ("d", ValueType::Int)]),
    ])
    .unwrap()
}

fn db(r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
    let mut db = Database::new(schema().into_shared());
    for &(a, b) in r {
        db.insert("r", Tuple::of((a, b))).unwrap();
    }
    for &(c, d) in s {
        db.insert("s", Tuple::of((c, d))).unwrap();
    }
    db
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

/// A quantifier-free condition over variable `var` (2-column tuples).
fn simple_cond(var: &'static str) -> impl Strategy<Value = Formula> {
    (cmp_op(), 1usize..3, -2..3i64).prop_map(move |(op, pos, k)| {
        Formula::Atom(Atom::Cmp(op, Term::attr(var, pos), Term::int(k)))
    })
}

/// A join condition between `x` (offset 0) and `y`.
fn join_cond() -> impl Strategy<Value = Formula> {
    (cmp_op(), 1usize..3, 1usize..3).prop_map(|(op, px, py)| {
        Formula::Atom(Atom::Cmp(op, Term::attr("x", px), Term::attr("y", py)))
    })
}

/// Constraints from the supported translation class, generated at random:
/// domain, referential, exclusion, existence, count, and conjunctions.
fn constraint() -> impl Strategy<Value = Formula> {
    let domain = simple_cond("x")
        .prop_map(|c| Formula::forall("x", Formula::implies(Formula::member("x", "r"), c)));
    let referential = join_cond().prop_map(|c| {
        Formula::forall(
            "x",
            Formula::implies(
                Formula::member("x", "r"),
                Formula::exists("y", Formula::and(Formula::member("y", "s"), c)),
            ),
        )
    });
    let exclusion = join_cond().prop_map(|c| {
        Formula::forall(
            "x",
            Formula::implies(
                Formula::member("x", "r"),
                Formula::forall("y", Formula::implies(Formula::member("y", "s"), c)),
            ),
        )
    });
    let existence = simple_cond("x")
        .prop_map(|c| Formula::exists("x", Formula::and(Formula::member("x", "r"), c)));
    let count = (cmp_op(), 0..6i64).prop_map(|(op, k)| {
        Formula::Atom(Atom::Cmp(op, Term::Cnt { rel: "r".into() }, Term::int(k)))
    });
    let leaf = prop_oneof![domain, referential, exclusion, existence, count];
    (leaf.clone(), prop::option::of(leaf)).prop_map(|(a, b)| match b {
        None => a,
        Some(b) => Formula::and(a, b),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn translation_agrees_with_semantics(
        c in constraint(),
        r in prop::collection::vec((-2..3i64, -2..3i64), 0..8),
        s in prop::collection::vec((-2..3i64, -2..3i64), 0..8),
    ) {
        let schema = schema();
        let database = db(&r, &s);
        let info = analyze(&c, &schema).expect("generated constraints are analysable");
        let truth = eval_constraint(&info, &StateSource(&database))
            .expect("generated constraints are evaluable");
        let program = trans_c(&c, &schema).expect("generated constraints translate");
        let mut scratch = database.clone();
        let committed = Executor
            .execute(&mut scratch, &program.bracket())
            .is_committed();
        prop_assert_eq!(
            committed,
            truth,
            "translation disagrees with semantics for `{}` on r={:?} s={:?}",
            c,
            r,
            s
        );
    }
}
