//! Differential-relation optimization (§5.2.1, refs \[18, 5, 7\]).
//!
//! The paper lists "the use of differential relations to avoid unnecessary
//! data access" as the primary `OptC` technique; the author's companion
//! work \[7\] (*Parallel Handling of Integrity Constraints on Fragmented
//! Relations*) develops it fully. The idea: when a constraint held in the
//! pre-transaction state, only tuples *touched by the transaction* can
//! introduce a violation, so the appended check may run against the small
//! delta relations `R@ins` / `R@del` instead of the full base relations.
//!
//! The specialization is **per trigger** — the same rule contributes a
//! different (smaller) program depending on which update type activated it:
//!
//! * domain-style `(∀x)(x∈R ⟹ ψ(x))` with quantifier-free `ψ`:
//!   - `INS(R)` → `alarm(σ_{¬ψ'}(R@ins))`
//! * referential-style `(∀x)(x∈R ⟹ (∃y)(y∈S ∧ ρ(x,y)))`:
//!   - `INS(R)` → `alarm(R@ins ▷_ρ S)` — new children need a parent,
//!   - `DEL(S)` → `alarm((R ⋉_ρ S@del) ▷_ρ S)` — children that referenced
//!     a deleted parent and have no remaining parent.
//!
//! Everything else falls back to the full (unspecialized) check, still per
//! trigger, so correctness never depends on the optimizer recognising a
//! shape. Soundness of the delta checks requires the constraint to hold in
//! the pre-transaction state — exactly the induction invariant transaction
//! modification maintains (Definition 3.5) — and is property-tested against
//! the ground-truth evaluator in the `txmod` crate.

use tm_algebra::{Program, RelExpr, Statement};
use tm_calculus::analysis::analyze;
use tm_relational::{auxiliary, DatabaseSchema};
use tm_rules::{IntegrityRule, RuleAction, Trigger, UpdateType};

use crate::error::Result;
use crate::simplify::simplify_rel;
use crate::specialize::{condition_shape, ConditionShape};
use crate::transc::trans_c;

/// A per-trigger specialized program.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialProgram {
    /// The trigger this program handles.
    pub trigger: Trigger,
    /// The specialized check (or compensation) program.
    pub program: Program,
    /// Whether specialization succeeded (false ⇒ full fallback check).
    pub specialized: bool,
}

fn alarm(expr: RelExpr) -> Program {
    Program::new(vec![Statement::Alarm(simplify_rel(expr))])
}

/// Compute the per-trigger specialized programs for a rule (§5.2.1).
///
/// Compensating rules are returned unspecialized (their response action is
/// the program, per `TransCA`); aborting rules get delta checks where the
/// shape allows, full checks otherwise.
pub fn differential_programs(
    rule: &IntegrityRule,
    schema: &DatabaseSchema,
) -> Result<Vec<DifferentialProgram>> {
    // Compensations run as-is for every trigger.
    if let RuleAction::Compensate(p) = rule.action() {
        return Ok(rule
            .triggers()
            .iter()
            .map(|t| DifferentialProgram {
                trigger: t.clone(),
                program: p.clone(),
                specialized: false,
            })
            .collect());
    }

    let full = trans_c(rule.condition(), schema)?;
    let info = analyze(rule.condition(), schema)?;
    let shape = condition_shape(&info.formula, schema);

    let mut out = Vec::new();
    for t in rule.triggers().iter() {
        let specialized = match (&shape, t.update) {
            (
                ConditionShape::Domain {
                    rel,
                    violation_pred,
                },
                UpdateType::Ins,
            ) if *rel == t.relation => Some(alarm(
                RelExpr::relation(auxiliary::ins_name(rel)).select(violation_pred.clone()),
            )),
            (
                ConditionShape::Referential {
                    rel_r,
                    rel_s,
                    match_pred,
                },
                UpdateType::Ins,
            ) if *rel_r == t.relation => Some(alarm(
                RelExpr::relation(auxiliary::ins_name(rel_r))
                    .anti_join(RelExpr::relation(rel_s.clone()), match_pred.clone()),
            )),
            (
                ConditionShape::Referential {
                    rel_r,
                    rel_s,
                    match_pred,
                },
                UpdateType::Del,
            ) if *rel_s == t.relation => Some(alarm(
                RelExpr::relation(rel_r.clone())
                    .semi_join(
                        RelExpr::relation(auxiliary::del_name(rel_s)),
                        match_pred.clone(),
                    )
                    .anti_join(RelExpr::relation(rel_s.clone()), match_pred.clone()),
            )),
            _ => None,
        };
        match specialized {
            Some(program) => out.push(DifferentialProgram {
                trigger: t.clone(),
                program,
                specialized: true,
            }),
            None => out.push(DifferentialProgram {
                trigger: t.clone(),
                program: full.clone(),
                specialized: false,
            }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::schema::beer_schema;
    use tm_rules::parse_rule;

    fn r1() -> IntegrityRule {
        parse_rule(
            "IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
            "r1",
        )
        .unwrap()
    }

    fn r2() -> IntegrityRule {
        parse_rule(
            "IF NOT forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name)) THEN abort",
            "r2",
        )
        .unwrap()
    }

    #[test]
    fn domain_rule_specializes_to_ins_delta() {
        let ps = differential_programs(&r1(), &beer_schema()).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].trigger, Trigger::ins("beer"));
        assert!(ps[0].specialized);
        assert_eq!(
            ps[0].program.to_string().trim(),
            "alarm(select[(#3 < 0)](beer@ins));"
        );
    }

    #[test]
    fn referential_rule_specializes_both_triggers() {
        let ps = differential_programs(&r2(), &beer_schema()).unwrap();
        assert_eq!(ps.len(), 2);
        let ins = ps
            .iter()
            .find(|p| p.trigger == Trigger::ins("beer"))
            .unwrap();
        assert!(ins.specialized);
        assert_eq!(
            ins.program.to_string().trim(),
            "alarm(antijoin[(#2 = #4)](beer@ins, brewery));"
        );
        let del = ps
            .iter()
            .find(|p| p.trigger == Trigger::del("brewery"))
            .unwrap();
        assert!(del.specialized);
        assert_eq!(
            del.program.to_string().trim(),
            "alarm(antijoin[(#2 = #4)](semijoin[(#2 = #4)](beer, brewery@del), brewery));"
        );
    }

    #[test]
    fn aggregate_rule_falls_back_to_full_check() {
        let rule = parse_rule("IF NOT CNT(beer) <= 100 THEN abort", "cnt").unwrap();
        let ps = differential_programs(&rule, &beer_schema()).unwrap();
        assert_eq!(ps.len(), 2); // INS+DEL triggers
        assert!(ps.iter().all(|p| !p.specialized));
        assert!(ps[0].program.to_string().contains("CNT(beer)"));
    }

    #[test]
    fn compensating_rule_not_specialized() {
        let rule = parse_rule(
            "IF NOT forall x (x in beer implies x.alcohol >= 0) \
             THEN delete(beer, select[#3 < 0](beer)) NON-TRIGGERING",
            "fix",
        )
        .unwrap();
        let ps = differential_programs(&rule, &beer_schema()).unwrap();
        assert!(ps.iter().all(|p| !p.specialized));
        assert!(ps[0].program.to_string().contains("delete"));
    }

    #[test]
    fn transition_constraints_not_misclassified() {
        let rule = parse_rule(
            "IF NOT forall x (x in beer@pre implies exists y (y in beer and x == y)) \
             THEN abort",
            "persist",
        )
        .unwrap();
        let ps = differential_programs(&rule, &beer_schema()).unwrap();
        // Trigger is DEL(beer); outer range is the immutable pre-state →
        // no specialization.
        assert_eq!(ps.len(), 1);
        assert!(!ps[0].specialized);
    }
}
