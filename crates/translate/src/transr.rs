//! `TransR` / `TransCA` (Algorithm 5.5): rule translation.
//!
//! > "If the rule has an aborting character, only the condition of the rule
//! > has to be translated to extended relational algebra constructs. …
//! > In most practical cases, the specified violation response action
//! > exactly compensates all incorrect values in the database and has no
//! > other side effects. This implies that the program produced by function
//! > TransCA can be equal to the violation response action given as
//! > argument to the function."
//!
//! Accordingly: aborting rules translate their condition via
//! [`crate::transc::trans_c`]; compensating rules use the response action
//! verbatim (the deeper analysis of side-effecting actions is "beyond the
//! scope of this paper", and of this reproduction).

use tm_algebra::Program;
use tm_relational::DatabaseSchema;
use tm_rules::{IntegrityRule, RuleAction, TriggerSet};

use crate::error::Result;
use crate::transc::trans_c;

/// A rule after `OptR` + `TransR`: ready to be stored as an integrity
/// program (Definition 6.3) or concatenated during dynamic modification.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslatedRule {
    /// The originating rule's name.
    pub name: String,
    /// The rule's trigger set (stored with the program, Definition 6.3).
    pub triggers: TriggerSet,
    /// The triggered program.
    pub program: Program,
    /// Whether the program was declared non-triggering (Definition 6.2).
    pub non_triggering: bool,
}

/// `TransR` (Algorithm 5.5): translate an integrity rule into an algebra
/// program.
pub fn trans_r(rule: &IntegrityRule, schema: &DatabaseSchema) -> Result<TranslatedRule> {
    let program = match rule.action() {
        RuleAction::Abort => trans_c(rule.condition(), schema)?,
        RuleAction::Compensate(p) => p.clone(),
    };
    Ok(TranslatedRule {
        name: rule.name.clone(),
        triggers: rule.triggers().clone(),
        program,
        non_triggering: rule.non_triggering,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::schema::beer_schema;
    use tm_rules::parse_rule;

    #[test]
    fn aborting_rule_translates_condition() {
        let rule = parse_rule(
            "IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
            "r1",
        )
        .unwrap();
        let t = trans_r(&rule, &beer_schema()).unwrap();
        assert_eq!(t.name, "r1");
        assert_eq!(
            t.program.to_string().trim(),
            "alarm(select[(#3 < 0)](beer));"
        );
        assert_eq!(t.triggers.to_string(), "INS(beer)");
        assert!(!t.non_triggering);
    }

    #[test]
    fn compensating_rule_keeps_action() {
        let rule = parse_rule(
            "IF NOT forall x (x in beer implies \
                      exists y (y in brewery and x.brewery = y.name)) \
             THEN temp := minus(project[#2](beer), project[#0](brewery)); \
                  insert(brewery, project[#0, null, null](temp))",
            "r2",
        )
        .unwrap();
        let t = trans_r(&rule, &beer_schema()).unwrap();
        assert_eq!(t.program.len(), 2);
        assert_eq!(t.triggers.to_string(), "INS(beer), DEL(brewery)");
    }

    #[test]
    fn non_triggering_flag_propagates() {
        let rule = parse_rule(
            "IF NOT forall x (x in beer implies x.alcohol >= 0) \
             THEN delete(beer, select[#3 < 0](beer)) NON-TRIGGERING",
            "nt",
        )
        .unwrap();
        let t = trans_r(&rule, &beer_schema()).unwrap();
        assert!(t.non_triggering);
    }

    #[test]
    fn bad_condition_fails_translation() {
        let rule = parse_rule(
            "WHEN INS(nosuch) IF NOT forall x (x in nosuch implies x.1 > 0) THEN abort",
            "bad",
        )
        .unwrap();
        assert!(trans_r(&rule, &beer_schema()).is_err());
    }
}
