//! Table 1 of the paper: "Translation of typical constraint constructs".
//!
//! Each row pairs a schematic CL construct with its aborting algebra
//! translation. The paper's right-hand column uses value-level shortcuts
//! (`π_i R − π_j S`); our translator produces tuple-level equivalents
//! (anti-joins), which fire the alarm in exactly the same situations. Both
//! forms are recorded here: `paper_translation` verbatim (rendered in
//! ASCII) and `program` as produced by [`crate::transc::trans_c`] on the
//! instantiated construct.
//!
//! The constructs are instantiated over the two-relation schema
//! `r(a int, b int)`, `s(c int, d int)` with `c(x) ≡ x.1 ≥ 0`,
//! `c1(x,y) ≡ x.1 = y.1`, `c2(x,y) ≡ x.2 <= y.2`, `i = 1`, `j = 1`.

use tm_algebra::Program;
use tm_calculus::parse_formula;
use tm_relational::{DatabaseSchema, RelationSchema, ValueType};

use crate::error::Result;
use crate::transc::trans_c;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row number (1-based, as in the paper).
    pub id: usize,
    /// The schematic construct, as the paper writes it.
    pub construct: &'static str,
    /// The instantiated CL source translated by this reproduction.
    pub instance: &'static str,
    /// The paper's translation (ASCII rendering of the table cell).
    pub paper_translation: &'static str,
    /// Our translated program.
    pub program: Program,
}

/// The `r(a, b)`, `s(c, d)` schema the rows are instantiated on.
pub fn table1_schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Int)]),
        RelationSchema::of("s", &[("c", ValueType::Int), ("d", ValueType::Int)]),
    ])
    .expect("static schema is valid")
}

/// Build all seven rows of Table 1.
pub fn table1_rows() -> Result<Vec<Table1Row>> {
    let schema = table1_schema();
    let specs: [(usize, &'static str, &'static str, &'static str); 7] = [
        (
            1,
            "(∀x)(x ∈ R ⇒ c(x))",
            "forall x (x in r implies x.1 >= 0)",
            "alarm(σ_{¬c'}(R))",
        ),
        (
            2,
            "(∀x)(x ∈ R ⇒ (∃y)(y ∈ S ∧ x.i = y.j))",
            "forall x (x in r implies exists y (y in s and x.1 = y.1))",
            "alarm(π_i(R) − π_j(S))",
        ),
        (
            3,
            "(∀x)(x ∈ R ⇒ (∀y)(y ∈ S ⇒ x.i ≠ y.j))",
            "forall x (x in r implies forall y (y in s implies x.1 != y.1))",
            "alarm(π_i(R) ∩ π_j(S))",
        ),
        (
            4,
            "(∀x,y)((x ∈ R ∧ y ∈ S ∧ c1(x,y)) ⇒ c2(x,y))",
            "forall x, y (x in r and y in s and x.1 = y.1 implies x.2 <= y.2)",
            "alarm(σ_{¬c2'}(R ⋈_{c1'} S))",
        ),
        (
            5,
            "(∃x)(x ∈ R ∧ c(x))",
            "exists x (x in r and x.1 >= 0)",
            "alarm(σ_{attr1=0}(CNT(σ_{c'}(R))))",
        ),
        (
            6,
            "c(AGGR(R, i))",
            "SUM(r, 1) <= 1000",
            "alarm(σ_{¬c'}(AGGR(R, i)))",
        ),
        (7, "c(CNT(R))", "CNT(r) < 100", "alarm(σ_{¬c'}(CNT(R)))"),
    ];
    let mut rows = Vec::with_capacity(specs.len());
    for (id, construct, instance, paper_translation) in specs {
        let formula = parse_formula(instance).expect("static instance parses");
        let program = trans_c(&formula, &schema)?;
        rows.push(Table1Row {
            id,
            construct,
            instance,
            paper_translation,
            program,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::Executor;
    use tm_relational::{Database, Tuple};

    fn db(r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
        let mut db = Database::new(table1_schema().into_shared());
        for &(a, b) in r {
            db.insert("r", Tuple::of((a, b))).unwrap();
        }
        for &(c, d) in s {
            db.insert("s", Tuple::of((c, d))).unwrap();
        }
        db
    }

    fn satisfied(program: &Program, db: &Database) -> bool {
        let mut working = db.clone();
        Executor
            .execute(&mut working, &program.clone().bracket())
            .is_committed()
    }

    #[test]
    fn all_rows_translate() {
        let rows = table1_rows().unwrap();
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert_eq!(row.program.len(), 1, "row {} is a single alarm", row.id);
            assert!(
                row.program.to_string().starts_with("alarm("),
                "row {} is aborting",
                row.id
            );
        }
    }

    #[test]
    fn row1_domain_semantics() {
        let rows = table1_rows().unwrap();
        let p = &rows[0].program;
        assert!(satisfied(p, &db(&[(1, 1)], &[])));
        assert!(!satisfied(p, &db(&[(-1, 1)], &[])));
    }

    #[test]
    fn row2_referential_semantics() {
        let rows = table1_rows().unwrap();
        let p = &rows[1].program;
        assert!(satisfied(p, &db(&[(1, 9)], &[(1, 0)])));
        assert!(!satisfied(p, &db(&[(2, 9)], &[(1, 0)])));
    }

    #[test]
    fn row3_exclusion_semantics() {
        let rows = table1_rows().unwrap();
        let p = &rows[2].program;
        assert!(satisfied(p, &db(&[(1, 1)], &[(2, 2)])));
        assert!(!satisfied(p, &db(&[(1, 1)], &[(1, 2)])));
    }

    #[test]
    fn row4_conditional_pair_semantics() {
        let rows = table1_rows().unwrap();
        let p = &rows[3].program;
        // matching keys require x.2 <= y.2
        assert!(satisfied(p, &db(&[(1, 5)], &[(1, 9)])));
        assert!(!satisfied(p, &db(&[(1, 9)], &[(1, 5)])));
        // non-matching keys unconstrained
        assert!(satisfied(p, &db(&[(1, 9)], &[(2, 5)])));
    }

    #[test]
    fn row5_existence_semantics() {
        let rows = table1_rows().unwrap();
        let p = &rows[4].program;
        assert!(satisfied(p, &db(&[(3, 0)], &[])));
        assert!(!satisfied(p, &db(&[], &[])));
        assert!(!satisfied(p, &db(&[(-3, 0)], &[])));
    }

    #[test]
    fn row6_aggregate_semantics() {
        let rows = table1_rows().unwrap();
        let p = &rows[5].program;
        assert!(satisfied(p, &db(&[(400, 0), (500, 0)], &[])));
        assert!(!satisfied(p, &db(&[(600, 0), (500, 0)], &[])));
    }

    #[test]
    fn row7_count_semantics() {
        let rows = table1_rows().unwrap();
        let p = &rows[6].program;
        let mut big = db(&[], &[]);
        for i in 0..99 {
            big.insert("r", Tuple::of((i, 0))).unwrap();
        }
        assert!(satisfied(p, &big));
        big.insert("r", Tuple::of((999, 0))).unwrap();
        assert!(!satisfied(p, &big));
    }
}
