//! `TransC` / `CalcToAlg` (Algorithm 5.6): translating CL conditions into
//! aborting extended relational algebra programs.
//!
//! The translation computes, for a condition `c`, a relational expression
//! whose value is the set of **violations** of `c`; the resulting program
//! is the single statement `alarm(violations)` — by Definition 5.1 the
//! transaction aborts exactly when a violation exists.
//!
//! The structural scheme (generalising Table 1):
//!
//! * a ∀-quantifier with a membership guard extends the *context* — the
//!   list of open variables with their range relations; the context
//!   relation is the product of the ranges,
//! * a quantifier-free matrix `ψ` yields `σ_{¬ψ'}(ctx)`,
//! * an ∃-block `(∃y1∈S1)…(ρ)` yields the anti-join
//!   `ctx ▷_{ρ'} (S1 × …)` — context tuples with no witness,
//! * boolean combinations map to set operations on violation sets over the
//!   same context: `viol(W1 ∧ W2) = viol(W1) ∪ viol(W2)`,
//!   `viol(W1 ∨ W2) = viol(W1) ∩ viol(W2)`,
//!   `viol(W1 ⇒ W2) = viol(W2) − viol(W1)`,
//!   `viol(¬W) = ctx − viol(W)`.
//!
//! A universal quantifier nested inside an existential one falls outside
//! the class (as it does for Table 1) and reports
//! [`TranslateError::Unsupported`].

use tm_algebra::{Program, RelExpr, ScalarExpr, Statement};
use tm_calculus::analysis::{analyze, ConstraintInfo};
use tm_calculus::ast::{AggFn, ArithFn, Atom, AttrSel, CmpOp, Formula, Quantifier, Term};
use tm_relational::DatabaseSchema;

use crate::error::{Result, TranslateError};
use crate::simplify::{simplify_rel, simplify_scalar};

/// One open (universally guarded) variable of the translation context.
#[derive(Debug, Clone)]
struct CtxVar {
    name: String,
    relation: String,
    offset: usize,
    arity: usize,
}

/// The translation context: open variables over their range relations.
#[derive(Debug, Clone)]
struct Ctx<'s> {
    schema: &'s DatabaseSchema,
    vars: Vec<CtxVar>,
}

impl<'s> Ctx<'s> {
    fn empty(schema: &'s DatabaseSchema) -> Ctx<'s> {
        Ctx {
            schema,
            vars: Vec::new(),
        }
    }

    fn arity(&self) -> usize {
        self.vars.iter().map(|v| v.arity).sum()
    }

    fn arity_of_relation(&self, rel: &str) -> Result<usize> {
        let base = tm_relational::auxiliary::base_of(rel);
        Ok(self
            .schema
            .relation(base)
            .map_err(|_| TranslateError::Unsupported {
                construct: rel.to_owned(),
                reason: "unknown relation".into(),
            })?
            .arity())
    }

    fn extended(&self, name: &str, relation: &str) -> Result<Ctx<'s>> {
        let arity = self.arity_of_relation(relation)?;
        let mut vars = self.vars.clone();
        vars.push(CtxVar {
            name: name.to_owned(),
            relation: relation.to_owned(),
            offset: self.arity(),
            arity,
        });
        Ok(Ctx {
            schema: self.schema,
            vars,
        })
    }

    fn lookup(&self, name: &str) -> Option<&CtxVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// The context relation: the product of the open ranges (the unit
    /// relation `row()` when no variable is open).
    fn rel_expr(&self) -> RelExpr {
        let mut it = self.vars.iter();
        match it.next() {
            None => RelExpr::Singleton(Vec::new()),
            Some(first) => {
                let mut e = RelExpr::relation(first.relation.clone());
                for v in it {
                    e = e.product(RelExpr::relation(v.relation.clone()));
                }
                e
            }
        }
    }
}

/// A violation set expression plus its tuple arity (which may exceed the
/// originating context's arity when ∀-quantifiers extended it).
struct Viol {
    expr: RelExpr,
    arity: usize,
}

fn project_to(viol: Viol, arity: usize) -> RelExpr {
    if viol.arity == arity {
        viol.expr
    } else {
        viol.expr.project_cols(&(0..arity).collect::<Vec<_>>())
    }
}

fn flatten_and(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other.clone()),
    }
}

fn and_all(mut conj: Vec<Formula>) -> Formula {
    let first = conj.remove(0);
    conj.into_iter().fold(first, Formula::and)
}

/// Find the membership guard for `x` in a ∀-body, removing it and
/// returning `(range relation, rest of the formula)`.
fn strip_guard(x: &str, w: &Formula) -> Option<(String, Formula)> {
    match w {
        Formula::Implies(l, r) => {
            let mut conj = Vec::new();
            flatten_and(l, &mut conj);
            let idx = conj
                .iter()
                .position(|c| matches!(c, Formula::Atom(Atom::Member { var, .. }) if var == x))?;
            let rel = match &conj[idx] {
                Formula::Atom(Atom::Member { rel, .. }) => rel.clone(),
                _ => unreachable!("position matched a member atom"),
            };
            conj.remove(idx);
            let rest = if conj.is_empty() {
                (**r).clone()
            } else {
                Formula::implies(and_all(conj), (**r).clone())
            };
            Some((rel, rest))
        }
        Formula::Or(a, b) => {
            // ¬(x∈R) ∨ ψ and ψ ∨ ¬(x∈R).
            let as_neg_member = |f: &Formula| match f {
                Formula::Not(inner) => match inner.as_ref() {
                    Formula::Atom(Atom::Member { var, rel }) if var == x => Some(rel.clone()),
                    _ => None,
                },
                _ => None,
            };
            if let Some(rel) = as_neg_member(a) {
                return Some((rel, (**b).clone()));
            }
            if let Some(rel) = as_neg_member(b) {
                return Some((rel, (**a).clone()));
            }
            None
        }
        Formula::Quant(q, y, inner) => {
            let (rel, rest) = strip_guard(x, inner)?;
            Some((rel, Formula::Quant(*q, y.clone(), Box::new(rest))))
        }
        _ => None,
    }
}

/// `(variable, range relation)` pairs of an ∃-block plus the predicate
/// conjuncts of its matrix.
type ExistsBlock = (Vec<(String, String)>, Vec<Formula>);

/// Flatten an ∃-block: collect `(var, range)` pairs and the predicate
/// conjuncts of the matrix.
fn flatten_exists(w: &Formula) -> Result<ExistsBlock> {
    match w {
        Formula::Quant(Quantifier::Exists, y, body) => {
            let mut conj = Vec::new();
            flatten_and(body, &mut conj);
            let idx = conj
                .iter()
                .position(|c| matches!(c, Formula::Atom(Atom::Member { var, .. }) if var == y))
                .ok_or_else(|| TranslateError::MissingGuard(y.clone()))?;
            let rel = match &conj[idx] {
                Formula::Atom(Atom::Member { rel, .. }) => rel.clone(),
                _ => unreachable!("position matched a member atom"),
            };
            conj.remove(idx);
            let mut evars = vec![(y.clone(), rel)];
            let mut preds = Vec::new();
            for c in conj {
                if matches!(c, Formula::Quant(Quantifier::Exists, ..)) {
                    let (mut more_vars, more_preds) = flatten_exists(&c)?;
                    evars.append(&mut more_vars);
                    preds.extend(more_preds);
                } else {
                    preds.push(c);
                }
            }
            Ok((evars, preds))
        }
        _ => Err(TranslateError::Unsupported {
            construct: w.to_string(),
            reason: "expected an existential quantifier".into(),
        }),
    }
}

fn term_to_scalar(ctx: &Ctx<'_>, t: &Term) -> Result<ScalarExpr> {
    match t {
        Term::Const(v) => Ok(ScalarExpr::Const(v.clone())),
        Term::Attr { var, sel } => {
            let cv = ctx.lookup(var).ok_or_else(|| TranslateError::Unsupported {
                construct: format!("{var}.{sel}"),
                reason: "variable not in translation context".into(),
            })?;
            let pos = match sel {
                AttrSel::Position(p) => *p,
                AttrSel::Name(n) => {
                    return Err(TranslateError::Unsupported {
                        construct: format!("{var}.{n}"),
                        reason: "attribute names must be resolved by analysis first".into(),
                    })
                }
            };
            Ok(ScalarExpr::Col(cv.offset + pos - 1))
        }
        Term::Arith(op, l, r) => {
            let aop = match op {
                ArithFn::Add => tm_algebra::ArithOp::Add,
                ArithFn::Sub => tm_algebra::ArithOp::Sub,
                ArithFn::Mul => tm_algebra::ArithOp::Mul,
                ArithFn::Div => tm_algebra::ArithOp::Div,
            };
            Ok(ScalarExpr::arith(
                aop,
                term_to_scalar(ctx, l)?,
                term_to_scalar(ctx, r)?,
            ))
        }
        Term::Agg { func, rel, sel } => {
            let pos = match sel {
                AttrSel::Position(p) => *p,
                AttrSel::Name(n) => {
                    return Err(TranslateError::Unsupported {
                        construct: format!("{func}({rel}, {n})"),
                        reason: "attribute names must be resolved by analysis first".into(),
                    })
                }
            };
            let f = match func {
                AggFn::Sum => tm_algebra::AggFunc::Sum,
                AggFn::Avg => tm_algebra::AggFunc::Avg,
                AggFn::Min => tm_algebra::AggFunc::Min,
                AggFn::Max => tm_algebra::AggFunc::Max,
            };
            Ok(ScalarExpr::Agg(
                f,
                Box::new(RelExpr::relation(rel.clone())),
                pos - 1,
            ))
        }
        Term::Cnt { rel } => Ok(ScalarExpr::Cnt(Box::new(RelExpr::relation(rel.clone())))),
    }
}

fn cmp_to_scalar(op: CmpOp) -> tm_algebra::CmpOp {
    match op {
        CmpOp::Lt => tm_algebra::CmpOp::Lt,
        CmpOp::Le => tm_algebra::CmpOp::Le,
        CmpOp::Eq => tm_algebra::CmpOp::Eq,
        CmpOp::Ne => tm_algebra::CmpOp::Ne,
        CmpOp::Ge => tm_algebra::CmpOp::Ge,
        CmpOp::Gt => tm_algebra::CmpOp::Gt,
    }
}

/// Attempt to translate a formula into a scalar predicate over the context
/// tuple. Returns `Ok(None)` when the formula contains quantifiers or
/// non-predicate constructs that need structural handling.
fn predicate(ctx: &Ctx<'_>, w: &Formula) -> Result<Option<ScalarExpr>> {
    match w {
        Formula::Atom(Atom::Cmp(op, l, r)) => Ok(Some(ScalarExpr::cmp(
            cmp_to_scalar(*op),
            term_to_scalar(ctx, l)?,
            term_to_scalar(ctx, r)?,
        ))),
        Formula::Atom(Atom::Member { var, rel }) => {
            match ctx.lookup(var) {
                // The variable already ranges over this relation: the atom
                // is identically true within the context.
                Some(cv) if &cv.relation == rel => Ok(Some(ScalarExpr::true_())),
                // Membership in a different relation needs a structural
                // translation (semi/anti-join) — not a scalar predicate.
                Some(_) => Ok(None),
                None => Err(TranslateError::Unsupported {
                    construct: w.to_string(),
                    reason: format!("variable `{var}` not in translation context"),
                }),
            }
        }
        Formula::Atom(Atom::TupleEq(a, b)) => {
            let (ca, cb) = match (ctx.lookup(a), ctx.lookup(b)) {
                (Some(x), Some(y)) => (x.clone(), y.clone()),
                _ => {
                    return Err(TranslateError::Unsupported {
                        construct: w.to_string(),
                        reason: "tuple comparison outside translation context".into(),
                    })
                }
            };
            let mut pred = ScalarExpr::true_();
            for i in 0..ca.arity.min(cb.arity) {
                let eq = ScalarExpr::col_eq(ca.offset + i, cb.offset + i);
                pred = if i == 0 {
                    eq
                } else {
                    ScalarExpr::and(pred, eq)
                };
            }
            Ok(Some(pred))
        }
        Formula::Not(x) => Ok(predicate(ctx, x)?.map(ScalarExpr::not)),
        Formula::And(l, r) => match (predicate(ctx, l)?, predicate(ctx, r)?) {
            (Some(a), Some(b)) => Ok(Some(ScalarExpr::and(a, b))),
            _ => Ok(None),
        },
        Formula::Or(l, r) => match (predicate(ctx, l)?, predicate(ctx, r)?) {
            (Some(a), Some(b)) => Ok(Some(ScalarExpr::or(a, b))),
            _ => Ok(None),
        },
        Formula::Implies(l, r) => match (predicate(ctx, l)?, predicate(ctx, r)?) {
            (Some(a), Some(b)) => Ok(Some(ScalarExpr::or(ScalarExpr::not(a), b))),
            _ => Ok(None),
        },
        Formula::Quant(..) => Ok(None),
    }
}

/// Compute the violation-set expression of `w` under `ctx`.
fn viol(ctx: &Ctx<'_>, w: &Formula) -> Result<Viol> {
    // Fast path: a quantifier-free matrix.
    if let Some(p) = predicate(ctx, w)? {
        return Ok(Viol {
            expr: ctx.rel_expr().select(simplify_scalar(ScalarExpr::not(p))),
            arity: ctx.arity(),
        });
    }
    match w {
        Formula::Quant(Quantifier::Forall, x, body) => {
            let (rel, rest) =
                strip_guard(x, body).ok_or_else(|| TranslateError::MissingGuard(x.clone()))?;
            let ctx2 = ctx.extended(x, &rel)?;
            viol(&ctx2, &rest)
        }
        Formula::Quant(Quantifier::Exists, _, _) => {
            let (evars, preds) = flatten_exists(w)?;
            let mut ctx2 = ctx.clone();
            for (y, rel) in &evars {
                ctx2 = ctx2.extended(y, rel)?;
            }
            let matrix = if preds.is_empty() {
                ScalarExpr::true_()
            } else {
                let mut combined: Option<ScalarExpr> = None;
                for p in &preds {
                    let sp = predicate(&ctx2, p)?.ok_or_else(|| TranslateError::Unsupported {
                        construct: p.to_string(),
                        reason: "quantifier nested inside an existential block".into(),
                    })?;
                    combined = Some(match combined {
                        None => sp,
                        Some(acc) => ScalarExpr::and(acc, sp),
                    });
                }
                combined.expect("at least one predicate")
            };
            let mut right_it = evars.iter();
            let first = right_it.next().expect("flatten_exists yields ≥1 var");
            let mut right = RelExpr::relation(first.1.clone());
            for (_, rel) in right_it {
                right = right.product(RelExpr::relation(rel.clone()));
            }
            Ok(Viol {
                expr: ctx.rel_expr().anti_join(right, simplify_scalar(matrix)),
                arity: ctx.arity(),
            })
        }
        Formula::And(l, r) => {
            let a = project_to(viol(ctx, l)?, ctx.arity());
            let b = project_to(viol(ctx, r)?, ctx.arity());
            Ok(Viol {
                expr: a.union(b),
                arity: ctx.arity(),
            })
        }
        Formula::Or(l, r) => {
            let a = project_to(viol(ctx, l)?, ctx.arity());
            let b = project_to(viol(ctx, r)?, ctx.arity());
            Ok(Viol {
                expr: a.intersect(b),
                arity: ctx.arity(),
            })
        }
        Formula::Implies(l, r) => {
            let a = project_to(viol(ctx, l)?, ctx.arity());
            let b = project_to(viol(ctx, r)?, ctx.arity());
            Ok(Viol {
                expr: b.difference(a),
                arity: ctx.arity(),
            })
        }
        Formula::Not(x) => {
            let v = project_to(viol(ctx, x)?, ctx.arity());
            Ok(Viol {
                expr: ctx.rel_expr().difference(v),
                arity: ctx.arity(),
            })
        }
        Formula::Atom(Atom::Member { var, rel }) => {
            // Membership of a context variable in a *different* relation:
            // violations are context tuples whose `var` component has no
            // equal tuple in `rel` — an anti-join on tuple equality.
            let cv = ctx
                .lookup(var)
                .ok_or_else(|| TranslateError::Unsupported {
                    construct: w.to_string(),
                    reason: format!("variable `{var}` not in translation context"),
                })?
                .clone();
            let right_arity = ctx.arity_of_relation(rel)?;
            let mut pred = ScalarExpr::true_();
            for i in 0..cv.arity.min(right_arity) {
                let eq = ScalarExpr::col_eq(cv.offset + i, ctx.arity() + i);
                pred = if i == 0 {
                    eq
                } else {
                    ScalarExpr::and(pred, eq)
                };
            }
            Ok(Viol {
                expr: ctx
                    .rel_expr()
                    .anti_join(RelExpr::relation(rel.clone()), pred),
                arity: ctx.arity(),
            })
        }
        Formula::Atom(_) => unreachable!("atoms are handled by the predicate fast path"),
    }
}

/// Crate-internal view of [`strip_guard`] for the differential optimizer.
pub(crate) fn strip_guard_pub(x: &str, w: &Formula) -> Option<(String, Formula)> {
    strip_guard(x, w)
}

/// Crate-internal view of [`flatten_and`] for the differential optimizer.
pub(crate) fn flatten_and_pub(f: &Formula, out: &mut Vec<Formula>) {
    flatten_and(f, out)
}

/// Translate a formula to a scalar predicate over an ad-hoc context of
/// `(variable, range relation)` pairs. `Ok(None)` when the formula is not
/// quantifier-free. Used by the shape classifier of the differential
/// optimizer.
pub(crate) fn predicate_over(
    schema: &DatabaseSchema,
    vars: &[(String, String)],
    w: &Formula,
) -> Result<Option<ScalarExpr>> {
    let mut ctx = Ctx::empty(schema);
    for (name, rel) in vars {
        ctx = ctx.extended(name, rel)?;
    }
    Ok(predicate(&ctx, w)?.map(simplify_scalar))
}

/// `CalcToAlg` on an analysed constraint: the violation-set expression.
pub fn calc_to_alg(info: &ConstraintInfo, schema: &DatabaseSchema) -> Result<RelExpr> {
    let v = viol(&Ctx::empty(schema), &info.formula)?;
    Ok(simplify_rel(v.expr))
}

/// `TransC` (Algorithm 5.6): translate a CL condition into an aborting
/// program `alarm(violations(c))`.
pub fn trans_c(condition: &Formula, schema: &DatabaseSchema) -> Result<Program> {
    let info = analyze(condition, schema)?;
    let expr = calc_to_alg(&info, schema)?;
    Ok(Program::new(vec![Statement::Alarm(expr)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::{Executor, Program as AProgram};
    use tm_calculus::parse_formula;
    use tm_relational::schema::beer_schema;
    use tm_relational::{Database, Tuple};

    fn beer_db() -> Database {
        let mut db = Database::new(beer_schema().into_shared());
        db.insert("brewery", Tuple::of(("heineken", "amsterdam", "nl")))
            .unwrap();
        db.insert("brewery", Tuple::of(("guinness", "dublin", "ie")))
            .unwrap();
        db.insert("beer", Tuple::of(("pils", "lager", "heineken", 5.0_f64)))
            .unwrap();
        db
    }

    /// Execute `alarm` program against a database: committed ⇔ constraint
    /// satisfied.
    fn check(program: &AProgram, db: &Database) -> bool {
        let mut working = db.clone();
        Executor
            .execute(&mut working, &program.clone().bracket())
            .is_committed()
    }

    fn translate(src: &str) -> AProgram {
        trans_c(&parse_formula(src).unwrap(), &beer_schema()).unwrap()
    }

    #[test]
    fn domain_constraint_form_and_semantics() {
        let p = translate("forall x (x in beer implies x.alcohol >= 0)");
        // Table 1 row 1: alarm(σ_{¬c'}(R)).
        assert_eq!(p.to_string().trim(), "alarm(select[(#3 < 0)](beer));");
        let mut db = beer_db();
        assert!(check(&p, &db));
        db.insert("beer", Tuple::of(("bad", "x", "heineken", -0.5_f64)))
            .unwrap();
        assert!(!check(&p, &db));
    }

    #[test]
    fn referential_constraint_is_antijoin() {
        let p = translate(
            "forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name))",
        );
        assert_eq!(
            p.to_string().trim(),
            "alarm(antijoin[(#2 = #4)](beer, brewery));"
        );
        let mut db = beer_db();
        assert!(check(&p, &db));
        db.insert("beer", Tuple::of(("orphan", "x", "nowhere", 5.0_f64)))
            .unwrap();
        assert!(!check(&p, &db));
    }

    #[test]
    fn exclusion_constraint() {
        // (∀x)(x∈beer ⟹ (∀y)(y∈brewery ⟹ x.name ≠ y.name))
        let p = translate(
            "forall x (x in beer implies \
             forall y (y in brewery implies x.name != y.name))",
        );
        let mut db = beer_db();
        assert!(check(&p, &db));
        db.insert("beer", Tuple::of(("heineken", "x", "heineken", 5.0_f64)))
            .unwrap();
        assert!(!check(&p, &db));
    }

    #[test]
    fn pairwise_constraint_with_join_condition() {
        // Table 1 row 4 shape: (∀x,y)((x∈R ∧ y∈S ∧ c1) ⟹ c2).
        let p = translate(
            "forall x, y (x in beer and y in beer and x.name = y.name \
             implies x.alcohol = y.alcohol)",
        );
        let mut db = beer_db();
        assert!(check(&p, &db));
        // Same name, different alcohol — but tuples differ in type column.
        db.insert("beer", Tuple::of(("pils", "ale", "heineken", 6.0_f64)))
            .unwrap();
        assert!(!check(&p, &db));
    }

    #[test]
    fn existence_constraint_via_unit_antijoin() {
        let p = translate("exists x (x in brewery and x.country = 'nl')");
        let mut db = beer_db();
        assert!(check(&p, &db));
        db.delete("brewery", &Tuple::of(("heineken", "amsterdam", "nl")))
            .unwrap();
        assert!(!check(&p, &db));
    }

    #[test]
    fn aggregate_constraints_translate() {
        let p = translate("CNT(beer) <= 2");
        let mut db = beer_db();
        assert!(check(&p, &db));
        db.insert("beer", Tuple::of(("a", "a", "guinness", 1.0_f64)))
            .unwrap();
        assert!(check(&p, &db));
        db.insert("beer", Tuple::of(("b", "b", "guinness", 1.0_f64)))
            .unwrap();
        assert!(!check(&p, &db));
    }

    #[test]
    fn per_group_aggregate_style() {
        // Aggregates may appear under quantifiers (closed over their own
        // relation): every beer is weaker than the global average + 2.
        let p = translate("forall x (x in beer implies x.alcohol <= AVG(beer, alcohol) + 2.0)");
        let db = beer_db();
        assert!(check(&p, &db));
    }

    #[test]
    fn conjunction_of_constraints() {
        let p = translate(
            "forall x (x in beer implies x.alcohol >= 0) and \
             forall x (x in beer implies x.alcohol <= 20)",
        );
        let mut db = beer_db();
        assert!(check(&p, &db));
        db.insert("beer", Tuple::of(("strong", "x", "heineken", 95.0_f64)))
            .unwrap();
        assert!(!check(&p, &db));
    }

    #[test]
    fn disjunction_of_constraints() {
        // Violated only when both disjuncts are violated.
        let p = translate("CNT(beer) <= 1 or CNT(brewery) <= 2");
        let mut db = beer_db();
        assert!(check(&p, &db)); // beer=1 ✓ (first disjunct holds)
        db.insert("beer", Tuple::of(("b2", "x", "guinness", 1.0_f64)))
            .unwrap();
        assert!(check(&p, &db)); // breweries=2 ✓ (second holds)
        db.insert("brewery", Tuple::of(("third", "c", "d")))
            .unwrap();
        assert!(!check(&p, &db)); // both violated
    }

    #[test]
    fn nested_exists_flattened() {
        // Every beer has a brewery which in turn has some beer of the same
        // type (contrived, exercises the two-variable ∃-block).
        let p = translate(
            "forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name and \
             exists z (z in beer and z.brewery = y.name)))",
        );
        let db = beer_db();
        assert!(check(&p, &db));
    }

    #[test]
    fn transition_constraint_translates_with_pre() {
        let p = translate("forall x (x in beer@pre implies exists y (y in beer and x == y))");
        let rendered = p.to_string();
        assert!(rendered.contains("beer@pre"), "{rendered}");
        assert!(rendered.contains("antijoin"), "{rendered}");
    }

    #[test]
    fn unsupported_forall_under_exists() {
        let r = trans_c(
            &parse_formula(
                "exists x (x in beer and forall y (y in brewery implies x.name != y.name))",
            )
            .unwrap(),
            &beer_schema(),
        );
        assert!(
            matches!(r, Err(TranslateError::Unsupported { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn missing_guard_reported() {
        // Parses and is "safe" by range analysis (membership occurs in the
        // conclusion) but has no guard usable for translation.
        let r = trans_c(
            &parse_formula("forall x (x.1 > 0 implies x in beer)").unwrap(),
            &beer_schema(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn alarm_abort_restores_state() {
        let p = translate("forall x (x in beer implies x.alcohol >= 0)");
        let mut db = beer_db();
        db.insert("beer", Tuple::of(("bad", "x", "heineken", -1.0_f64)))
            .unwrap();
        let before = db.clone();
        let out = Executor.execute(&mut db, &p.bracket());
        assert!(!out.is_committed());
        assert!(db.state_eq(&before));
    }

    #[test]
    fn agreement_with_ground_truth_on_examples() {
        use tm_calculus::{analyze as analyze_c, eval_constraint, StateSource};
        let sources = [
            "forall x (x in beer implies x.alcohol >= 0)",
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
            "CNT(beer) <= 1",
            "exists x (x in brewery and x.country = 'nl')",
            "forall x (x in beer implies x.alcohol >= 0) and CNT(brewery) <= 2",
        ];
        let mut dbs = vec![beer_db()];
        // A second database with violations of several kinds.
        let mut bad = beer_db();
        bad.insert("beer", Tuple::of(("o", "x", "nowhere", -3.0_f64)))
            .unwrap();
        bad.insert("beer", Tuple::of(("p", "x", "heineken", 2.0_f64)))
            .unwrap();
        dbs.push(bad);
        for db in &dbs {
            for src in sources {
                let f = parse_formula(src).unwrap();
                let info = analyze_c(&f, db.schema()).unwrap();
                let truth = eval_constraint(&info, &StateSource(db)).unwrap();
                let program = trans_c(&f, db.schema()).unwrap();
                let translated = check(&program, db);
                assert_eq!(truth, translated, "mismatch for `{src}` (truth={truth})");
            }
        }
    }
}
