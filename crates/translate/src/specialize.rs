//! Prepare-time constraint specialization — the `OptC` of Algorithm 5.4
//! applied against a transaction *template*.
//!
//! The paper leaves `OptC` open; the related work fills it in: simplified
//! weakest preconditions specialized against the update (Aït-Bouziad,
//! Guessarian & Vieille) and per-update simplified checking for denial
//! constraints (Martinenghi). This module implements both steps for the
//! condition shapes the translator already recognises:
//!
//! 1. **Differential abstraction** ([`TemplateDeltas`]): walk the modified
//!    template's statements and abstract, per relation, what the template
//!    does to it — nothing, a known list of symbolic rows, or something
//!    unanalyzable ([`RelationDelta`]).
//! 2. **Weakest-precondition reduction** ([`specialize_check`]): push the
//!    deltas through the rule condition. A domain check on a relation the
//!    template only inserts known rows into reduces to per-row *point
//!    checks* (`alarm(σ_{¬ψ}(⟨row⟩))`); a referential check reduces to
//!    per-row *point probes* (`alarm(⟨row⟩ ▷_ρ S)`); and a row whose
//!    substituted condition constant-folds to `false` is **dropped** with
//!    a recorded proof — the weakest precondition is `true`, the check
//!    cannot fire.
//!
//! ## Soundness
//!
//! Replacing a full check `alarm(σ_{¬ψ}(R))` with per-inserted-row checks
//! is valid only under the *integrity assumption*: the pre-transaction
//! state satisfies the constraint (the induction invariant of Definition
//! 3.5 that transaction modification maintains). On top of it, each
//! reduction demands:
//!
//! * **enumerable inserts** — the constrained relation's delta is
//!   [`RelationDelta::Inserted`]: every write to it is a grounded
//!   (column- and aggregate-free) singleton insert, so the inserted rows
//!   are known symbolically and re-evaluate to the same values at check
//!   time. Deletes and opaque writes poison the delta: a delete can
//!   re-violate nothing for domain checks but defeats row enumeration,
//!   and an opaque source may insert anything.
//! * **no aggregates** in the condition's predicate — an aggregate reads
//!   *other* relations, so an untouched row's check can change value
//!   mid-transaction; per-row reduction would miss it.
//! * **referential stability** — for `(∀x∈R)(∃y∈S)ρ`: `S`'s delta must be
//!   [`RelationDelta::Untouched`] or `Inserted` (no deletes), otherwise an
//!   *old* `R` row may lose its partner, which only the full check sees.
//!   `R = S` (self-referencing) is fine under the same no-deletes rule.
//! * **drop proofs respect evaluation order** — a row is dropped only
//!   when [`const_verdict`] decides the substituted predicate `false`
//!   under the evaluator's own left-to-right short-circuit semantics, so
//!   a predicate that would raise a runtime error is never folded away
//!   (contrast [`crate::simplify::simplify_scalar`], whose `x ∧ false ⇒
//!   false` rewrite is a whole-predicate optimization, not a drop proof).
//!
//! Like the differential checks of [`crate::differential`], a specialized
//! check evaluates the condition only on touched rows; a predicate that
//! errors on an *untouched* row (e.g. a division by a column value)
//! surfaces that error under the generic check and not under the
//! specialized one. The specialization-soundness suite in `txmod` pins the
//! equivalence on total predicates across all enforcement modes.

use std::collections::BTreeMap;
use std::fmt;

use tm_algebra::{RelExpr, ScalarExpr, Statement};
use tm_calculus::ast::{Atom, Formula, Quantifier};
use tm_relational::{auxiliary, DatabaseSchema, Value};

use crate::transc::{flatten_and_pub, predicate_over, strip_guard_pub};

/// The condition shapes the specializer (and the differential optimizer)
/// recognises, extracted from an *analysed* CL formula by
/// [`condition_shape`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionShape {
    /// `(∀x)(x∈R ⟹ ψ)` with quantifier-free `ψ` over `x` only.
    Domain {
        /// The constrained relation `R`.
        rel: String,
        /// `¬ψ` as a scalar predicate over an `R`-tuple.
        violation_pred: ScalarExpr,
    },
    /// `(∀x)(x∈R ⟹ (∃y)(y∈S ∧ ρ))` with quantifier-free `ρ`.
    Referential {
        /// The referencing relation `R`.
        rel_r: String,
        /// The referenced relation `S`.
        rel_s: String,
        /// `ρ` as a predicate over the concatenated `(R, S)` tuple.
        match_pred: ScalarExpr,
    },
    /// Anything else — never specialized.
    Other,
}

/// Classify an **analysed** condition (the output of
/// `tm_calculus::analysis::analyze`) into a [`ConditionShape`].
pub fn condition_shape(formula: &Formula, schema: &DatabaseSchema) -> ConditionShape {
    let Formula::Quant(Quantifier::Forall, x, body) = formula else {
        return ConditionShape::Other;
    };
    let Some((rel, rest)) = strip_guard_pub(x, body) else {
        return ConditionShape::Other;
    };
    if auxiliary::is_auxiliary(&rel) {
        // Pre-state ranges are immutable; neither differential nor
        // template treatment of the outer relation applies.
        return ConditionShape::Other;
    }
    // Try domain: rest is quantifier-free.
    if let Ok(Some(pred)) = predicate_over(
        schema,
        &[(x.clone(), rel.clone())],
        &Formula::not(rest.clone()),
    ) {
        return ConditionShape::Domain {
            rel,
            violation_pred: pred,
        };
    }
    // Try referential: rest = (∃y)(y∈S ∧ ρ).
    if let Formula::Quant(Quantifier::Exists, y, ebody) = &rest {
        let mut conj = Vec::new();
        flatten_and_pub(ebody, &mut conj);
        let mem_idx = conj
            .iter()
            .position(|c| matches!(c, Formula::Atom(Atom::Member { var, .. }) if var == y));
        if let Some(i) = mem_idx {
            let rel_s = match &conj[i] {
                Formula::Atom(Atom::Member { rel, .. }) => rel.clone(),
                _ => unreachable!("matched a member atom"),
            };
            if auxiliary::is_auxiliary(&rel_s) {
                return ConditionShape::Other;
            }
            conj.remove(i);
            if conj.is_empty() {
                return ConditionShape::Other;
            }
            let mut rho = conj.remove(0);
            for c in conj {
                rho = Formula::and(rho, c);
            }
            if let Ok(Some(pred)) = predicate_over(
                schema,
                &[(x.clone(), rel.clone()), (y.clone(), rel_s.clone())],
                &rho,
            ) {
                return ConditionShape::Referential {
                    rel_r: rel,
                    rel_s,
                    match_pred: pred,
                };
            }
        }
    }
    ConditionShape::Other
}

/// What a transaction template provably does to one relation, in
/// statement order up to the point of observation.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationDelta {
    /// No statement so far writes the relation.
    Untouched,
    /// Every write so far is a grounded singleton insert; the rows (as
    /// symbolic expressions over `?i` parameters and constants).
    Inserted(Vec<Vec<ScalarExpr>>),
    /// A delete, update, or unanalyzable insert touched the relation —
    /// nothing can be proven about its contents.
    Opaque,
}

/// The per-relation differential abstraction of a template's statements.
/// Feed statements in execution order with [`TemplateDeltas::observe`];
/// query with [`TemplateDeltas::of`]. The abstraction at any point covers
/// exactly the statements observed so far — which is what a check appended
/// at that point can see.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TemplateDeltas {
    map: BTreeMap<String, RelationDelta>,
}

impl TemplateDeltas {
    /// An empty abstraction (all relations untouched).
    pub fn new() -> TemplateDeltas {
        TemplateDeltas::default()
    }

    /// Fold one statement into the abstraction.
    pub fn observe(&mut self, stmt: &Statement) {
        match stmt {
            Statement::Insert { relation, source } => match enumerable_rows(source) {
                Some(rows) => self.push_rows(relation, rows.into_iter()),
                None => {
                    self.map.insert(relation.clone(), RelationDelta::Opaque);
                }
            },
            Statement::Delete { relation, .. } | Statement::Update { relation, .. } => {
                self.map.insert(relation.clone(), RelationDelta::Opaque);
            }
            // Reads and control flow write nothing.
            Statement::Assign { .. } | Statement::Alarm(_) | Statement::Abort => {}
        }
    }

    /// The abstraction for `rel` over the statements observed so far.
    pub fn of(&self, rel: &str) -> &RelationDelta {
        self.map.get(rel).unwrap_or(&RelationDelta::Untouched)
    }

    fn push_rows(&mut self, relation: &str, rows: impl Iterator<Item = Vec<ScalarExpr>>) {
        match self
            .map
            .entry(relation.to_owned())
            .or_insert_with(|| RelationDelta::Inserted(Vec::new()))
        {
            RelationDelta::Inserted(known) => known.extend(rows),
            d @ RelationDelta::Untouched => *d = RelationDelta::Inserted(rows.collect()),
            RelationDelta::Opaque => {}
        }
    }
}

/// The rows of an insert source as symbolic tuples, when they are
/// statically enumerable: a grounded (column-, parameter- and
/// aggregate-free) singleton, or a literal relation constant. `None`
/// for anything else — the insert is opaque to differential analysis.
/// This is the row-enumeration rule shared by prepare-time
/// specialization ([`TemplateDeltas::observe`]) and catalog static
/// analysis.
pub fn enumerable_rows(source: &RelExpr) -> Option<Vec<Vec<ScalarExpr>>> {
    match source {
        RelExpr::Singleton(row) if row.iter().all(grounded) => Some(vec![row.clone()]),
        // Literal tuples are constant rows — just as enumerable as a
        // grounded singleton.
        RelExpr::Literal(tuples) => Some(
            tuples
                .iter()
                .map(|t| {
                    t.values()
                        .iter()
                        .map(|v| ScalarExpr::Const(v.clone()))
                        .collect()
                })
                .collect(),
        ),
        _ => None,
    }
}

/// The differential abstraction of a whole program — every statement
/// folded in order. This is the reusable weakest-precondition entry
/// point for *static* callers: the analyzer abstracts a rule's repair
/// action once and pushes the result through other rules' conditions
/// via [`specialize_check`], exactly as the prepare path does for
/// transaction templates.
pub fn action_deltas(program: &tm_algebra::Program) -> TemplateDeltas {
    let mut deltas = TemplateDeltas::new();
    for stmt in program.statements() {
        deltas.observe(stmt);
    }
    deltas
}

/// The outcome of specializing one rule's check against a template.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecializedCheck {
    /// The template provably cannot violate the rule: the check is
    /// omitted, with the proof recorded for provenance.
    Dropped {
        /// Human-readable proof of why the check cannot fire.
        proof: String,
    },
    /// The check reduces to per-row point checks/probes (one `alarm`
    /// statement per non-dropped inserted row).
    Probe {
        /// The replacement statements, in row order.
        statements: Vec<Statement>,
    },
    /// No sound reduction applies; keep the generic check.
    Generic,
}

impl fmt::Display for SpecializedCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecializedCheck::Dropped { proof } => write!(f, "dropped({proof})"),
            SpecializedCheck::Probe { statements } => {
                write!(f, "reduced({} probe(s))", statements.len())
            }
            SpecializedCheck::Generic => write!(f, "generic"),
        }
    }
}

/// Specialize one rule's check against the template deltas observed so
/// far. `shape` is the rule condition's [`ConditionShape`]; the caller
/// applies the result only to single-`alarm` check programs (compensating
/// actions always run generically). See the module docs for the soundness
/// argument behind each gate.
pub fn specialize_check(
    shape: &ConditionShape,
    deltas: &TemplateDeltas,
    schema: &DatabaseSchema,
) -> SpecializedCheck {
    match shape {
        ConditionShape::Domain {
            rel,
            violation_pred,
        } => {
            let RelationDelta::Inserted(rows) = deltas.of(rel) else {
                return SpecializedCheck::Generic;
            };
            if violation_pred.has_aggregates() || !arity_matches(schema, rel, rows) {
                return SpecializedCheck::Generic;
            }
            let mut statements = Vec::new();
            for row in rows {
                // Weakest precondition of this row: substitute it into the
                // violation predicate and decide constant-false under the
                // evaluator's own semantics. Deliberately NOT routed
                // through `simplify_scalar`, whose `x ∧ false ⇒ false`
                // fold would erase a left operand that errors at runtime.
                let wp = violation_pred.substitute_cols(row);
                if const_verdict(&wp) == Some(false) {
                    continue; // provably satisfied — no check needed
                }
                statements.push(Statement::Alarm(
                    RelExpr::Singleton(row.clone()).select(violation_pred.clone()),
                ));
            }
            if statements.is_empty() {
                SpecializedCheck::Dropped {
                    proof: format!(
                        "weakest precondition of every inserted `{rel}` row \
                         constant-folds to false"
                    ),
                }
            } else {
                SpecializedCheck::Probe { statements }
            }
        }
        ConditionShape::Referential {
            rel_r,
            rel_s,
            match_pred,
        } => {
            let RelationDelta::Inserted(rows) = deltas.of(rel_r) else {
                return SpecializedCheck::Generic;
            };
            // Old rows keep their partners only if S loses nothing.
            if matches!(deltas.of(rel_s), RelationDelta::Opaque)
                || match_pred.has_aggregates()
                || !arity_matches(schema, rel_r, rows)
            {
                return SpecializedCheck::Generic;
            }
            let statements = rows
                .iter()
                .map(|row| {
                    Statement::Alarm(
                        RelExpr::Singleton(row.clone())
                            .anti_join(RelExpr::relation(rel_s.clone()), match_pred.clone()),
                    )
                })
                .collect();
            SpecializedCheck::Probe { statements }
        }
        ConditionShape::Other => SpecializedCheck::Generic,
    }
}

/// A scalar expression the specializer may track as a symbolic row value:
/// no columns (nothing to refer to), no aggregates (value could change
/// between the insert and the check).
fn grounded(e: &ScalarExpr) -> bool {
    e.max_col().is_none() && !e.has_aggregates()
}

/// Every tracked row must have the relation's arity, so substituted
/// predicates line up column-for-column (a mis-sized row would fail the
/// insert's validation at runtime before any check runs, but the probe
/// statements should still be well-formed).
fn arity_matches(schema: &DatabaseSchema, rel: &str, rows: &[Vec<ScalarExpr>]) -> bool {
    match schema.relation(rel) {
        Ok(rs) => rows.iter().all(|r| r.len() == rs.arity()),
        Err(_) => false,
    }
}

/// Decide a predicate's constant truth value under the evaluator's exact
/// semantics — left-to-right `∧`/`∨` short-circuiting included — or
/// `None` when the value depends on parameters, data, or a possible
/// runtime error. Only a `Some(false)` verdict may drop a check: it
/// proves the generic evaluation returns `false` *without erroring*.
pub fn const_verdict(e: &ScalarExpr) -> Option<bool> {
    match e {
        ScalarExpr::Const(Value::Bool(b)) => Some(*b),
        ScalarExpr::And(l, r) => match const_verdict(l) {
            // Left false short-circuits: the right side (errors included)
            // is never evaluated.
            Some(false) => Some(false),
            Some(true) => const_verdict(r),
            None => None,
        },
        ScalarExpr::Or(l, r) => match const_verdict(l) {
            Some(true) => Some(true),
            Some(false) => const_verdict(r),
            None => None,
        },
        ScalarExpr::Not(inner) => const_verdict(inner).map(|b| !b),
        ScalarExpr::Cmp(op, l, r) => match (l.as_ref(), r.as_ref()) {
            // Comparison of non-null constants is total — no error path.
            (ScalarExpr::Const(a), ScalarExpr::Const(b)) if !a.is_null() && !b.is_null() => {
                Some(op.test(a.compare(b)))
            }
            _ => None,
        },
        ScalarExpr::IsNull(inner) => match inner.as_ref() {
            ScalarExpr::Const(v) => Some(v.is_null()),
            _ => None,
        },
        // Parameters are opaque; columns, arithmetic (division can
        // error), and aggregates (data-dependent) are undecidable here.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::expr::CmpOp;
    use tm_calculus::analysis::analyze;
    use tm_relational::schema::beer_schema;
    use tm_rules::parse_rule;

    fn shape_of(rule_text: &str) -> ConditionShape {
        let schema = beer_schema();
        let rule = parse_rule(rule_text, "r").unwrap();
        let info = analyze(rule.condition(), &schema).unwrap();
        condition_shape(&info.formula, &schema)
    }

    fn beer_row(alcohol: ScalarExpr) -> Vec<ScalarExpr> {
        vec![
            ScalarExpr::str("pils"),
            ScalarExpr::str("lager"),
            ScalarExpr::str("acme"),
            alcohol,
        ]
    }

    fn insert(rel: &str, row: Vec<ScalarExpr>) -> Statement {
        Statement::Insert {
            relation: rel.into(),
            source: RelExpr::Singleton(row),
        }
    }

    #[test]
    fn shapes_match_the_differential_classifier() {
        assert!(matches!(
            shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort"),
            ConditionShape::Domain { ref rel, .. } if rel == "beer"
        ));
        assert!(matches!(
            shape_of(
                "IF NOT forall x (x in beer implies \
                 exists y (y in brewery and x.brewery = y.name)) THEN abort"
            ),
            ConditionShape::Referential { ref rel_r, ref rel_s, .. }
                if rel_r == "beer" && rel_s == "brewery"
        ));
        assert!(matches!(
            shape_of("IF NOT CNT(beer) <= 100 THEN abort"),
            ConditionShape::Other
        ));
    }

    #[test]
    fn domain_check_reduces_to_per_row_point_checks() {
        let shape = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::param(0))));
        deltas.observe(&insert("beer", beer_row(ScalarExpr::param(1))));
        let SpecializedCheck::Probe { statements } =
            specialize_check(&shape, &deltas, &beer_schema())
        else {
            panic!("expected probe reduction");
        };
        assert_eq!(statements.len(), 2);
        // Each probe keeps the ORIGINAL violation predicate over the
        // singleton row, so runtime behaviour (errors included) matches
        // the generic per-row slice exactly.
        let rendered = format!("{}", statements[0]);
        assert!(rendered.contains("alarm"), "got {rendered}");
        assert!(rendered.contains("?0"), "got {rendered}");
    }

    #[test]
    fn constant_safe_rows_are_dropped_with_proof() {
        let shape = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::double(5.0))));
        match specialize_check(&shape, &deltas, &beer_schema()) {
            SpecializedCheck::Dropped { proof } => {
                assert!(proof.contains("weakest precondition"), "got {proof}")
            }
            other => panic!("expected drop, got {other}"),
        }
    }

    #[test]
    fn mixed_rows_drop_only_the_proven_ones() {
        let shape = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::double(5.0))));
        deltas.observe(&insert("beer", beer_row(ScalarExpr::param(0))));
        let SpecializedCheck::Probe { statements } =
            specialize_check(&shape, &deltas, &beer_schema())
        else {
            panic!("expected probe reduction");
        };
        assert_eq!(statements.len(), 1);
    }

    #[test]
    fn null_valued_rows_are_never_folded_away() {
        // `Null < 0` evaluates to Null (not false) — the check must stay.
        let shape = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::Const(Value::Null))));
        assert!(matches!(
            specialize_check(&shape, &deltas, &beer_schema()),
            SpecializedCheck::Probe { .. }
        ));
    }

    #[test]
    fn parameters_are_opaque_to_the_drop_proof() {
        let shape = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::param(0))));
        assert!(matches!(
            specialize_check(&shape, &deltas, &beer_schema()),
            SpecializedCheck::Probe { .. }
        ));
    }

    #[test]
    fn referential_check_reduces_to_point_probes_and_never_drops() {
        let shape = shape_of(
            "IF NOT forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name)) THEN abort",
        );
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::double(5.0))));
        let SpecializedCheck::Probe { statements } =
            specialize_check(&shape, &deltas, &beer_schema())
        else {
            panic!("expected probe reduction");
        };
        assert_eq!(statements.len(), 1);
        assert!(format!("{}", statements[0]).contains("antijoin"));
    }

    #[test]
    fn self_referencing_relation_specializes_under_insert_only_deltas() {
        // R = S: the inserted rows may satisfy each other; with no deletes
        // on S the old rows keep their partners, so probes are sound.
        let shape = ConditionShape::Referential {
            rel_r: "brewery".into(),
            rel_s: "brewery".into(),
            match_pred: ScalarExpr::col_eq(1, 4),
        };
        let row = vec![
            ScalarExpr::str("acme"),
            ScalarExpr::str("ghent"),
            ScalarExpr::str("be"),
        ];
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("brewery", row));
        assert!(matches!(
            specialize_check(&shape, &deltas, &beer_schema()),
            SpecializedCheck::Probe { .. }
        ));
    }

    #[test]
    fn deletes_on_the_referenced_relation_block_specialization() {
        let shape = shape_of(
            "IF NOT forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name)) THEN abort",
        );
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::double(5.0))));
        deltas.observe(&Statement::Delete {
            relation: "brewery".into(),
            source: RelExpr::relation("brewery"),
        });
        assert!(matches!(
            specialize_check(&shape, &deltas, &beer_schema()),
            SpecializedCheck::Generic
        ));
    }

    #[test]
    fn empty_differentials_stay_generic() {
        let domain = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let deltas = TemplateDeltas::new();
        assert_eq!(*deltas.of("beer"), RelationDelta::Untouched);
        assert!(matches!(
            specialize_check(&domain, &deltas, &beer_schema()),
            SpecializedCheck::Generic
        ));
        assert!(matches!(
            specialize_check(&ConditionShape::Other, &deltas, &beer_schema()),
            SpecializedCheck::Generic
        ));
    }

    #[test]
    fn opaque_writes_poison_the_delta() {
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::double(5.0))));
        // A set-valued insert makes the relation opaque, retroactively.
        deltas.observe(&Statement::Insert {
            relation: "beer".into(),
            source: RelExpr::relation("beer"),
        });
        assert_eq!(*deltas.of("beer"), RelationDelta::Opaque);
        // Column-referencing singleton rows are not grounded either.
        let mut d2 = TemplateDeltas::new();
        d2.observe(&insert("beer", beer_row(ScalarExpr::col(0))));
        assert_eq!(*d2.of("beer"), RelationDelta::Opaque);
        // Updates poison too.
        let mut d3 = TemplateDeltas::new();
        d3.observe(&Statement::Update {
            relation: "beer".into(),
            pred: ScalarExpr::true_(),
            set: vec![],
        });
        assert_eq!(*d3.of("beer"), RelationDelta::Opaque);
    }

    #[test]
    fn alarms_and_assigns_write_nothing() {
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&Statement::Alarm(RelExpr::relation("beer")));
        deltas.observe(&Statement::Assign {
            target: "tmp".into(),
            expr: RelExpr::relation("beer"),
        });
        deltas.observe(&Statement::Abort);
        assert_eq!(*deltas.of("beer"), RelationDelta::Untouched);
    }

    #[test]
    fn arity_mismatched_rows_stay_generic() {
        let shape = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", vec![ScalarExpr::str("short")]));
        assert!(matches!(
            specialize_check(&shape, &deltas, &beer_schema()),
            SpecializedCheck::Generic
        ));
    }

    #[test]
    fn const_verdict_decides_only_error_free_constants() {
        let div_err = ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::arith(
                tm_algebra::expr::ArithOp::Div,
                ScalarExpr::int(1),
                ScalarExpr::int(0),
            ),
            ScalarExpr::int(1),
        );
        // Left-to-right short-circuit: a false left skips the erroring
        // right, so the conjunction is decidably false...
        assert_eq!(
            const_verdict(&ScalarExpr::and(ScalarExpr::false_(), div_err.clone())),
            Some(false)
        );
        // ...but an erroring left is never skipped.
        assert_eq!(
            const_verdict(&ScalarExpr::and(div_err.clone(), ScalarExpr::false_())),
            None
        );
        assert_eq!(
            const_verdict(&ScalarExpr::or(ScalarExpr::true_(), div_err.clone())),
            Some(true)
        );
        assert_eq!(
            const_verdict(&ScalarExpr::or(div_err, ScalarExpr::true_())),
            None
        );
        assert_eq!(
            const_verdict(&ScalarExpr::not(ScalarExpr::not(ScalarExpr::true_()))),
            Some(true)
        );
        // Constant comparisons are total; Null comparisons are not decided.
        assert_eq!(
            const_verdict(&ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::int(3),
                ScalarExpr::int(5)
            )),
            Some(true)
        );
        assert_eq!(
            const_verdict(&ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::Const(Value::Null),
                ScalarExpr::int(5)
            )),
            None
        );
        assert_eq!(
            const_verdict(&ScalarExpr::IsNull(Box::new(ScalarExpr::Const(
                Value::Null
            )))),
            Some(true)
        );
        assert_eq!(const_verdict(&ScalarExpr::param(0)), None);
        assert_eq!(const_verdict(&ScalarExpr::col(0)), None);
    }

    #[test]
    fn specialize_check_is_idempotent_on_its_probe_output() {
        // Re-observing the probe statements (alarms only) changes no
        // deltas, so specializing again yields the same reduction.
        let shape = shape_of("IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort");
        let mut deltas = TemplateDeltas::new();
        deltas.observe(&insert("beer", beer_row(ScalarExpr::param(0))));
        let first = specialize_check(&shape, &deltas, &beer_schema());
        if let SpecializedCheck::Probe { statements } = &first {
            for s in statements {
                deltas.observe(s);
            }
        }
        assert_eq!(first, specialize_check(&shape, &deltas, &beer_schema()));
    }
}
