#![warn(missing_docs)]

//! # `tm-translate` — integrity rule translation and optimization
//!
//! Section 5.2 of Grefen (VLDB 1993): before integrity rules can be used
//! for transaction modification, they are **optimized** (`OptR`,
//! Algorithm 5.4) and **translated** (`TransR`, Algorithm 5.5) into
//! extended relational algebra programs.
//!
//! * [`transc`] — `TransC` / `CalcToAlg` (Algorithm 5.6): translation of
//!   CL conditions into *aborting* programs built around the `alarm`
//!   statement of Definition 5.1. The supported class generalises Table 1:
//!   any ∀-prefix with membership guards over a matrix that is
//!   quantifier-free, an ∃-block with a quantifier-free matrix, or a
//!   boolean combination of such forms.
//! * [`table1`] — the seven construct classes of Table 1 with their
//!   verbatim paper translations, used by the `table1` experiment and the
//!   golden tests.
//! * [`transr`] — `TransR` / `TransCA` (Algorithm 5.5): aborting rules
//!   translate their condition; compensating rules keep their response
//!   action as the triggered program.
//! * [`simplify`] — syntactic condition/program optimization (`OptC`):
//!   double-negation elimination, constant folding, select/projection
//!   simplification.
//! * [`differential`] — the differential-relation optimization the paper
//!   points to in §5.2.1 (refs \[18, 5, 7\]): checks are specialised per
//!   trigger to touch only the `R@ins` / `R@del` delta relations.
//! * [`specialize`] — prepare-time constraint specialization: weakest-
//!   precondition pruning and per-row point-probe reduction of checks
//!   against a transaction *template*'s insert/delete differentials.

pub mod differential;
pub mod error;
pub mod simplify;
pub mod specialize;
pub mod table1;
pub mod transc;
pub mod transr;

pub use differential::{differential_programs, DifferentialProgram};
pub use error::{Result, TranslateError};
pub use specialize::{
    action_deltas, condition_shape, const_verdict, enumerable_rows, specialize_check,
    ConditionShape, RelationDelta, SpecializedCheck, TemplateDeltas,
};
pub use table1::{table1_rows, Table1Row};
pub use transc::trans_c;
pub use transr::{trans_r, TranslatedRule};
