//! Syntactic optimization of predicates and relational expressions —
//! the `OptC` role of Algorithm 5.4.
//!
//! The paper leaves `OptC`'s functionality open ("can be chosen freely
//! within the boundaries of the equivalence criterium") and lists candidate
//! techniques; we implement the classic syntactic ones here (constant
//! folding, double-negation and comparison-negation elimination,
//! select-fusion). The semantic heavyweight — differential relations — has
//! its own module ([`crate::differential`]).

use tm_algebra::{RelExpr, ScalarExpr};
use tm_relational::Value;

/// Simplify a scalar predicate, preserving semantics.
pub fn simplify_scalar(e: ScalarExpr) -> ScalarExpr {
    match e {
        ScalarExpr::Not(inner) => match simplify_scalar(*inner) {
            // ¬¬e ⇒ e
            ScalarExpr::Not(x) => *x,
            // ¬(a ϑ b) ⇒ a ϑ̄ b
            ScalarExpr::Cmp(op, l, r) => ScalarExpr::Cmp(op.negate(), l, r),
            // ¬true ⇒ false, ¬false ⇒ true
            ScalarExpr::Const(Value::Bool(b)) => ScalarExpr::Const(Value::Bool(!b)),
            other => ScalarExpr::not(other),
        },
        ScalarExpr::And(l, r) => {
            let l = simplify_scalar(*l);
            let r = simplify_scalar(*r);
            match (l, r) {
                (ScalarExpr::Const(Value::Bool(true)), x)
                | (x, ScalarExpr::Const(Value::Bool(true))) => x,
                (ScalarExpr::Const(Value::Bool(false)), _)
                | (_, ScalarExpr::Const(Value::Bool(false))) => ScalarExpr::false_(),
                (l, r) => ScalarExpr::and(l, r),
            }
        }
        ScalarExpr::Or(l, r) => {
            let l = simplify_scalar(*l);
            let r = simplify_scalar(*r);
            match (l, r) {
                (ScalarExpr::Const(Value::Bool(false)), x)
                | (x, ScalarExpr::Const(Value::Bool(false))) => x,
                (ScalarExpr::Const(Value::Bool(true)), _)
                | (_, ScalarExpr::Const(Value::Bool(true))) => ScalarExpr::true_(),
                (l, r) => ScalarExpr::or(l, r),
            }
        }
        ScalarExpr::Cmp(op, l, r) => {
            let l = simplify_scalar(*l);
            let r = simplify_scalar(*r);
            if let (ScalarExpr::Const(a), ScalarExpr::Const(b)) = (&l, &r) {
                // Fold constant comparisons of comparable values.
                if !a.is_null() && !b.is_null() {
                    return ScalarExpr::Const(Value::Bool(op.test(a.compare(b))));
                }
            }
            ScalarExpr::cmp(op, l, r)
        }
        ScalarExpr::Arith(op, l, r) => {
            let l = simplify_scalar(*l);
            let r = simplify_scalar(*r);
            ScalarExpr::arith(op, l, r)
        }
        ScalarExpr::IsNull(inner) => {
            let inner = simplify_scalar(*inner);
            if let ScalarExpr::Const(v) = &inner {
                return ScalarExpr::Const(Value::Bool(v.is_null()));
            }
            ScalarExpr::IsNull(Box::new(inner))
        }
        ScalarExpr::Agg(f, rel, col) => ScalarExpr::Agg(f, Box::new(simplify_rel(*rel)), col),
        ScalarExpr::Cnt(rel) => ScalarExpr::Cnt(Box::new(simplify_rel(*rel))),
        // A parameter placeholder is an opaque constant term: its value is
        // unknown until bind time, so no fold may look through it (the
        // `Cmp` fold above only fires on two `Const` operands, which keeps
        // `?i = c` comparisons intact by construction).
        leaf @ (ScalarExpr::Const(_) | ScalarExpr::Param(_) | ScalarExpr::Col(_)) => leaf,
    }
}

/// Simplify a relational expression, preserving semantics.
pub fn simplify_rel(e: RelExpr) -> RelExpr {
    match e {
        RelExpr::Select(input, pred) => {
            let input = simplify_rel(*input);
            let pred = simplify_scalar(pred);
            match (input, pred) {
                // σ_true(E) ⇒ E
                (input, ScalarExpr::Const(Value::Bool(true))) => input,
                // σ_p1(σ_p2(E)) ⇒ σ_{p2 ∧ p1}(E)
                (RelExpr::Select(inner, p2), p1) => {
                    RelExpr::Select(inner, simplify_scalar(ScalarExpr::and(p2, p1)))
                }
                (input, pred) => RelExpr::Select(Box::new(input), pred),
            }
        }
        RelExpr::Project(input, exprs) => RelExpr::Project(
            Box::new(simplify_rel(*input)),
            exprs.into_iter().map(simplify_scalar).collect(),
        ),
        RelExpr::Join(l, r, p) => RelExpr::Join(
            Box::new(simplify_rel(*l)),
            Box::new(simplify_rel(*r)),
            simplify_scalar(p),
        ),
        RelExpr::SemiJoin(l, r, p) => RelExpr::SemiJoin(
            Box::new(simplify_rel(*l)),
            Box::new(simplify_rel(*r)),
            simplify_scalar(p),
        ),
        RelExpr::AntiJoin(l, r, p) => RelExpr::AntiJoin(
            Box::new(simplify_rel(*l)),
            Box::new(simplify_rel(*r)),
            simplify_scalar(p),
        ),
        RelExpr::Union(l, r) => {
            RelExpr::Union(Box::new(simplify_rel(*l)), Box::new(simplify_rel(*r)))
        }
        RelExpr::Difference(l, r) => {
            RelExpr::Difference(Box::new(simplify_rel(*l)), Box::new(simplify_rel(*r)))
        }
        RelExpr::Intersect(l, r) => {
            RelExpr::Intersect(Box::new(simplify_rel(*l)), Box::new(simplify_rel(*r)))
        }
        RelExpr::Product(l, r) => {
            // σ over a product with a join-able predicate stays as written;
            // the evaluator treats Join and filtered Product identically.
            RelExpr::Product(Box::new(simplify_rel(*l)), Box::new(simplify_rel(*r)))
        }
        RelExpr::Singleton(exprs) => {
            RelExpr::Singleton(exprs.into_iter().map(simplify_scalar).collect())
        }
        leaf @ (RelExpr::Rel(_) | RelExpr::Literal(_)) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::CmpOp;

    #[test]
    fn double_negation_eliminated() {
        let e = ScalarExpr::not(ScalarExpr::not(ScalarExpr::col(0)));
        assert_eq!(simplify_scalar(e), ScalarExpr::col(0));
    }

    #[test]
    fn negated_comparison_flipped() {
        let e = ScalarExpr::not(ScalarExpr::cmp(
            CmpOp::Ge,
            ScalarExpr::col(3),
            ScalarExpr::int(0),
        ));
        assert_eq!(
            simplify_scalar(e),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(3), ScalarExpr::int(0))
        );
    }

    #[test]
    fn boolean_identities() {
        let t = ScalarExpr::true_();
        let f = ScalarExpr::false_();
        let x = ScalarExpr::col(1);
        assert_eq!(simplify_scalar(ScalarExpr::and(t.clone(), x.clone())), x);
        assert_eq!(
            simplify_scalar(ScalarExpr::and(f.clone(), x.clone())),
            ScalarExpr::false_()
        );
        assert_eq!(simplify_scalar(ScalarExpr::or(f.clone(), x.clone())), x);
        assert_eq!(
            simplify_scalar(ScalarExpr::or(t.clone(), x.clone())),
            ScalarExpr::true_()
        );
    }

    #[test]
    fn constant_comparisons_folded() {
        let e = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::int(1), ScalarExpr::int(2));
        assert_eq!(simplify_scalar(e), ScalarExpr::true_());
        let e = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::str("a"), ScalarExpr::str("b"));
        assert_eq!(simplify_scalar(e), ScalarExpr::false_());
        // Null comparisons are left alone (evaluator decides).
        let e = ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::Const(Value::Null),
            ScalarExpr::int(1),
        );
        assert!(matches!(simplify_scalar(e), ScalarExpr::Cmp(..)));
    }

    #[test]
    fn select_true_removed_and_selects_fused() {
        let e = RelExpr::relation("r").select(ScalarExpr::true_());
        assert_eq!(simplify_rel(e), RelExpr::relation("r"));

        let e = RelExpr::relation("r")
            .select(ScalarExpr::col_eq(0, 1))
            .select(ScalarExpr::col_eq(1, 2));
        match simplify_rel(e) {
            RelExpr::Select(input, pred) => {
                assert_eq!(*input, RelExpr::relation("r"));
                assert!(matches!(pred, ScalarExpr::And(..)));
            }
            other => panic!("expected fused select, got {other:?}"),
        }
    }

    #[test]
    fn isnull_folding() {
        let e = ScalarExpr::IsNull(Box::new(ScalarExpr::Const(Value::Null)));
        assert_eq!(simplify_scalar(e), ScalarExpr::true_());
        let e = ScalarExpr::IsNull(Box::new(ScalarExpr::int(3)));
        assert_eq!(simplify_scalar(e), ScalarExpr::false_());
    }

    #[test]
    fn simplification_recurses_into_aggregates() {
        let e = ScalarExpr::Cnt(Box::new(RelExpr::relation("r").select(ScalarExpr::true_())));
        assert_eq!(
            simplify_scalar(e),
            ScalarExpr::Cnt(Box::new(RelExpr::relation("r")))
        );
    }

    /// A corpus of predicates exercising every rewrite: the algebraic laws
    /// below must hold on each of them.
    fn scalar_corpus() -> Vec<ScalarExpr> {
        use tm_algebra::expr::{ArithOp, CmpOp};
        vec![
            ScalarExpr::true_(),
            ScalarExpr::not(ScalarExpr::not(ScalarExpr::col(0))),
            ScalarExpr::not(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(1),
                ScalarExpr::int(0),
            )),
            ScalarExpr::and(ScalarExpr::true_(), ScalarExpr::col(0)),
            ScalarExpr::and(ScalarExpr::col(0), ScalarExpr::false_()),
            ScalarExpr::or(ScalarExpr::false_(), ScalarExpr::param(2)),
            ScalarExpr::or(ScalarExpr::param(0), ScalarExpr::true_()),
            ScalarExpr::cmp(CmpOp::Le, ScalarExpr::int(3), ScalarExpr::int(5)),
            ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::Const(Value::Null),
                ScalarExpr::int(5),
            ),
            ScalarExpr::arith(
                ArithOp::Add,
                ScalarExpr::col(0),
                ScalarExpr::arith(ArithOp::Div, ScalarExpr::int(1), ScalarExpr::int(0)),
            ),
            ScalarExpr::IsNull(Box::new(ScalarExpr::param(1))),
            ScalarExpr::Cnt(Box::new(
                RelExpr::relation("r").select(ScalarExpr::not(ScalarExpr::not(ScalarExpr::col(0)))),
            )),
            ScalarExpr::and(
                ScalarExpr::not(ScalarExpr::not(ScalarExpr::col(0))),
                ScalarExpr::or(ScalarExpr::col(1), ScalarExpr::false_()),
            ),
        ]
    }

    fn rel_corpus() -> Vec<RelExpr> {
        vec![
            RelExpr::relation("r"),
            RelExpr::relation("r").select(ScalarExpr::true_()),
            RelExpr::relation("r")
                .select(ScalarExpr::col(0))
                .select(ScalarExpr::col(1)),
            RelExpr::Singleton(vec![ScalarExpr::not(ScalarExpr::not(ScalarExpr::param(0)))]),
            RelExpr::relation("r")
                .select(ScalarExpr::true_())
                .anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 1)),
        ]
    }

    #[test]
    fn simplify_scalar_is_idempotent() {
        for e in scalar_corpus() {
            let once = simplify_scalar(e.clone());
            let twice = simplify_scalar(once.clone());
            assert_eq!(once, twice, "not a fixpoint for {e}");
        }
    }

    #[test]
    fn simplify_rel_is_idempotent() {
        for e in rel_corpus() {
            let once = simplify_rel(e.clone());
            let twice = simplify_rel(once.clone());
            assert_eq!(once, twice, "not a fixpoint for {e}");
        }
    }

    #[test]
    fn simplification_commutes_with_parameter_substitution_shape() {
        // Param opacity: parameters are never folded — a simplified
        // predicate mentions exactly the parameters the original does.
        fn params(e: &ScalarExpr, out: &mut Vec<usize>) {
            match e {
                ScalarExpr::Param(i) => out.push(*i),
                ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => params(x, out),
                ScalarExpr::And(l, r)
                | ScalarExpr::Or(l, r)
                | ScalarExpr::Cmp(_, l, r)
                | ScalarExpr::Arith(_, l, r) => {
                    params(l, out);
                    params(r, out);
                }
                _ => {}
            }
        }
        for e in scalar_corpus() {
            let mut before = Vec::new();
            params(&e, &mut before);
            let simplified = simplify_scalar(e.clone());
            let mut after = Vec::new();
            params(&simplified, &mut after);
            before.sort_unstable();
            before.dedup();
            after.sort_unstable();
            after.dedup();
            // Boolean-identity folds may ERASE a parameter (x ∧ false) but
            // can never invent one.
            assert!(
                after.iter().all(|p| before.contains(p)),
                "{e} ⇒ {simplified} invented a parameter"
            );
        }
    }
}
