//! Errors raised during rule translation.

use std::fmt;

use tm_calculus::CalculusError;

/// Convenience alias used throughout `tm-translate`.
pub type Result<T> = std::result::Result<T, TranslateError>;

/// Errors from `TransC`/`TransR` and the optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// The condition failed static analysis (closedness, safety, typing).
    Analysis(CalculusError),
    /// The formula shape falls outside the supported translation class
    /// (e.g. a universal quantifier nested inside an existential one).
    Unsupported {
        /// What was being translated.
        construct: String,
        /// Why it is outside the class.
        reason: String,
    },
    /// A quantified variable lacks a membership guard where the
    /// translation needs one.
    MissingGuard(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Analysis(e) => write!(f, "condition analysis failed: {e}"),
            TranslateError::Unsupported { construct, reason } => {
                write!(f, "unsupported construct `{construct}`: {reason}")
            }
            TranslateError::MissingGuard(var) => write!(
                f,
                "variable `{var}` has no membership guard usable for translation"
            ),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<CalculusError> for TranslateError {
    fn from(e: CalculusError) -> Self {
        TranslateError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_problem() {
        let e = TranslateError::MissingGuard("x".into());
        assert!(e.to_string().contains("`x`"));
        let e = TranslateError::Unsupported {
            construct: "(∀x)(∃y)(∀z)…".into(),
            reason: "universal under existential".into(),
        };
        assert!(e.to_string().contains("universal under existential"));
    }
}
