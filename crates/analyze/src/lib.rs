#![warn(missing_docs)]

//! # `tm-analyze` — catalog static analysis
//!
//! Section 6 of Grefen (VLDB 1993) keeps transaction modification safe
//! with a *syntactic* triggering graph: rule `J1` points at `J2` when
//! `J1`'s action fires one of `J2`'s triggers, and a cycle-free graph
//! guarantees termination. This crate sharpens that story semantically
//! and packages the result as a diagnostics subsystem:
//!
//! * [`domain`] — a small abstract domain (intervals, equalities and
//!   disequalities over tuple columns, in the runtime's two-valued
//!   total comparison order) for refuting quantifier-free violation
//!   predicates. Every `true` answer is a proof; `false` means "no
//!   claim".
//! * [`catalog`] — [`CatalogAnalysis`]: incremental per-rule
//!   diagnostics (unsatisfiable / tautological / subsumed constraints),
//!   semantic triggering-graph refinement (weakest-precondition proofs
//!   that an action cannot violate a condition delete false edges), and
//!   the per-catalog termination certificate. A certified catalog is
//!   one whose *refined* graph is acyclic: modification provably
//!   reaches a fixpoint, and the engine drops its runtime round budget
//!   to a debug assertion.
//! * [`typecheck`] — [`check_program`]: static arity/domain/name
//!   checking of RL compensating actions, so malformed actions are
//!   rejected when the rule is defined rather than when it first fires.
//! * [`report`] — the structured [`AnalysisReport`] with stable
//!   diagnostic codes `A001`–`A005`.
//! * [`catfile`] — a small textual catalog format for the `tm-analyze`
//!   lint binary.

pub mod catalog;
pub mod catfile;
pub mod domain;
pub mod report;
pub mod typecheck;

pub use catalog::CatalogAnalysis;
pub use catfile::{parse_catalog_file, CatalogFile};
pub use domain::{always_true, implies, never_true};
pub use report::{AnalysisReport, Code, Diagnostic, PrunedEdge, Severity, TerminationCertificate};
pub use typecheck::check_program;
