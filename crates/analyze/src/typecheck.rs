//! Static typechecking of RL action programs.
//!
//! Compensating actions are arbitrary algebra programs written by the
//! rule designer; unlike compiled checks they are not derived from an
//! analysed formula, so nothing guarantees they are well-formed. Before
//! this pass, an action naming an unknown relation or inserting rows of
//! the wrong arity was admitted at definition time and only failed
//! (with a runtime error aborting the transaction) when it first fired
//! — possibly millions of executions later. [`check_program`] rejects
//! such actions when the rule is defined.
//!
//! The checks are purely static:
//!
//! * every referenced relation resolves — a temporary bound earlier in
//!   the program, an auxiliary differential (`R@ins` / `R@del` /
//!   `R@pre`) of a base relation, or a base relation of the schema;
//! * arities are consistent through every operator (predicates may only
//!   address columns of the tuple they see, set operations unify their
//!   operand arities, projections define the output arity);
//! * `insert` / `delete` / `update` targets are *base* relations with a
//!   matching source arity;
//! * literal tuples and grounded singleton rows conform per attribute
//!   to the target's declared domains (`null` conforms to every domain;
//!   numeric types are exact, matching runtime tuple validation).
//!
//! Arity inference is partial: an empty literal has unknown arity, and
//! unknown arities unify with anything (no false rejections).

use std::collections::BTreeMap;

use tm_algebra::{Program, RelExpr, ScalarExpr, Statement};
use tm_relational::auxiliary::{is_auxiliary, parse_auxiliary};
use tm_relational::{DatabaseSchema, RelationSchema, Value};

/// Environment of temporaries bound so far: name → arity when known.
type Temps = BTreeMap<String, Option<usize>>;

/// Typecheck an action program against a schema. Returns a
/// human-readable description of the first defect found.
pub fn check_program(program: &Program, schema: &DatabaseSchema) -> Result<(), String> {
    let mut temps: Temps = BTreeMap::new();
    for stmt in program.statements() {
        match stmt {
            Statement::Assign { target, expr } => {
                if is_auxiliary(target) {
                    return Err(format!(
                        "temporary `{target}` uses the reserved auxiliary-relation marker"
                    ));
                }
                if schema.relation(target).is_ok() {
                    return Err(format!("temporary `{target}` shadows a base relation"));
                }
                let arity = infer(expr, schema, &temps)?;
                temps.insert(target.clone(), arity);
            }
            Statement::Insert { relation, source } => {
                let rel = base_target(relation, "insert", schema, &temps)?;
                let arity = infer(source, schema, &temps)?;
                unify_target(rel, arity, "insert")?;
                check_inserted_values(rel, source)?;
            }
            Statement::Delete { relation, source } => {
                let rel = base_target(relation, "delete", schema, &temps)?;
                let arity = infer(source, schema, &temps)?;
                unify_target(rel, arity, "delete")?;
            }
            Statement::Update {
                relation,
                pred,
                set,
            } => {
                let rel = base_target(relation, "update", schema, &temps)?;
                let arity = rel.arity();
                check_scalar(pred, Some(arity), schema, &temps)?;
                for assignment in set {
                    if assignment.position >= arity {
                        return Err(format!(
                            "update of `{relation}` assigns attribute #{} but the relation has arity {arity}",
                            assignment.position
                        ));
                    }
                    check_scalar(&assignment.value, Some(arity), schema, &temps)?;
                    if let ScalarExpr::Const(v) = &assignment.value {
                        let attr = &rel.attributes()[assignment.position];
                        if !v.conforms_to(attr.value_type()) {
                            return Err(format!(
                                "update of `{relation}` assigns {v} to `{}` which has domain {}",
                                attr.name(),
                                attr.value_type()
                            ));
                        }
                    }
                }
            }
            Statement::Alarm(expr) => {
                infer(expr, schema, &temps)?;
            }
            Statement::Abort => {}
        }
    }
    Ok(())
}

/// Resolve an `insert`/`delete`/`update` target: must be a known base
/// relation — not an auxiliary, not a temporary.
fn base_target<'s>(
    relation: &str,
    verb: &str,
    schema: &'s DatabaseSchema,
    temps: &Temps,
) -> Result<&'s RelationSchema, String> {
    if is_auxiliary(relation) {
        return Err(format!(
            "{verb} target `{relation}` is an auxiliary differential; only base relations can be written"
        ));
    }
    if temps.contains_key(relation) {
        return Err(format!(
            "{verb} target `{relation}` is a temporary; only base relations can be written"
        ));
    }
    schema
        .relation(relation)
        .map_err(|_| format!("{verb} target `{relation}` is not a relation of the schema"))
}

fn unify_target(
    rel: &RelationSchema,
    source_arity: Option<usize>,
    verb: &str,
) -> Result<(), String> {
    if let Some(a) = source_arity {
        if a != rel.arity() {
            return Err(format!(
                "{verb} into `{}` expects arity {}, source has arity {a}",
                rel.name(),
                rel.arity()
            ));
        }
    }
    Ok(())
}

/// Per-attribute domain conformance for statically known inserted rows
/// (literal tuples and grounded singleton values). Mirrors the
/// runtime's tuple validation: `null` conforms to every domain, numeric
/// types are exact.
fn check_inserted_values(rel: &RelationSchema, source: &RelExpr) -> Result<(), String> {
    let check_value = |v: &Value, position: usize| -> Result<(), String> {
        let attr = &rel.attributes()[position];
        if v.conforms_to(attr.value_type()) {
            Ok(())
        } else {
            Err(format!(
                "insert into `{}` puts {v} in `{}` which has domain {}",
                rel.name(),
                attr.name(),
                attr.value_type()
            ))
        }
    };
    match source {
        RelExpr::Literal(tuples) => {
            for t in tuples {
                if t.arity() == rel.arity() {
                    for (i, v) in t.values().iter().enumerate() {
                        check_value(v, i)?;
                    }
                }
            }
        }
        RelExpr::Singleton(exprs) if exprs.len() == rel.arity() => {
            for (i, e) in exprs.iter().enumerate() {
                if let ScalarExpr::Const(v) = e {
                    check_value(v, i)?;
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// Infer the arity of a relational expression, validating every name
/// and predicate on the way. `None` means statically unknown (empty
/// literal), which unifies with anything.
fn infer(expr: &RelExpr, schema: &DatabaseSchema, temps: &Temps) -> Result<Option<usize>, String> {
    match expr {
        RelExpr::Rel(name) => {
            if let Some(arity) = temps.get(name) {
                return Ok(*arity);
            }
            if let Some((base, _)) = parse_auxiliary(name) {
                return match schema.relation(base) {
                    Ok(rel) => Ok(Some(rel.arity())),
                    Err(_) => Err(format!(
                        "`{name}` is a differential of `{base}`, which is not a relation of the schema"
                    )),
                };
            }
            match schema.relation(name) {
                Ok(rel) => Ok(Some(rel.arity())),
                Err(_) => Err(format!("unknown relation `{name}`")),
            }
        }
        RelExpr::Literal(tuples) => {
            let mut arity = None;
            for t in tuples {
                match arity {
                    None => arity = Some(t.arity()),
                    Some(a) if a != t.arity() => {
                        return Err(format!(
                            "literal relation mixes tuples of arity {a} and {}",
                            t.arity()
                        ))
                    }
                    Some(_) => {}
                }
            }
            Ok(arity)
        }
        RelExpr::Singleton(exprs) => {
            // Singleton rows are evaluated over the empty tuple: column
            // references cannot resolve.
            for e in exprs {
                check_scalar(e, Some(0), schema, temps)?;
            }
            Ok(Some(exprs.len()))
        }
        RelExpr::Select(inner, pred) => {
            let arity = infer(inner, schema, temps)?;
            check_scalar(pred, arity, schema, temps)?;
            Ok(arity)
        }
        RelExpr::Project(inner, exprs) => {
            let arity = infer(inner, schema, temps)?;
            for e in exprs {
                check_scalar(e, arity, schema, temps)?;
            }
            Ok(Some(exprs.len()))
        }
        RelExpr::Join(l, r, pred) => {
            let (la, ra) = (infer(l, schema, temps)?, infer(r, schema, temps)?);
            let joint = match (la, ra) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
            check_scalar(pred, joint, schema, temps)?;
            Ok(joint)
        }
        RelExpr::SemiJoin(l, r, pred) | RelExpr::AntiJoin(l, r, pred) => {
            let (la, ra) = (infer(l, schema, temps)?, infer(r, schema, temps)?);
            let joint = match (la, ra) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
            check_scalar(pred, joint, schema, temps)?;
            Ok(la)
        }
        RelExpr::Union(l, r) | RelExpr::Difference(l, r) | RelExpr::Intersect(l, r) => {
            let (la, ra) = (infer(l, schema, temps)?, infer(r, schema, temps)?);
            match (la, ra) {
                (Some(a), Some(b)) if a != b => Err(format!(
                    "set operation over operands of different arities ({a} vs {b})"
                )),
                (Some(a), _) | (_, Some(a)) => Ok(Some(a)),
                (None, None) => Ok(None),
            }
        }
        RelExpr::Product(l, r) => {
            let (la, ra) = (infer(l, schema, temps)?, infer(r, schema, temps)?);
            Ok(match (la, ra) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            })
        }
    }
}

/// Validate a scalar expression over a tuple of (possibly unknown)
/// arity: column references must be in range, nested relational
/// subexpressions (aggregates, counts) must themselves typecheck.
fn check_scalar(
    expr: &ScalarExpr,
    arity: Option<usize>,
    schema: &DatabaseSchema,
    temps: &Temps,
) -> Result<(), String> {
    match expr {
        ScalarExpr::Const(_) | ScalarExpr::Param(_) => Ok(()),
        ScalarExpr::Col(i) => match arity {
            Some(a) if *i >= a => Err(format!(
                "column #{i} referenced, but the tuple in scope has arity {a}"
            )),
            _ => Ok(()),
        },
        ScalarExpr::Arith(_, l, r) | ScalarExpr::Cmp(_, l, r) => {
            check_scalar(l, arity, schema, temps)?;
            check_scalar(r, arity, schema, temps)
        }
        ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
            check_scalar(l, arity, schema, temps)?;
            check_scalar(r, arity, schema, temps)
        }
        ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => check_scalar(e, arity, schema, temps),
        ScalarExpr::Agg(_, rel, col) => {
            let inner = infer(rel, schema, temps)?;
            if let Some(a) = inner {
                if *col >= a {
                    return Err(format!(
                        "aggregate over column #{col} of a relation of arity {a}"
                    ));
                }
            }
            Ok(())
        }
        ScalarExpr::Cnt(rel) => {
            infer(rel, schema, temps)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::parse_program;
    use tm_relational::{RelationSchema, ValueType};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::from_relations(vec![
            RelationSchema::of(
                "brewery",
                &[
                    ("name", ValueType::Str),
                    ("city", ValueType::Str),
                    ("est", ValueType::Int),
                ],
            ),
            RelationSchema::of(
                "beer",
                &[
                    ("name", ValueType::Str),
                    ("brewery", ValueType::Str),
                    ("alcohol", ValueType::Double),
                ],
            ),
            RelationSchema::of("a", &[("x", ValueType::Int)]),
            RelationSchema::of("b", &[("x", ValueType::Int)]),
        ])
        .unwrap()
    }

    fn check(text: &str) -> Result<(), String> {
        check_program(&parse_program(text).unwrap(), &schema())
    }

    #[test]
    fn existing_compensations_pass() {
        check(
            "temp := minus(project[#1](beer), project[#0](brewery)); \
             insert(brewery, project[#0, null, null](temp))",
        )
        .unwrap();
        check("insert(b, a@ins)").unwrap();
        check("insert(a, {(1)})").unwrap();
        check("delete(beer, select[#2 > 10.0](beer))").unwrap();
    }

    #[test]
    fn unknown_relation_rejected() {
        let err = check("insert(a, nosuch)").unwrap_err();
        assert!(err.contains("unknown relation `nosuch`"), "{err}");
        let err = check("insert(nosuch, a)").unwrap_err();
        assert!(err.contains("not a relation"), "{err}");
        let err = check("insert(a, nosuch@ins)").unwrap_err();
        assert!(err.contains("not a relation"), "{err}");
    }

    #[test]
    fn arity_mismatches_rejected() {
        let err = check("insert(a, beer)").unwrap_err();
        assert!(err.contains("expects arity 1"), "{err}");
        let err = check("insert(beer, {(1, 2)})").unwrap_err();
        assert!(err.contains("expects arity 3"), "{err}");
        let err = check("t := union(a, beer); insert(a, t)").unwrap_err();
        assert!(err.contains("different arities"), "{err}");
    }

    #[test]
    fn out_of_range_columns_rejected() {
        let err = check("insert(a, project[#5](beer))").unwrap_err();
        assert!(err.contains("column #5"), "{err}");
        let err = check("delete(a, select[#1 = 0](a))").unwrap_err();
        assert!(err.contains("column #1"), "{err}");
    }

    #[test]
    fn writes_to_non_base_relations_rejected() {
        let err = check("insert(a@ins, a)").unwrap_err();
        assert!(err.contains("auxiliary"), "{err}");
        let err = check("t := a; insert(t, a)").unwrap_err();
        assert!(err.contains("temporary"), "{err}");
        let err = check("a := b").unwrap_err();
        assert!(err.contains("shadows"), "{err}");
    }

    #[test]
    fn domain_conformance_checked() {
        // Int does not conform to a Double attribute (matches runtime
        // tuple validation), but null conforms everywhere.
        let err = check("insert(beer, {(\"pils\", \"brk\", 5)})").unwrap_err();
        assert!(err.contains("domain double"), "{err}");
        check("insert(brewery, {(\"brk\", null, null)})").unwrap();
    }

    #[test]
    fn temporaries_resolve_in_order() {
        check("t := select[#0 > 0](a); u := union(t, b); insert(a, u)").unwrap();
        let err = check("insert(a, t)").unwrap_err();
        assert!(err.contains("unknown relation `t`"), "{err}");
    }
}
