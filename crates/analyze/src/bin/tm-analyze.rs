//! `tm-analyze` — lint a catalog file.
//!
//! ```text
//! tm-analyze FILE [FILE ...]
//! ```
//!
//! For each file (see [`tm_analyze::catfile`] for the format): parse
//! the schema and rules, validate every rule (condition analysis,
//! action typechecking, translation), run the full catalog analysis and
//! print the report.
//!
//! Exit status: `2` if any file fails to parse or a rule is rejected,
//! else `1` if any error-severity diagnostic was reported, else `0`.

use std::process::ExitCode;

use tm_analyze::{check_program, parse_catalog_file, CatalogAnalysis};
use tm_calculus::analyze;
use tm_rules::RuleAction;
use tm_translate::trans_r;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: tm-analyze FILE [FILE ...]");
        return ExitCode::from(2);
    }
    let mut status = 0u8;
    for (i, path) in files.iter().enumerate() {
        if i > 0 {
            println!();
        }
        if files.len() > 1 {
            println!("== {path} ==");
        }
        status = status.max(lint_file(path));
    }
    ExitCode::from(status)
}

fn lint_file(path: &str) -> u8 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return 2;
        }
    };
    let cat = match parse_catalog_file(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    let mut analysis = CatalogAnalysis::new(cat.schema.clone());
    let mut rejected = false;
    for rule in &cat.rules {
        let info = match analyze(rule.condition(), &cat.schema) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("{path}: rule `{}`: bad condition: {e}", rule.name);
                rejected = true;
                continue;
            }
        };
        if let RuleAction::Compensate(program) = rule.action() {
            if let Err(e) = check_program(program, &cat.schema) {
                eprintln!("{path}: rule `{}`: bad action: {e}", rule.name);
                rejected = true;
                continue;
            }
        }
        if let Err(e) = trans_r(rule, &cat.schema) {
            eprintln!("{path}: rule `{}`: not translatable: {e}", rule.name);
            rejected = true;
            continue;
        }
        analysis.add_rule(rule, &info);
    }
    let report = analysis.report();
    print!("{report}");
    if rejected {
        2
    } else if report.errors() > 0 {
        1
    } else {
        0
    }
}
