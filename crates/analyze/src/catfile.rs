//! A tiny textual catalog format for the `tm-analyze` lint CLI.
//!
//! ```text
//! # comments and blank lines are ignored
//! schema beer(name str, brewery str, alcohol double)
//! rule r1: WHEN INS(beer) IF NOT forall x (x in beer implies x.alcohol >= 0.0) THEN abort
//! ```
//!
//! * `schema NAME(attr type, ...)` — declare a relation; types are
//!   `int`, `double`, `str`, `bool`. All `schema` lines must precede
//!   the first `rule` line.
//! * `rule NAME: TEXT` — an RL rule in the [`tm_rules::parse_rule`]
//!   grammar.

use std::sync::Arc;

use tm_relational::{Attribute, DatabaseSchema, RelationSchema, ValueType};
use tm_rules::{parse_rule, IntegrityRule};

/// A parsed catalog file: the schema plus the rules, in file order.
#[derive(Debug, Clone)]
pub struct CatalogFile {
    /// The declared database schema.
    pub schema: Arc<DatabaseSchema>,
    /// The declared rules, in declaration order.
    pub rules: Vec<IntegrityRule>,
}

/// Parse the catalog format. Errors carry the 1-based line number.
pub fn parse_catalog_file(text: &str) -> Result<CatalogFile, String> {
    let mut relations: Vec<RelationSchema> = Vec::new();
    let mut rules: Vec<IntegrityRule> = Vec::new();
    let mut schema: Option<Arc<DatabaseSchema>> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("schema ") {
            if schema.is_some() {
                return Err(format!(
                    "line {lineno}: `schema` lines must precede the first `rule`"
                ));
            }
            relations.push(parse_schema_line(rest).map_err(|e| format!("line {lineno}: {e}"))?);
        } else if let Some(rest) = line.strip_prefix("rule ") {
            let (name, body) = rest
                .split_once(':')
                .ok_or_else(|| format!("line {lineno}: expected `rule NAME: TEXT`"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: rule name is empty"));
            }
            if schema.is_none() {
                schema = Some(
                    DatabaseSchema::from_relations(std::mem::take(&mut relations))
                        .map_err(|e| format!("line {lineno}: bad schema: {e}"))?
                        .into_shared(),
                );
            }
            let rule = parse_rule(body.trim(), name)
                .map_err(|e| format!("line {lineno}: bad rule `{name}`: {e}"))?;
            rules.push(rule);
        } else {
            return Err(format!(
                "line {lineno}: expected `schema ...`, `rule ...` or a `#` comment"
            ));
        }
    }
    let schema = match schema {
        Some(s) => s,
        None => DatabaseSchema::from_relations(relations)
            .map_err(|e| format!("bad schema: {e}"))?
            .into_shared(),
    };
    Ok(CatalogFile { schema, rules })
}

/// Parse `NAME(attr type, ...)`.
fn parse_schema_line(rest: &str) -> Result<RelationSchema, String> {
    let rest = rest.trim();
    let open = rest
        .find('(')
        .ok_or_else(|| "expected `schema NAME(attr type, ...)`".to_string())?;
    let name = rest[..open].trim();
    let body = rest[open + 1..]
        .trim()
        .strip_suffix(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    if name.is_empty() {
        return Err("relation name is empty".to_string());
    }
    let mut attrs = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        let (attr, ty) = part
            .rsplit_once(char::is_whitespace)
            .ok_or_else(|| format!("attribute `{part}`: expected `name type`"))?;
        let ty = match ty.trim() {
            "int" => ValueType::Int,
            "double" => ValueType::Double,
            "str" => ValueType::Str,
            "bool" => ValueType::Bool,
            other => return Err(format!("unknown type `{other}` (int|double|str|bool)")),
        };
        attrs.push(Attribute::new(attr.trim(), ty));
    }
    RelationSchema::new(name, attrs).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_schema_and_rules() {
        let cat = parse_catalog_file(
            "# demo\n\
             schema r(v int)\n\
             schema s(m int, tag str)\n\
             \n\
             rule guard: WHEN INS(r) IF NOT forall x (x in r implies x.v >= 0) THEN abort\n",
        )
        .unwrap();
        assert_eq!(cat.schema.relation("s").unwrap().arity(), 2);
        assert_eq!(cat.rules.len(), 1);
        assert_eq!(cat.rules[0].name, "guard");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_catalog_file("schema r(v int)\nnonsense\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_catalog_file("schema r(v oops)\n").unwrap_err();
        assert!(err.contains("unknown type `oops`"), "{err}");
        let err =
            parse_catalog_file("rule g: IF NOT 1 = 1 THEN abort\nschema r(v int)\n").unwrap_err();
        assert!(err.contains("must precede"), "{err}");
    }
}
