//! The structured output of catalog analysis: coded diagnostics, pruned
//! triggering edges with their proofs, and the per-catalog termination
//! certificate.

use std::fmt;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The catalog is almost certainly wrong (e.g. an unsatisfiable
    /// constraint: every insert aborts).
    Error,
    /// The catalog is suspicious but runnable (dead rules, subsumed
    /// rules, unproven termination).
    Warning,
    /// Provenance worth surfacing (pruned false edges).
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// Diagnostic codes. The numeric identifiers are stable: tooling may
/// match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    /// `A001` — the constraint is unsatisfiable: its violation
    /// predicate holds on every possible tuple, so any insert into the
    /// constrained relation aborts.
    UnsatisfiableConstraint,
    /// `A002` — the constraint is tautological: its violation predicate
    /// holds on no tuple, so the compiled check can never fire (a dead
    /// rule).
    TautologicalConstraint,
    /// `A003` — the rule is subsumed by another rule on the same
    /// trigger set: whenever it would abort, the subsuming rule aborts
    /// too.
    SubsumedBy,
    /// `A004` — a syntactic triggering edge was semantically pruned:
    /// the source rule's action provably cannot violate the target
    /// rule's condition.
    FalseEdgePruned,
    /// `A005` — a triggering cycle survived semantic refinement:
    /// termination is not proven and the runtime round budget stays
    /// armed.
    UnprovenTermination,
}

impl Code {
    /// The stable `Annn` identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Code::UnsatisfiableConstraint => "A001",
            Code::TautologicalConstraint => "A002",
            Code::SubsumedBy => "A003",
            Code::FalseEdgePruned => "A004",
            Code::UnprovenTermination => "A005",
        }
    }

    /// The severity this code reports at.
    pub fn severity(&self) -> Severity {
        match self {
            Code::UnsatisfiableConstraint => Severity::Error,
            Code::TautologicalConstraint | Code::SubsumedBy | Code::UnprovenTermination => {
                Severity::Warning
            }
            Code::FalseEdgePruned => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// One coded finding about a rule (or, for graph-level codes, about the
/// rule a cycle or edge starts from).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The diagnostic code.
    pub code: Code,
    /// The rule the finding anchors to.
    pub rule: String,
    /// Human-readable explanation, including the proof where one
    /// exists.
    pub message: String,
}

impl Diagnostic {
    /// The severity of this diagnostic (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity(),
            self.code,
            self.rule,
            self.message
        )
    }
}

/// A syntactic triggering edge deleted by semantic refinement, with the
/// weakest-precondition proof that justifies the deletion.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedEdge {
    /// Source rule (whose action fires the trigger).
    pub from: String,
    /// Target rule (whose condition the action provably cannot
    /// violate).
    pub to: String,
    /// Why the edge is semantically false.
    pub proof: String,
}

impl fmt::Display for PrunedEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.proof)
    }
}

/// The per-catalog termination certificate (Section 6.1 made semantic):
/// whether the *refined* triggering graph is acyclic, which edges
/// refinement removed (with proofs, the certificate's provenance), and
/// the cycle paths that remain when it is not.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TerminationCertificate {
    /// Whether every syntactic cycle was semantically refuted: the
    /// refined triggering graph is acyclic, so transaction modification
    /// reaches a fixpoint within `|catalog|` rounds and the runtime
    /// round budget is provably unreachable.
    pub certified: bool,
    /// Cycle paths of the syntactic graph (closed walks, first rule
    /// repeated at the end).
    pub syntactic_cycles: Vec<Vec<String>>,
    /// Cycle paths that survive refinement (empty iff `certified`).
    pub refined_cycles: Vec<Vec<String>>,
    /// The edges refinement deleted, with proofs.
    pub pruned: Vec<PrunedEdge>,
}

impl fmt::Display for TerminationCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.certified {
            writeln!(
                f,
                "termination: PROVEN (refined triggering graph is acyclic)"
            )?;
        } else {
            writeln!(
                f,
                "termination: UNPROVEN ({} cycle(s) survive refinement)",
                self.refined_cycles.len()
            )?;
        }
        for c in &self.refined_cycles {
            writeln!(f, "  cycle: {}", c.join(" -> "))?;
        }
        for p in &self.pruned {
            writeln!(f, "  pruned edge {p}")?;
        }
        Ok(())
    }
}

/// The full analysis report of one catalog state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisReport {
    /// Number of rules analysed.
    pub rules: usize,
    /// Edge count of the syntactic triggering graph.
    pub syntactic_edges: usize,
    /// Edge count after semantic refinement.
    pub refined_edges: usize,
    /// All findings, rule-level first, then graph-level.
    pub diagnostics: Vec<Diagnostic>,
    /// The termination certificate.
    pub certificate: TerminationCertificate,
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.by_severity(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.by_severity(Severity::Warning)
    }

    fn by_severity(&self, s: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == s)
            .count()
    }

    /// The diagnostics anchored to one rule.
    pub fn diagnostics_for<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Whether a diagnostic with this code exists for this rule.
    pub fn has(&self, code: Code, rule: &str) -> bool {
        self.diagnostics_for(rule).any(|d| d.code == code)
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "analysed {} rule(s); triggering edges: {} syntactic, {} after refinement",
            self.rules, self.syntactic_edges, self.refined_edges
        )?;
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{}", self.certificate)
    }
}
