//! A small abstract domain over scalar predicates: intervals, equalities
//! and exclusions per column class, decided over a capped DNF.
//!
//! The evaluator's boolean logic is **two-valued and total** on the
//! fragment this module admits: comparisons are defined for every value
//! pair (including `null`, which [`tm_relational::Value::compare`] ranks
//! below every other value), `isnull` is defined everywhere, and the
//! connectives only error on non-boolean operands — which cannot arise
//! when every leaf is a comparison or null test. That makes negation an
//! exact complement ([`CmpOp::negate`]) and lets the three public
//! questions share one engine:
//!
//! * [`never_true`] — the predicate selects no tuple, ever (a dead
//!   alarm).
//! * [`always_true`] — the predicate selects every tuple (an
//!   unsatisfiable constraint, phrased over its violation predicate).
//! * [`implies`] — every tuple selected by `p` is selected by `q`
//!   (subsumption between violation predicates).
//!
//! Anything outside the fragment — arithmetic (division can error),
//! aggregates (they read other relations), parameters, bare columns in
//! boolean position — makes the translation bail out and the question
//! answer `false`: **no claim**. Every `true` answer is a proof under
//! the evaluator's semantics; `false` answers are conservative.
//!
//! The decision procedure puts the predicate in negation normal form
//! (pushing `not` onto the comparison operators), distributes to a
//! disjunctive normal form capped at 64 conjuncts, and refutes
//! each conjunct with a union-find over column equalities plus a
//! per-class interval with exclusions. `isnull(#i)` needs no special
//! machinery: under the rank order it is exactly `#i = null`, and its
//! negation `#i > null`.

use std::collections::BTreeMap;

use tm_algebra::{CmpOp, ScalarExpr};
use tm_relational::Value;

/// Conjunct cap for the DNF distribution; past this the domain makes no
/// claim (soundness never depends on the cap, only completeness).
const DNF_CAP: usize = 64;

/// An atomic comparison operand: a tuple column or a constant.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    Col(usize),
    Const(Value),
}

/// Negation normal form over the admitted fragment. Leaves are
/// comparison atoms and boolean literals; `not` has been compiled away
/// into the operators.
#[derive(Debug, Clone)]
enum Nnf {
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
    Cmp { op: CmpOp, lhs: Term, rhs: Term },
    Lit(bool),
}

/// One DNF conjunct's atom.
#[derive(Debug, Clone)]
struct Atom {
    op: CmpOp,
    lhs: Term,
    rhs: Term,
}

fn term(e: &ScalarExpr) -> Option<Term> {
    match e {
        ScalarExpr::Col(i) => Some(Term::Col(*i)),
        ScalarExpr::Const(v) => Some(Term::Const(v.clone())),
        _ => None,
    }
}

/// Translate into NNF; `positive == false` builds the NNF of the
/// negation. `None` whenever any subterm leaves the total two-valued
/// fragment.
fn to_nnf(e: &ScalarExpr, positive: bool) -> Option<Nnf> {
    match e {
        ScalarExpr::Const(Value::Bool(b)) => Some(Nnf::Lit(*b == positive)),
        ScalarExpr::Not(inner) => to_nnf(inner, !positive),
        ScalarExpr::And(a, b) => {
            let (x, y) = (to_nnf(a, positive)?, to_nnf(b, positive)?);
            Some(if positive {
                Nnf::And(vec![x, y])
            } else {
                Nnf::Or(vec![x, y])
            })
        }
        ScalarExpr::Or(a, b) => {
            let (x, y) = (to_nnf(a, positive)?, to_nnf(b, positive)?);
            Some(if positive {
                Nnf::Or(vec![x, y])
            } else {
                Nnf::And(vec![x, y])
            })
        }
        // isnull(#i) is #i = null under the evaluator's rank order
        // (null sorts below every non-null value), and its negation is
        // #i > null.
        ScalarExpr::IsNull(inner) => match inner.as_ref() {
            ScalarExpr::Col(i) => Some(Nnf::Cmp {
                op: if positive { CmpOp::Eq } else { CmpOp::Gt },
                lhs: Term::Col(*i),
                rhs: Term::Const(Value::Null),
            }),
            ScalarExpr::Const(v) => Some(Nnf::Lit(v.is_null() == positive)),
            _ => None,
        },
        ScalarExpr::Cmp(op, a, b) => {
            let (lhs, rhs) = (term(a)?, term(b)?);
            let eff = if positive { *op } else { op.negate() };
            match (&lhs, &rhs) {
                (Term::Const(x), Term::Const(y)) => Some(Nnf::Lit(eff.test(x.compare(y)))),
                _ => Some(Nnf::Cmp { op: eff, lhs, rhs }),
            }
        }
        // Everything else either can error at runtime (arithmetic, a
        // non-boolean constant under a connective), reads beyond the
        // tuple (aggregates), or is unknown statically (parameters,
        // bare columns in boolean position): no claim.
        _ => None,
    }
}

/// The exact complement of an NNF formula (two-valued logic: the
/// NOT-TRUE set is the FALSE set).
fn compl(n: &Nnf) -> Nnf {
    match n {
        Nnf::Lit(b) => Nnf::Lit(!b),
        Nnf::And(cs) => Nnf::Or(cs.iter().map(compl).collect()),
        Nnf::Or(cs) => Nnf::And(cs.iter().map(compl).collect()),
        Nnf::Cmp { op, lhs, rhs } => Nnf::Cmp {
            op: op.negate(),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
    }
}

/// Distribute to DNF: a list of conjuncts, each a list of atoms. `None`
/// when the distribution exceeds [`DNF_CAP`].
fn dnf(n: &Nnf) -> Option<Vec<Vec<Atom>>> {
    match n {
        Nnf::Lit(true) => Some(vec![vec![]]),
        Nnf::Lit(false) => Some(vec![]),
        Nnf::Cmp { op, lhs, rhs } => Some(vec![vec![Atom {
            op: *op,
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        }]]),
        Nnf::Or(children) => {
            let mut out = Vec::new();
            for c in children {
                out.extend(dnf(c)?);
                if out.len() > DNF_CAP {
                    return None;
                }
            }
            Some(out)
        }
        Nnf::And(children) => {
            let mut out: Vec<Vec<Atom>> = vec![vec![]];
            for c in children {
                let d = dnf(c)?;
                let mut next = Vec::new();
                for prefix in &out {
                    for conj in &d {
                        let mut merged = prefix.clone();
                        merged.extend(conj.iter().cloned());
                        next.push(merged);
                        if next.len() > DNF_CAP {
                            return None;
                        }
                    }
                }
                out = next;
            }
            Some(out)
        }
    }
}

/// A bound endpoint: the value and whether the bound is strict.
type Bound = (Value, bool);

/// The interval-with-exclusions state of one column equivalence class.
#[derive(Debug, Default)]
struct ClassState {
    lo: Option<Bound>,
    hi: Option<Bound>,
    excluded: Vec<Value>,
}

impl ClassState {
    fn tighten_lo(&mut self, v: Value, strict: bool) {
        let replace = match &self.lo {
            None => true,
            Some((cur, cur_strict)) => match v.compare(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => strict && !cur_strict,
                std::cmp::Ordering::Less => false,
            },
        };
        if replace {
            self.lo = Some((v, strict));
        }
    }

    fn tighten_hi(&mut self, v: Value, strict: bool) {
        let replace = match &self.hi {
            None => true,
            Some((cur, cur_strict)) => match v.compare(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => strict && !cur_strict,
                std::cmp::Ordering::Greater => false,
            },
        };
        if replace {
            self.hi = Some((v, strict));
        }
    }

    /// The single value this class is pinned to, if `lo = hi` non-strict.
    fn pinned(&self) -> Option<&Value> {
        match (&self.lo, &self.hi) {
            (Some((lo, false)), Some((hi, false))) if lo.compare(hi).is_eq() => Some(lo),
            _ => None,
        }
    }

    /// Whether the interval (with exclusions) is provably empty.
    fn empty(&self) -> bool {
        if let (Some((lo, lo_strict)), Some((hi, hi_strict))) = (&self.lo, &self.hi) {
            match lo.compare(hi) {
                std::cmp::Ordering::Greater => return true,
                std::cmp::Ordering::Equal => {
                    if *lo_strict || *hi_strict {
                        return true;
                    }
                    if self.excluded.iter().any(|v| v.compare(lo).is_eq()) {
                        return true;
                    }
                }
                std::cmp::Ordering::Less => {}
            }
        }
        false
    }
}

/// Flat union-find over column slots.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Decide whether a conjunct is satisfiable. `false` only when a
/// contradiction is proven; `true` is the conservative default.
fn conjunct_satisfiable(atoms: &[Atom]) -> bool {
    // Map columns to dense slots.
    let mut slots: BTreeMap<usize, usize> = BTreeMap::new();
    for a in atoms {
        for t in [&a.lhs, &a.rhs] {
            if let Term::Col(c) = t {
                let next = slots.len();
                slots.entry(*c).or_insert(next);
            }
        }
    }
    let mut uf = UnionFind::new(slots.len());
    // Pass 1: column equalities merge classes.
    for a in atoms {
        if let (CmpOp::Eq, Term::Col(x), Term::Col(y)) = (a.op, &a.lhs, &a.rhs) {
            uf.union(slots[x], slots[y]);
        }
    }
    let mut classes: BTreeMap<usize, ClassState> = BTreeMap::new();
    // Cross-class column pairs, re-examined once intervals are known.
    let mut pairs: Vec<(CmpOp, usize, usize)> = Vec::new();
    // Pass 2: fold every atom into the class states.
    for a in atoms {
        // Normalise so a column is on the left when there is one.
        let (op, lhs, rhs) = match (&a.lhs, &a.rhs) {
            (Term::Const(_), Term::Col(_)) => (a.op.flip(), a.rhs.clone(), a.lhs.clone()),
            _ => (a.op, a.lhs.clone(), a.rhs.clone()),
        };
        match (&lhs, &rhs) {
            (Term::Const(x), Term::Const(y)) => {
                if !op.test(x.compare(y)) {
                    return false;
                }
            }
            (Term::Col(x), Term::Col(y)) => {
                let (rx, ry) = (uf.find(slots[x]), uf.find(slots[y]));
                if rx == ry {
                    // Reflexive: x ▵ x holds for =, ≤, ≥ and fails for
                    // <, >, ≠.
                    if matches!(op, CmpOp::Lt | CmpOp::Gt | CmpOp::Ne) {
                        return false;
                    }
                } else {
                    pairs.push((op, rx, ry));
                }
            }
            (Term::Col(x), Term::Const(c)) => {
                let state = classes.entry(uf.find(slots[x])).or_default();
                match op {
                    CmpOp::Eq => {
                        state.tighten_lo(c.clone(), false);
                        state.tighten_hi(c.clone(), false);
                    }
                    CmpOp::Ne => state.excluded.push(c.clone()),
                    CmpOp::Lt => state.tighten_hi(c.clone(), true),
                    CmpOp::Le => state.tighten_hi(c.clone(), false),
                    CmpOp::Gt => state.tighten_lo(c.clone(), true),
                    CmpOp::Ge => state.tighten_lo(c.clone(), false),
                }
            }
            (Term::Const(_), _) => unreachable!("normalised above"),
        }
    }
    for state in classes.values() {
        if state.empty() {
            return false;
        }
    }
    // Cross-class pairs: decidable only when both classes are pinned.
    for (op, rx, ry) in pairs {
        if let (Some(vx), Some(vy)) = (
            classes.get(&rx).and_then(ClassState::pinned),
            classes.get(&ry).and_then(ClassState::pinned),
        ) {
            if !op.test(vx.compare(vy)) {
                return false;
            }
        }
    }
    true
}

fn refuted(conjuncts: &[Vec<Atom>]) -> bool {
    conjuncts.iter().all(|c| !conjunct_satisfiable(c))
}

/// Proven: the predicate evaluates `true` on **no** tuple (and never
/// errors). `false` means "no claim".
pub fn never_true(pred: &ScalarExpr) -> bool {
    match to_nnf(pred, true).as_ref().and_then(dnf) {
        Some(conjuncts) => refuted(&conjuncts),
        None => false,
    }
}

/// Proven: the predicate evaluates `true` on **every** tuple (and never
/// errors). `false` means "no claim".
pub fn always_true(pred: &ScalarExpr) -> bool {
    match to_nnf(pred, true).map(|n| compl(&n)).as_ref().and_then(dnf) {
        Some(conjuncts) => refuted(&conjuncts),
        None => false,
    }
}

/// Proven: every tuple on which `p` evaluates `true`, `q` also
/// evaluates `true` — i.e. `p ∧ ¬q` is unsatisfiable. `false` means
/// "no claim".
pub fn implies(p: &ScalarExpr, q: &ScalarExpr) -> bool {
    let (np, nq) = match (to_nnf(p, true), to_nnf(q, true)) {
        (Some(a), Some(b)) => (a, b),
        _ => return false,
    };
    match dnf(&Nnf::And(vec![np, compl(&nq)])) {
        Some(conjuncts) => refuted(&conjuncts),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Col(i)
    }

    fn int(v: i64) -> ScalarExpr {
        ScalarExpr::Const(Value::Int(v))
    }

    fn cmp(op: CmpOp, a: ScalarExpr, b: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn contradictory_interval_never_true() {
        // #0 < 0 ∧ #0 > 10
        let p = ScalarExpr::and(
            cmp(CmpOp::Lt, col(0), int(0)),
            cmp(CmpOp::Gt, col(0), int(10)),
        );
        assert!(never_true(&p));
        assert!(!always_true(&p));
    }

    #[test]
    fn open_predicate_makes_no_claim() {
        let p = cmp(CmpOp::Lt, col(0), int(0));
        assert!(!never_true(&p));
        assert!(!always_true(&p));
    }

    #[test]
    fn tautology_always_true() {
        // #0 < 5 ∨ #0 >= 5 — exhaustive under the total rank order
        // (null < 5 holds too).
        let p = ScalarExpr::or(
            cmp(CmpOp::Lt, col(0), int(5)),
            cmp(CmpOp::Ge, col(0), int(5)),
        );
        assert!(always_true(&p));
        assert!(!never_true(&p));
        assert!(never_true(&ScalarExpr::not(p)));
    }

    #[test]
    fn equality_chain_contradiction() {
        // #0 = #1 ∧ #1 = 3 ∧ #0 > 7
        let p = ScalarExpr::and(
            ScalarExpr::and(
                cmp(CmpOp::Eq, col(0), col(1)),
                cmp(CmpOp::Eq, col(1), int(3)),
            ),
            cmp(CmpOp::Gt, col(0), int(7)),
        );
        assert!(never_true(&p));
    }

    #[test]
    fn reflexive_strict_comparison_unsat() {
        // #0 = #1 ∧ #0 < #1
        let p = ScalarExpr::and(
            cmp(CmpOp::Eq, col(0), col(1)),
            cmp(CmpOp::Lt, col(0), col(1)),
        );
        assert!(never_true(&p));
        // #0 ≤ #1 alone: satisfiable, no claim.
        assert!(!never_true(&cmp(CmpOp::Le, col(0), col(1))));
    }

    #[test]
    fn pinned_exclusion_unsat() {
        // #0 = 4 ∧ #0 ≠ 4
        let p = ScalarExpr::and(
            cmp(CmpOp::Eq, col(0), int(4)),
            cmp(CmpOp::Ne, col(0), int(4)),
        );
        assert!(never_true(&p));
    }

    #[test]
    fn isnull_is_an_interval_fact() {
        // isnull(#0) ∧ #0 > 3: null sorts below every int, so the class
        // pins to null and the lower bound contradicts it.
        let p = ScalarExpr::and(
            ScalarExpr::IsNull(Box::new(col(0))),
            cmp(CmpOp::Gt, col(0), int(3)),
        );
        assert!(never_true(&p));
        // isnull(#0) ∧ not isnull(#0)
        let q = ScalarExpr::and(
            ScalarExpr::IsNull(Box::new(col(0))),
            ScalarExpr::not(ScalarExpr::IsNull(Box::new(col(0)))),
        );
        assert!(never_true(&q));
    }

    #[test]
    fn two_valued_comparison_on_null_is_not_kleene() {
        // #0 < 5 ∨ isnull(#0) is NOT always true in three-valued logic,
        // but under the evaluator's rank order null < 5 holds, so
        // #0 < 5 ∨ #0 >= 5 was the tautology; here #0 <= 5 ∨ #0 > 5
        // likewise.
        let p = ScalarExpr::or(
            cmp(CmpOp::Le, col(0), int(5)),
            cmp(CmpOp::Gt, col(0), int(5)),
        );
        assert!(always_true(&p));
    }

    #[test]
    fn implication_tight_implies_loose() {
        // #0 < 0 ⟹ #0 < 10
        assert!(implies(
            &cmp(CmpOp::Lt, col(0), int(0)),
            &cmp(CmpOp::Lt, col(0), int(10)),
        ));
        // #0 < 10 does not imply #0 < 0.
        assert!(!implies(
            &cmp(CmpOp::Lt, col(0), int(10)),
            &cmp(CmpOp::Lt, col(0), int(0)),
        ));
    }

    #[test]
    fn implication_with_disjunction() {
        // #0 = 1 ⟹ (#0 = 1 ∨ #0 = 2)
        let one = cmp(CmpOp::Eq, col(0), int(1));
        let or = ScalarExpr::or(one.clone(), cmp(CmpOp::Eq, col(0), int(2)));
        assert!(implies(&one, &or));
        assert!(!implies(&or, &one));
    }

    #[test]
    fn non_total_fragment_makes_no_claim() {
        // Arithmetic can error at runtime: no claim even on an
        // obviously false shape.
        let div = ScalarExpr::arith(tm_algebra::ArithOp::Div, int(1), int(0));
        let p = ScalarExpr::and(
            cmp(CmpOp::Lt, col(0), int(0)),
            ScalarExpr::and(cmp(CmpOp::Gt, col(0), int(10)), cmp(CmpOp::Eq, div, int(1))),
        );
        assert!(!never_true(&p));
        // Parameters are unknown statically.
        assert!(!never_true(&cmp(CmpOp::Lt, ScalarExpr::Param(0), int(0))));
    }

    #[test]
    fn constant_folding() {
        assert!(never_true(&ScalarExpr::false_()));
        assert!(always_true(&ScalarExpr::true_()));
        assert!(never_true(&cmp(CmpOp::Lt, int(5), int(3))));
        assert!(always_true(&cmp(CmpOp::Lt, int(3), int(5))));
    }

    #[test]
    fn cross_type_rank_order() {
        // "abc" > 5 under the rank order (Str ranks above Int): #0 = "abc"
        // ∧ #0 < 5 pins the class to a string and contradicts the bound.
        let p = ScalarExpr::and(
            cmp(CmpOp::Eq, col(0), ScalarExpr::str("abc")),
            cmp(CmpOp::Lt, col(0), int(5)),
        );
        assert!(never_true(&p));
    }
}
