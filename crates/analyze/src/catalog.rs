//! Incremental catalog analysis: per-rule diagnostics, semantic
//! triggering-graph refinement, and the termination certificate.
//!
//! ## What refinement proves
//!
//! The syntactic triggering graph (Definition 6.1) has an edge
//! `J1 → J2` whenever `GetTrigPX(action(J1)) ∩ triggers(J2) ≠ ∅`. The
//! edge is **semantically false** when `J1`'s action provably cannot
//! violate `J2`'s condition; then selecting `J2` *because of* `J1`
//! appends a program that does nothing — an alarm that selects no rows,
//! or (for compensating targets) a repair with nothing to repair. The
//! analyzer deletes such edges using three weakest-precondition
//! arguments over the action's write summary:
//!
//! * **untouched** — the action never writes the constrained relation;
//! * **delete-only** — the action only deletes from it, and deletions
//!   cannot violate a universal (`Domain`) constraint;
//! * **row fold** — every row the action inserts is statically
//!   enumerable and constant-folds the violation predicate to `false`
//!   ([`const_verdict`], the same proof rule as prepare-time
//!   specialization).
//!
//! For a `Referential` target `(∀x∈R)(∃y∈S)ρ`, the edge is false when
//! the action neither inserts into (nor updates) `R` nor deletes from
//! (nor updates) `S` — inserts into `S` can only add partners.
//!
//! ## Soundness provisos
//!
//! All edge proofs hold *relative to the integrity assumption*: the
//! state satisfies the constraints when the transaction starts (the
//! induction invariant transaction modification maintains). For
//! **aborting** targets the argument is then exact: a skipped check is
//! an `alarm` that would have selected nothing. For **compensating**
//! targets, skipping the selection also skips the response action, and
//! the claim "the action would have done nothing" additionally relies
//! on the paper's well-formedness assumption for repair actions — a
//! compensating action is a no-op when its rule's constraint is already
//! satisfied (e.g. it deletes exactly the violating rows). A
//! compensating action with unconditional side effects (say, an audit
//! insert performed even when there is nothing to repair) falls outside
//! that assumption, and pruning an edge into it changes behaviour; see
//! `docs/analysis.md`.
//!
//! The analysis is incremental: positions mirror the catalog's parallel
//! vectors, rule facts and pairwise verdicts are computed once per
//! added rule, and edge verdicts are memoized (positions are stable
//! across appends; removal rebuilds).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use tm_algebra::{Program, ScalarExpr, Statement};
use tm_calculus::ConstraintInfo;
use tm_relational::DatabaseSchema;
use tm_rules::{get_trig_px, IntegrityRule, TriggerSet, TriggeringGraph};
use tm_translate::{condition_shape, const_verdict, enumerable_rows, ConditionShape};

use crate::domain;
use crate::report::{AnalysisReport, Code, Diagnostic, PrunedEdge, TerminationCertificate};

/// What one action program does to one relation, abstracted for the
/// weakest-precondition edge proofs.
#[derive(Debug, Clone, Default)]
struct WriteSummary {
    /// Statically enumerated inserted rows (grounded singletons and
    /// literals).
    rows: Vec<Vec<ScalarExpr>>,
    /// Whether some insert's rows could not be enumerated.
    opaque_insert: bool,
    /// Whether the action deletes from the relation.
    deletes: bool,
    /// Whether the action updates the relation in place.
    updates: bool,
}

impl WriteSummary {
    fn inserts(&self) -> bool {
        self.opaque_insert || !self.rows.is_empty()
    }
}

/// Per-relation write summaries of an action program.
fn summarize_writes(program: &Program) -> BTreeMap<String, WriteSummary> {
    let mut writes: BTreeMap<String, WriteSummary> = BTreeMap::new();
    for stmt in program.statements() {
        match stmt {
            Statement::Insert { relation, source } => {
                let w = writes.entry(relation.clone()).or_default();
                match enumerable_rows(source) {
                    Some(rows) => w.rows.extend(rows),
                    None => w.opaque_insert = true,
                }
            }
            Statement::Delete { relation, .. } => {
                writes.entry(relation.clone()).or_default().deletes = true;
            }
            Statement::Update { relation, .. } => {
                writes.entry(relation.clone()).or_default().updates = true;
            }
            // Temporaries, alarms and aborts write no base relation.
            Statement::Assign { .. } | Statement::Alarm(_) | Statement::Abort => {}
        }
    }
    writes
}

/// Everything the analyzer knows about one rule, computed once at
/// definition time.
#[derive(Debug, Clone)]
struct RuleFacts {
    name: String,
    is_abort: bool,
    triggers: TriggerSet,
    action_triggers: TriggerSet,
    /// The condition's shape — computed unconditionally (unlike the
    /// catalog's prepare-time shapes, which only cover aborting rules):
    /// refinement pushes differentials through *compensating* rules'
    /// conditions too.
    shape: ConditionShape,
    writes: BTreeMap<String, WriteSummary>,
}

fn subset(a: &TriggerSet, b: &TriggerSet) -> bool {
    a.iter().all(|t| b.contains(t))
}

/// The weakest-precondition verdict for the syntactic edge
/// `from → to`: `Some(proof)` when the edge is semantically false.
fn edge_verdict(facts: &[RuleFacts], from: usize, to: usize) -> Option<String> {
    let src = &facts[from];
    let dst = &facts[to];
    match &dst.shape {
        ConditionShape::Domain {
            rel,
            violation_pred,
        } => {
            let Some(w) = src.writes.get(rel) else {
                return Some(format!(
                    "action of `{}` never writes `{rel}`, the relation `{}`'s condition constrains",
                    src.name, dst.name
                ));
            };
            if w.updates || w.opaque_insert {
                return None;
            }
            if !w.inserts() {
                return Some(format!(
                    "action of `{}` only deletes from `{rel}`; deletions cannot violate a universal constraint",
                    src.name
                ));
            }
            for row in &w.rows {
                let folded = violation_pred.substitute_cols(row);
                if const_verdict(&folded) != Some(false) {
                    return None;
                }
            }
            Some(format!(
                "every `{rel}` row inserted by `{}` constant-folds `{}`'s violation predicate to false",
                src.name, dst.name
            ))
        }
        ConditionShape::Referential { rel_r, rel_s, .. } => {
            let r_ok = src
                .writes
                .get(rel_r)
                .is_none_or(|w| !w.inserts() && !w.updates);
            let s_ok = src
                .writes
                .get(rel_s)
                .is_none_or(|w| !w.deletes && !w.updates);
            if r_ok && s_ok {
                Some(format!(
                    "action of `{}` neither inserts into `{rel_r}` nor deletes from `{rel_s}`; the referential condition of `{}` cannot lose a match",
                    src.name, dst.name
                ))
            } else {
                None
            }
        }
        ConditionShape::Other => None,
    }
}

/// A001/A002 for one rule (aborting `Domain` rules only: a compensating
/// rule's response runs regardless of its condition, so liveness claims
/// about the condition say nothing about the action).
fn liveness_diag(facts: &RuleFacts) -> Option<Diagnostic> {
    if !facts.is_abort {
        return None;
    }
    let ConditionShape::Domain {
        rel,
        violation_pred,
    } = &facts.shape
    else {
        return None;
    };
    if domain::always_true(violation_pred) {
        return Some(Diagnostic {
            code: Code::UnsatisfiableConstraint,
            rule: facts.name.clone(),
            message: format!(
                "constraint on `{rel}` is unsatisfiable: the violation predicate `{violation_pred}` holds for every tuple, so any insert into `{rel}` aborts"
            ),
        });
    }
    if domain::never_true(violation_pred) {
        return Some(Diagnostic {
            code: Code::TautologicalConstraint,
            rule: facts.name.clone(),
            message: format!(
                "constraint on `{rel}` is tautological: the violation predicate `{violation_pred}` holds for no tuple, so the compiled check can never fire (dead rule)"
            ),
        });
    }
    None
}

/// A003 between an older and a newer rule: both aborting `Domain`
/// checks on the same relation. A rule is subsumed when the other rule
/// triggers whenever it does (trigger-set inclusion) and aborts
/// whenever it would (violation-predicate implication).
fn subsumption_diag(older: &RuleFacts, newer: &RuleFacts) -> Option<Diagnostic> {
    if !older.is_abort || !newer.is_abort {
        return None;
    }
    let (
        ConditionShape::Domain {
            rel: rel_o,
            violation_pred: v_o,
        },
        ConditionShape::Domain {
            rel: rel_n,
            violation_pred: v_n,
        },
    ) = (&older.shape, &newer.shape)
    else {
        return None;
    };
    if rel_o != rel_n {
        return None;
    }
    let subsumed_by = |winner: &RuleFacts, loser: &RuleFacts| {
        Diagnostic {
        code: Code::SubsumedBy,
        rule: loser.name.clone(),
        message: format!(
            "subsumed by `{}`: every tuple violating this rule's constraint on `{rel_o}` also violates `{}`'s, and `{}` triggers whenever this rule does — removing this rule preserves behaviour",
            winner.name, winner.name, winner.name
        ),
    }
    };
    if subset(&newer.triggers, &older.triggers) && domain::implies(v_n, v_o) {
        Some(subsumed_by(older, newer))
    } else if subset(&older.triggers, &newer.triggers) && domain::implies(v_o, v_n) {
        Some(subsumed_by(newer, older))
    } else {
        None
    }
}

/// The cached static analysis of one catalog state. Positions mirror
/// the catalog's rule vector; maintain with
/// [`CatalogAnalysis::add_rule`] / [`CatalogAnalysis::remove_rule`].
#[derive(Debug, Clone)]
pub struct CatalogAnalysis {
    schema: Arc<DatabaseSchema>,
    facts: Vec<RuleFacts>,
    /// A001–A003, accumulated incrementally in definition order.
    rule_diags: Vec<Diagnostic>,
    /// Memoized edge verdicts — valid across appends (positions are
    /// stable), cleared on removal.
    edge_memo: BTreeMap<(usize, usize), Option<String>>,
    graph: TriggeringGraph,
    pruned: BTreeSet<(usize, usize)>,
    pruned_proofs: Vec<PrunedEdge>,
    refined: TriggeringGraph,
    syntactic_cycles: Vec<Vec<String>>,
    refined_cycles: Vec<Vec<String>>,
    certified: bool,
}

impl CatalogAnalysis {
    /// An empty analysis over a schema.
    pub fn new(schema: Arc<DatabaseSchema>) -> CatalogAnalysis {
        CatalogAnalysis {
            schema,
            facts: Vec::new(),
            rule_diags: Vec::new(),
            edge_memo: BTreeMap::new(),
            graph: TriggeringGraph::build(&[]),
            pruned: BTreeSet::new(),
            pruned_proofs: Vec::new(),
            refined: TriggeringGraph::build(&[]),
            syntactic_cycles: Vec::new(),
            refined_cycles: Vec::new(),
            certified: true,
        }
    }

    /// Number of rules analysed.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no rules have been analysed.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Fold in the next rule (position = number of rules added before
    /// it, matching the catalog), with its analysed condition.
    pub fn add_rule(&mut self, rule: &IntegrityRule, info: &ConstraintInfo) {
        let action_program = rule.action().as_program();
        let facts = RuleFacts {
            name: rule.name.clone(),
            is_abort: rule.action().is_abort(),
            triggers: rule.triggers().clone(),
            action_triggers: get_trig_px(&action_program, rule.non_triggering),
            shape: condition_shape(&info.formula, &self.schema),
            writes: summarize_writes(&action_program),
        };
        if let Some(d) = liveness_diag(&facts) {
            self.rule_diags.push(d);
        }
        for older in &self.facts {
            if let Some(d) = subsumption_diag(older, &facts) {
                self.rule_diags.push(d);
            }
        }
        self.facts.push(facts);
        self.refresh();
    }

    /// Remove the rule at `position` (the catalog position it was added
    /// at). Rebuilds the derived state — removal is rare.
    pub fn remove_rule(&mut self, position: usize) {
        self.facts.remove(position);
        self.edge_memo.clear();
        self.rule_diags.clear();
        for n in 0..self.facts.len() {
            if let Some(d) = liveness_diag(&self.facts[n]) {
                self.rule_diags.push(d);
            }
            for o in 0..n {
                if let Some(d) = subsumption_diag(&self.facts[o], &self.facts[n]) {
                    self.rule_diags.push(d);
                }
            }
        }
        self.refresh();
    }

    /// Rebuild the graphs, the pruned-edge set and the certificate from
    /// the current facts (edge verdicts come from the memo).
    fn refresh(&mut self) {
        let action_triggers: Vec<TriggerSet> = self
            .facts
            .iter()
            .map(|f| f.action_triggers.clone())
            .collect();
        self.graph = TriggeringGraph::build_with(
            self.facts.iter().map(|f| f.name.clone()).collect(),
            self.facts.iter().map(|f| &f.triggers),
            &action_triggers,
        );
        self.pruned.clear();
        self.pruned_proofs.clear();
        for (i, targets) in self.graph.edges().iter().enumerate() {
            for &j in targets {
                let verdict = self
                    .edge_memo
                    .entry((i, j))
                    .or_insert_with(|| edge_verdict(&self.facts, i, j));
                if let Some(proof) = verdict {
                    self.pruned.insert((i, j));
                    self.pruned_proofs.push(PrunedEdge {
                        from: self.facts[i].name.clone(),
                        to: self.facts[j].name.clone(),
                        proof: proof.clone(),
                    });
                }
            }
        }
        self.refined = self.graph.without_edges(&self.pruned);
        self.syntactic_cycles = self.graph.cycle_paths();
        self.refined_cycles = self.refined.cycle_paths();
        self.certified = self.refined.is_acyclic();
    }

    /// Whether termination is proven: the refined triggering graph is
    /// acyclic, so modification reaches a fixpoint within `|catalog|`
    /// rounds and the runtime round budget is provably unreachable.
    pub fn certified(&self) -> bool {
        self.certified
    }

    /// Whether the syntactic edge `from → to` was semantically pruned.
    /// `ModP` skips a selection when every program appended in the
    /// previous round reaches it only over pruned edges.
    pub fn edge_pruned(&self, from: usize, to: usize) -> bool {
        self.pruned.contains(&(from, to))
    }

    /// Cycle paths surviving refinement (empty iff certified).
    pub fn refined_cycles(&self) -> &[Vec<String>] {
        &self.refined_cycles
    }

    /// The first surviving cycle path, for error rendering.
    pub fn first_refined_cycle(&self) -> Vec<String> {
        self.refined_cycles.first().cloned().unwrap_or_default()
    }

    /// Assemble the full report for the current catalog state.
    pub fn report(&self) -> AnalysisReport {
        let mut diagnostics = self.rule_diags.clone();
        for p in &self.pruned_proofs {
            diagnostics.push(Diagnostic {
                code: Code::FalseEdgePruned,
                rule: p.from.clone(),
                message: format!("triggering edge to `{}` pruned: {}", p.to, p.proof),
            });
        }
        for c in &self.refined_cycles {
            diagnostics.push(Diagnostic {
                code: Code::UnprovenTermination,
                rule: c.first().cloned().unwrap_or_default(),
                message: format!(
                    "triggering cycle survives semantic refinement: {}; termination unproven, the runtime round budget stays armed",
                    c.join(" -> ")
                ),
            });
        }
        AnalysisReport {
            rules: self.facts.len(),
            syntactic_edges: self.graph.edge_count(),
            refined_edges: self.refined.edge_count(),
            diagnostics,
            certificate: TerminationCertificate {
                certified: self.certified,
                syntactic_cycles: self.syntactic_cycles.clone(),
                refined_cycles: self.refined_cycles.clone(),
                pruned: self.pruned_proofs.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_calculus::analyze;
    use tm_relational::{RelationSchema, ValueType};
    use tm_rules::parse_rule;

    fn schema() -> Arc<DatabaseSchema> {
        DatabaseSchema::from_relations(vec![
            RelationSchema::of("r", &[("v", ValueType::Int)]),
            RelationSchema::of("s", &[("m", ValueType::Int)]),
            RelationSchema::of("log", &[("code", ValueType::Int)]),
        ])
        .unwrap()
        .into_shared()
    }

    fn analysis_of(rules: &[(&str, &str)]) -> CatalogAnalysis {
        let schema = schema();
        let mut a = CatalogAnalysis::new(schema.clone());
        for (name, text) in rules {
            let rule = parse_rule(text, name).unwrap();
            let info = analyze(rule.condition(), &schema).unwrap();
            a.add_rule(&rule, &info);
        }
        a
    }

    #[test]
    fn empty_catalog_is_certified() {
        let a = CatalogAnalysis::new(schema());
        assert!(a.certified());
        assert!(a.report().diagnostics.is_empty());
    }

    #[test]
    fn unsatisfiable_constraint_reported() {
        let a = analysis_of(&[(
            "impossible",
            "IF NOT forall x (x in r implies x.v < 0 and x.v > 10) THEN abort",
        )]);
        let report = a.report();
        assert!(report.has(Code::UnsatisfiableConstraint, "impossible"));
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn dead_rule_reported() {
        let a = analysis_of(&[(
            "dead",
            "IF NOT forall x (x in r implies x.v < 5 or x.v >= 5) THEN abort",
        )]);
        let report = a.report();
        assert!(report.has(Code::TautologicalConstraint, "dead"));
        assert_eq!(report.warnings(), 1);
    }

    #[test]
    fn live_rule_clean() {
        let a = analysis_of(&[(
            "live",
            "IF NOT forall x (x in r implies x.v >= 0) THEN abort",
        )]);
        assert!(a.report().diagnostics.is_empty());
        assert!(a.certified());
    }

    #[test]
    fn loose_rule_subsumed_by_tight() {
        let a = analysis_of(&[
            (
                "tight",
                "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 10) THEN abort",
            ),
            (
                "loose",
                "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 0) THEN abort",
            ),
        ]);
        let report = a.report();
        assert!(report.has(Code::SubsumedBy, "loose"), "{report}");
        assert!(!report.has(Code::SubsumedBy, "tight"));
    }

    #[test]
    fn subsumption_respects_trigger_inclusion() {
        // The loose rule triggers on more update types than the tight
        // one, so the tight rule does not cover it.
        let a = analysis_of(&[
            (
                "tight",
                "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 10) THEN abort",
            ),
            (
                "loose",
                "WHEN INS(r), DEL(s) IF NOT forall x (x in r implies x.v >= 0) THEN abort",
            ),
        ]);
        assert!(!a.report().has(Code::SubsumedBy, "loose"));
    }

    #[test]
    fn repair_cycle_refines_to_certified() {
        // Syntactic 2-cycle of well-formed repairs; both edges are
        // semantically false (each action leaves the other's relation
        // untouched), plus an insert edge refuted by row folding.
        let a = analysis_of(&[
            (
                "clamp",
                "WHEN INS(r), DEL(s) IF NOT forall x (x in r implies x.v >= 0) \
                 THEN delete(r, select[#0 < 0](r)); insert(log, {(0)})",
            ),
            (
                "mark",
                "WHEN DEL(r) IF NOT forall y (y in s implies y.m >= 0) \
                 THEN delete(s, select[#0 < 0](s))",
            ),
            (
                "logcheck",
                "WHEN INS(log) IF NOT forall z (z in log implies z.code >= 0) THEN abort",
            ),
        ]);
        let report = a.report();
        assert!(!report.certificate.syntactic_cycles.is_empty());
        assert!(a.certified(), "{report}");
        assert!(report.certificate.refined_cycles.is_empty());
        // clamp→mark, clamp→logcheck, mark→clamp all pruned.
        assert_eq!(report.certificate.pruned.len(), 3, "{report}");
        assert!(a.edge_pruned(0, 1) && a.edge_pruned(0, 2) && a.edge_pruned(1, 0));
        assert_eq!(report.syntactic_edges, 3);
        assert_eq!(report.refined_edges, 0);
    }

    #[test]
    fn opaque_cycle_stays_unproven() {
        let a = analysis_of(&[
            (
                "ping",
                "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 0) THEN insert(s, r@ins)",
            ),
            (
                "pong",
                "WHEN INS(s) IF NOT forall y (y in s implies y.m >= 0) THEN insert(r, s@ins)",
            ),
        ]);
        assert!(!a.certified());
        let report = a.report();
        assert!(report.has(Code::UnprovenTermination, "ping"), "{report}");
        assert_eq!(a.first_refined_cycle(), vec!["ping", "pong", "ping"]);
    }

    #[test]
    fn removal_rebuilds_positions_and_verdicts() {
        let mut a = analysis_of(&[
            (
                "tight",
                "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 10) THEN abort",
            ),
            (
                "loose",
                "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 0) THEN abort",
            ),
        ]);
        assert!(a.report().has(Code::SubsumedBy, "loose"));
        a.remove_rule(1);
        let report = a.report();
        assert_eq!(report.rules, 1);
        assert!(report.diagnostics.is_empty(), "{report}");
        assert!(a.certified());
    }

    #[test]
    fn self_loop_with_satisfying_insert_pruned() {
        // The action re-inserts a row that provably satisfies the
        // constraint: the self-edge folds away.
        let a = analysis_of(&[(
            "selfheal",
            "WHEN INS(r) IF NOT forall x (x in r implies x.v >= 0) \
             THEN delete(r, select[#0 < 0](r)); insert(r, {(0)})",
        )]);
        assert!(a.certified(), "{}", a.report());
        assert!(a.edge_pruned(0, 0));
    }

    #[test]
    fn referential_edge_pruned_when_no_match_lost() {
        // sref: every s.m must have a matching r.v. The repair inserts
        // into s's referenced relation r — inserts into the referenced
        // side cannot lose a match... but here the action inserts into
        // the *referencing* side's referenced relation r, which is
        // fine; deleting from s is also fine for r-side.
        let a = analysis_of(&[
            (
                "sref",
                "WHEN INS(s), INS(r) IF NOT forall x (x in s implies exists y (y in r and x.m = y.v)) THEN abort",
            ),
            (
                "feeder",
                "WHEN DEL(log) IF NOT forall x (x in r implies x.v >= 0) THEN insert(r, {(1)})",
            ),
        ]);
        // feeder inserts into r (the referenced relation): edge
        // feeder→sref exists syntactically (INS(r)), but cannot violate
        // the referential condition.
        assert!(a.edge_pruned(1, 0), "{}", a.report());
    }
}
