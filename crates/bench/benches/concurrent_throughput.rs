//! `concurrent_throughput` — MVCC session scaling and contention,
//! in-process.
//!
//! Drives a single `ConcurrentEngine` directly (no wire protocol): each
//! thread owns a `ConcurrentSession`, adopts the shared prepared
//! statements, and streams bindings through `execute_with_retry`. Three
//! workloads:
//!
//! * **order_entry** — disjoint key ranges per thread (the scenario's
//!   seed partitioning), so commits never collide: the scaling ceiling.
//! * **hot_key** — every thread runs the *same* binding stream (same
//!   seed), so concurrent executions write the same tuples. The race is
//!   made deterministic with `execute_deferred`: each round, every
//!   thread snapshots and runs *before* any of them commits (a barrier
//!   between the two halves), so exactly one commit per round wins
//!   first-committer-wins validation and the rest pay the conflict path
//!   — re-execution on a fresh snapshot. This measures the contention
//!   cost honestly on any machine: on a single core, free-running
//!   threads interleave at scheduler granularity and conflicts become
//!   flukes of preemption timing, whereas the deferred race always
//!   overlaps.
//! * **order_entry_fsync** — the disjoint workload on a durable engine
//!   (`Durability::Fsync`, `group_commit` = [`GROUP_COMMIT`]): the
//!   flat-combining applier drains whole commit batches under one lock
//!   acquisition, and the WAL fsyncs once per `group_commit` commits —
//!   the reported fsync count shows the amortization.
//!
//! Each sweep divides a **fixed total** binding stream across the
//! thread counts (1, 2, 4, 8): the relation ends at the same size in
//! every row, so rows differ only in concurrency — not in COW-unshare
//! cost, which grows with relation size. `cores` in the JSON records
//! `available_parallelism()` so the validator can tell real scaling
//! headroom from a single-core box, where threads interleave rather
//! than parallelize and the honest criterion is "no collapse under
//! oversubscription", not speedup.
//!
//! Results are printed as a table and written to
//! `BENCH_concurrent_throughput.json` (override with `BENCH_OUT`). Set
//! `BENCH_SMOKE=1` for the CI configuration: short streams.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use tm_bench::report::Table;
use tm_bench::scenarios::{self, Scenario};
use tm_durable::{Durability, DurabilityConfig};
use txmod::{ConcurrentEngine, EnforcementMode, Engine, EngineConfig, Prepared};

/// Thread counts swept per workload.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Retry budget per binding. Retries are livelock-free (a binding only
/// conflicts when some other transaction committed), so the budget is a
/// latency bound, not a correctness knob; exhausting it fails the bench.
const RETRIES: usize = 100_000;

/// Group-commit batch of the durable workload: one fsync per this many
/// commits.
const GROUP_COMMIT: usize = 8;

struct Row {
    workload: &'static str,
    threads: usize,
    transactions: u64,
    committed: u64,
    aborted: u64,
    conflict_retries: u64,
    elapsed_secs: f64,
    tx_per_sec: f64,
    wal_fsyncs: u64,
}

fn parse(template: &str) -> tm_algebra::Transaction {
    tm_algebra::parser::parse_program(template)
        .expect("template parses")
        .bracket()
}

/// Run one workload at one thread count on a fresh engine. `contended`
/// makes every thread stream identical bindings and race each one
/// through the deferred snapshot/commit halves (contention by design);
/// otherwise seeds partition the key space, threads never collide, and
/// each binding is one free-running `execute_with_retry`.
fn run(
    workload: &'static str,
    scenario: &Scenario,
    threads: usize,
    per_thread: usize,
    contended: bool,
    durable_dir: Option<&std::path::Path>,
) -> Row {
    let mut engine = Engine::with_config(
        scenario.schema.clone(),
        EngineConfig {
            mode: EnforcementMode::Static,
            durability: DurabilityConfig {
                level: Durability::Fsync,
                group_commit: GROUP_COMMIT,
                checkpoint_every: 0,
            },
            ..EngineConfig::default()
        },
    );
    for (name, cl) in &scenario.constraints {
        engine.define_constraint(name, cl).expect("constraint");
    }
    for (relation, tuples) in &scenario.loads {
        engine.load(relation, tuples.clone()).expect("load");
    }
    if let Some(dir) = durable_dir {
        std::fs::create_dir_all(dir).expect("wal dir");
        engine.make_durable(dir).expect("make durable");
    }
    let fsyncs_before = tm_durable::wal_fsyncs();
    let ce = ConcurrentEngine::new(engine);
    let prepared: Vec<Prepared> = {
        let guard = ce.lock();
        scenario
            .templates
            .iter()
            .map(|t| guard.prepare(&parse(t)).expect("prepare"))
            .collect()
    };

    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let retries_total = AtomicU64::new(0);
    let barrier = Arc::new(Barrier::new(threads));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let ce = ce.clone();
            let prepared = &prepared;
            let committed = &committed;
            let aborted = &aborted;
            let retries_total = &retries_total;
            let barrier = barrier.clone();
            s.spawn(move || {
                let mut session = ce.session();
                let ids: Vec<_> = prepared.iter().map(|p| session.adopt(p.clone())).collect();
                let seed = if contended { 1 } else { t as u64 + 1 };
                for (idx, params) in scenario.bindings(seed, per_thread) {
                    let (out, retries) = if contended {
                        // Deterministic race: all threads snapshot and
                        // run, then all commit — one winner per round,
                        // the rest conflict and re-execute.
                        let pending = session
                            .execute_deferred(ids[idx], &params)
                            .expect("deferred execution");
                        barrier.wait();
                        match pending.commit() {
                            Ok((out, _epoch)) => (out, 0),
                            Err(e) => {
                                assert!(e.is_retryable(), "unexpected commit failure: {e}");
                                let (out, retries) = session
                                    .execute_with_retry(ids[idx], &params, RETRIES)
                                    .expect("execution survives the retry budget");
                                (out, retries + 1)
                            }
                        }
                    } else {
                        session
                            .execute_with_retry(ids[idx], &params, RETRIES)
                            .expect("execution survives the retry budget")
                    };
                    retries_total.fetch_add(retries as u64, Ordering::Relaxed);
                    if out.committed() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let committed = committed.into_inner();
    let aborted = aborted.into_inner();
    let transactions = committed + aborted;
    assert_eq!(
        transactions,
        (threads * per_thread) as u64,
        "{workload}/{threads}: every binding must be answered"
    );
    let ratio = committed as f64 / transactions.max(1) as f64;
    assert!(
        (ratio - scenario.expect_commit_ratio).abs() < 0.1,
        "{workload}/{threads}: commit ratio {ratio} (expected ~{})",
        scenario.expect_commit_ratio
    );
    Row {
        workload,
        threads,
        transactions,
        committed,
        aborted,
        conflict_retries: retries_total.into_inner(),
        elapsed_secs: elapsed,
        tx_per_sec: transactions as f64 / elapsed.max(1e-9),
        wal_fsyncs: if durable_dir.is_some() {
            tm_durable::wal_fsyncs() - fsyncs_before
        } else {
            0
        },
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (total, hot_total, fsync_total) = if smoke {
        (2_000, 1_000, 800)
    } else {
        (20_000, 8_000, 4_000)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "concurrent_throughput: threads {THREADS:?}, {total} tx total per row \
         ({cores} core(s) available){}",
        if smoke { " [smoke]" } else { "" }
    );

    let order_entry = scenarios::order_entry();
    let hot_key = scenarios::hot_key();
    let mut rows = Vec::new();
    for &threads in &THREADS {
        rows.push(run(
            "order_entry",
            &order_entry,
            threads,
            total / threads,
            false,
            None,
        ));
    }
    for &threads in &THREADS {
        rows.push(run(
            "hot_key",
            &hot_key,
            threads,
            hot_total / threads,
            true,
            None,
        ));
    }
    let wal_root = std::env::temp_dir().join(format!("tm_concurrent_bench_{}", std::process::id()));
    for &threads in &[1usize, 4] {
        let dir = wal_root.join(format!("t{threads}"));
        rows.push(run(
            "order_entry_fsync",
            &order_entry,
            threads,
            fsync_total / threads,
            false,
            Some(&dir),
        ));
    }
    let _ = std::fs::remove_dir_all(&wal_root);

    // Contention must actually happen: the same-seed threads write the
    // same tuples, so multi-thread hot_key runs must lose (and retry)
    // first-committer-wins validation at least once.
    let hot_retries: u64 = rows
        .iter()
        .filter(|r| r.workload == "hot_key" && r.threads >= 2)
        .map(|r| r.conflict_retries)
        .sum();
    assert!(
        hot_retries > 0,
        "contended hot_key must observe first-committer-wins conflicts"
    );
    // Group commit must amortize: far fewer fsyncs than commits.
    for r in rows.iter().filter(|r| r.workload == "order_entry_fsync") {
        assert!(
            r.wal_fsyncs <= r.committed / (GROUP_COMMIT as u64 / 2).max(1) + 2,
            "group commit must amortize fsyncs ({} fsyncs for {} commits)",
            r.wal_fsyncs,
            r.committed
        );
    }

    let mut table = Table::new(
        "concurrent_throughput (in-process sessions, Static mode)",
        &[
            "workload",
            "threads",
            "tx",
            "committed",
            "retries",
            "tx/s",
            "fsyncs",
        ],
    );
    for r in &rows {
        table.row(&[
            r.workload.to_string(),
            r.threads.to_string(),
            r.transactions.to_string(),
            r.committed.to_string(),
            r.conflict_retries.to_string(),
            format!("{:.0}", r.tx_per_sec),
            r.wal_fsyncs.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut json_rows = String::new();
    for r in &rows {
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let _ = write!(
            json_rows,
            "    {{\"workload\": \"{}\", \"threads\": {}, \"transactions\": {}, \
             \"committed\": {}, \"aborted\": {}, \"conflict_retries\": {}, \
             \"elapsed_secs\": {:.3}, \"tx_per_sec\": {:.1}, \"wal_fsyncs\": {}}}",
            r.workload,
            r.threads,
            r.transactions,
            r.committed,
            r.aborted,
            r.conflict_retries,
            r.elapsed_secs,
            r.tx_per_sec,
            r.wal_fsyncs
        );
    }
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_concurrent_throughput.json"
        )
        .to_owned()
    });
    let json = format!(
        "{{\n  \"bench\": \"concurrent_throughput\",\n  \"smoke\": {smoke},\n  \
         \"mode\": \"Static\",\n  \"cores\": {cores},\n  \"group_commit\": {GROUP_COMMIT},\n  \
         \"results\": [\n{json_rows}\n  ]\n}}\n"
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
