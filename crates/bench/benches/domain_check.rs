//! P2 — the §7 domain constraint measurement: "checking a domain
//! constraint in the same situation takes less than 1 second" (8-node
//! POOMA). The shape target is that the domain check is roughly 3× cheaper
//! than the referential check of P1.

use criterion::{criterion_group, criterion_main, Criterion};
use tm_algebra::{CmpOp, ScalarExpr};
use tm_bench::workload::{paper, Workload};

fn bench_domain(c: &mut Criterion) {
    let w = Workload::paper_scale(42);
    let db = w.into_parallel_db(paper::NODES);
    let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(2), ScalarExpr::int(0));
    let mut group = c.benchmark_group("domain_check");
    group.sample_size(20);
    group.bench_function("full_8nodes", |b| {
        b.iter(|| {
            let r = db.check_domain("child", &pred);
            assert!(r.satisfied());
            r
        })
    });
    group.bench_function("delta_8nodes", |b| {
        b.iter(|| db.check_domain_delta("child", &w.inserts, &pred))
    });
    let db1 = w.into_parallel_db(1);
    group.bench_function("full_1node", |b| {
        b.iter(|| db1.check_domain("child", &pred))
    });
    group.finish();
}

criterion_group!(benches, bench_domain);
criterion_main!(benches);
