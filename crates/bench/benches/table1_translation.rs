//! T1 — Table 1: cost of translating each typical constraint construct
//! (`TransC`, Algorithm 5.6). Rule translation happens once per rule
//! definition under the static scheme of §6.2, but per *transaction* under
//! the dynamic scheme, so its cost is part of experiment A1's story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tm_calculus::parse_formula;
use tm_translate::table1::{table1_rows, table1_schema};
use tm_translate::trans_c;

fn bench_table1(c: &mut Criterion) {
    let schema = table1_schema();
    let rows = table1_rows().expect("table 1 translates");
    let mut group = c.benchmark_group("table1_translation");
    for row in &rows {
        let formula = parse_formula(row.instance).expect("instance parses");
        group.bench_with_input(
            BenchmarkId::new("trans_c", format!("row{}", row.id)),
            &formula,
            |b, f| b.iter(|| trans_c(std::hint::black_box(f), &schema).expect("translates")),
        );
    }
    // End-to-end: parse + translate (what a DDL statement would cost).
    group.bench_function("parse_and_translate/row2", |b| {
        b.iter(|| {
            let f = parse_formula("forall x (x in r implies exists y (y in s and x.1 = y.1))")
                .expect("parses");
            trans_c(&f, &schema).expect("translates")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
