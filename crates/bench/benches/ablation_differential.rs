//! A2 — differential (delta-only) checks vs. full-relation checks
//! (§5.2.1): end-to-end engine execution of an insert batch under both
//! compilation schemes, across database sizes. The gap should grow with
//! the relation size — the full check is O(|child|), the delta check
//! O(|batch|).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tm_algebra::builder::TransactionBuilder;
use tm_bench::workload::{child_schema, parent_schema, Workload};
use tm_relational::DatabaseSchema;
use txmod::{EnforcementMode, Engine, EngineConfig};

fn build_engine(mode: EnforcementMode, children: usize) -> (Engine, tm_algebra::Transaction) {
    let schema = DatabaseSchema::from_relations(vec![parent_schema(), child_schema()])
        .expect("schema valid");
    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    engine
        .define_constraint(
            "fk",
            "forall x (x in child implies exists y (y in parent and x.fk = y.key))",
        )
        .unwrap();
    engine
        .define_constraint("amount", "forall x (x in child implies x.amount >= 0)")
        .unwrap();
    let w = Workload::generate(1_000, children, 100, 0, 7);
    engine.load("parent", w.parents.iter().cloned()).unwrap();
    engine.load("child", w.children.iter().cloned()).unwrap();
    let tx = TransactionBuilder::new()
        .insert_tuples("child", w.inserts)
        .build();
    (engine, tx)
}

fn bench_differential(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_differential");
    group.sample_size(10);
    for &children in &[1_000usize, 10_000] {
        for (label, mode) in [
            ("full", EnforcementMode::Static),
            ("differential", EnforcementMode::Differential),
        ] {
            let (engine, tx) = build_engine(mode, children);
            group.bench_with_input(
                BenchmarkId::new(label, children),
                &(engine, tx),
                |b, (engine, tx)| {
                    b.iter_batched(
                        || engine.clone(),
                        |mut e| {
                            let out = e.execute(tx).expect("executes");
                            assert!(out.committed());
                            out
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_differential);
criterion_main!(benches);
