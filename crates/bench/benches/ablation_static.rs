//! A1 — static precompilation (§6.2, integrity programs) vs. dynamic
//! enforcement-time translation (the literal Algorithm 5.1): the cost of
//! `ModT` per transaction under both schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use tm_algebra::builder::TransactionBuilder;
use tm_relational::Tuple;
use txmod::{EnforcementMode, Engine, EngineConfig};

fn engine(mode: EnforcementMode) -> Engine {
    let mut e = Engine::with_config(
        tm_relational::schema::beer_schema(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    let rules: [(&str, &str); 6] = [
        (
            "alcohol_nonneg",
            "forall x (x in beer implies x.alcohol >= 0)",
        ),
        (
            "alcohol_cap",
            "forall x (x in beer implies x.alcohol <= 80.0)",
        ),
        (
            "brewery_fk",
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        ),
        ("beer_count", "CNT(beer) <= 1000000"),
        (
            "brewery_city",
            "forall x (x in brewery implies x.city != '')",
        ),
        (
            "unique_name",
            "forall x (x in beer implies forall y (y in beer implies \
             (x == y or x.name != y.name)))",
        ),
    ];
    for (name, cl) in rules {
        e.define_constraint(name, cl).expect("constraint valid");
    }
    e
}

fn bench_modification(c: &mut Criterion) {
    let tx = TransactionBuilder::new()
        .insert_tuple(
            "beer",
            Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
        )
        .build();
    let mut group = c.benchmark_group("ablation_static");
    for (label, mode) in [
        ("dynamic_mod_t", EnforcementMode::Dynamic),
        ("static_mod_t", EnforcementMode::Static),
        ("differential_mod_t", EnforcementMode::Differential),
    ] {
        let e = engine(mode);
        group.bench_function(label, |b| {
            b.iter(|| e.modify_only(std::hint::black_box(&tx)).expect("modifies"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modification);
criterion_main!(benches);
