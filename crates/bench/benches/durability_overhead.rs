//! `durability_overhead` — what crash safety costs, and what recovery
//! costs.
//!
//! **Throughput section**: prepared single-row insert latency under the
//! three durability levels plus the detached in-memory engine as the
//! zero-cost reference:
//!
//! * `memory`   — no durability attached (the PR-4 engine),
//! * `none`     — durability attached, `Durability::None`: checkpoint-only,
//!   no logging on the commit path (should match `memory`),
//! * `buffered` — frames accumulate in the WAL's userspace buffer (no
//!   syscall per commit), flushed at a size threshold and on shutdown,
//! * `fsync`    — write + fsync every commit (`group_commit = 1`), the
//!   full ARIES-style stable-commit guarantee on a differential log.
//!
//! **Recovery section**: wall-clock `Engine::recover` time against log
//! length (frames replayed from a cold start with an LSN-0 checkpoint).
//!
//! Results print as tables and land in `BENCH_durability.json` (override
//! with `BENCH_OUT`). `BENCH_SMOKE=1` is the CI configuration: smallest
//! sizes, few iterations.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tm_algebra::builder::TransactionBuilder;
use tm_bench::report::{fmt_duration, Table};
use tm_relational::{DatabaseSchema, RelationSchema, Value, ValueType};
use txmod::{Durability, DurabilityConfig, Engine, EngineConfig};

fn time_median<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![RelationSchema::of(
        "account",
        &[("id", ValueType::Int), ("balance", ValueType::Int)],
    )])
    .expect("schema is valid")
}

fn engine() -> Engine {
    let mut e = Engine::with_config(schema(), EngineConfig::default());
    e.define_constraint("nonneg", "forall x (x in account implies x.balance >= 0)")
        .expect("constraint parses");
    e
}

fn bench_dir(tag: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(format!("durability-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn tx_per_sec(median: Duration) -> f64 {
    if median.as_nanos() == 0 {
        f64::INFINITY
    } else {
        1e9 / median.as_nanos() as f64
    }
}

struct Throughput {
    level: &'static str,
    median: Duration,
}

/// Median prepared bind+execute latency with the given durability level
/// (`None` = durability not attached at all).
fn measure_level(level: Option<Durability>, iters: usize, tag: &'static str) -> Throughput {
    let mut e = engine();
    let dir = bench_dir(tag);
    if let Some(level) = level {
        e.config_mut().durability = DurabilityConfig {
            level,
            group_commit: 1,
            checkpoint_every: 0,
        };
        e.make_durable(&dir).expect("make_durable");
    }
    let template = TransactionBuilder::new()
        .insert_params("account", 2)
        .build();
    let prepared = e.prepare(&template).expect("prepare");
    let mut next_id = 0i64;
    let median = time_median(iters, || {
        next_id += 1;
        let bound = prepared
            .bind(&[Value::Int(next_id), Value::Int(100)])
            .expect("bind");
        let out = e.execute_bound(&bound).expect("execute");
        assert!(out.committed());
        out
    });
    let _ = std::fs::remove_dir_all(&dir);
    Throughput { level: tag, median }
}

struct Recovery {
    frames: usize,
    elapsed: Duration,
}

/// Build a log of `frames` single-row commits, then time a cold
/// `Engine::recover`.
fn measure_recovery(frames: usize) -> Recovery {
    let mut e = engine();
    e.config_mut().durability = DurabilityConfig {
        level: Durability::Buffered, // log shape is identical; skip fsyncs
        group_commit: 1,
        checkpoint_every: 0,
    };
    let dir = bench_dir(&format!("recover-{frames}"));
    e.make_durable(&dir).expect("make_durable");
    let template = TransactionBuilder::new()
        .insert_params("account", 2)
        .build();
    let prepared = e.prepare(&template).expect("prepare");
    for i in 0..frames as i64 {
        let bound = prepared
            .bind(&[Value::Int(i), Value::Int(100)])
            .expect("bind");
        assert!(e.execute_bound(&bound).expect("execute").committed());
    }
    drop(e);
    let t = Instant::now();
    let recovered = Engine::recover(&dir).expect("recover");
    let elapsed = t.elapsed();
    assert_eq!(recovered.report.frames_replayed, frames as u64);
    assert_eq!(
        recovered
            .engine
            .relation("account")
            .expect("relation")
            .len(),
        frames
    );
    let _ = std::fs::remove_dir_all(&dir);
    Recovery { frames, elapsed }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let iters = if smoke { 60 } else { 600 };

    let throughput = vec![
        measure_level(None, iters, "memory"),
        measure_level(Some(Durability::None), iters, "none"),
        measure_level(Some(Durability::Buffered), iters, "buffered"),
        measure_level(
            Some(Durability::Fsync),
            if smoke { 20 } else { 200 },
            "fsync",
        ),
    ];

    let frame_counts: &[usize] = if smoke { &[100] } else { &[100, 1_000, 10_000] };
    let recovery: Vec<Recovery> = frame_counts
        .iter()
        .map(|&frames| measure_recovery(frames))
        .collect();

    let memory_ns = throughput[0].median.as_nanos().max(1) as f64;
    let mut table = Table::new(
        "durability_overhead (prepared 1-row insert, median)",
        &["level", "median", "tx/s", "vs memory"],
    );
    for t in &throughput {
        table.row(&[
            t.level.to_owned(),
            fmt_duration(t.median),
            format!("{:.0}", tx_per_sec(t.median)),
            format!("{:.2}x", t.median.as_nanos() as f64 / memory_ns),
        ]);
    }
    println!("{}", table.render());

    let mut rtable = Table::new(
        "recovery time vs log length",
        &["frames", "total", "per frame"],
    );
    for r in &recovery {
        rtable.row(&[
            r.frames.to_string(),
            fmt_duration(r.elapsed),
            fmt_duration(r.elapsed / r.frames.max(1) as u32),
        ]);
    }
    println!("{}", rtable.render());

    let mut json_rows = String::new();
    for t in &throughput {
        let _ = writeln!(
            json_rows,
            "    {{\"section\": \"throughput\", \"level\": \"{}\", \"median_ns\": {}, \"tx_per_sec\": {:.1}}},",
            t.level,
            t.median.as_nanos(),
            tx_per_sec(t.median)
        );
    }
    for (i, r) in recovery.iter().enumerate() {
        let _ = writeln!(
            json_rows,
            "    {{\"section\": \"recovery\", \"frames\": {}, \"total_ns\": {}, \"ns_per_frame\": {:.1}}}{}",
            r.frames,
            r.elapsed.as_nanos(),
            r.elapsed.as_nanos() as f64 / r.frames.max(1) as f64,
            if i + 1 == recovery.len() { "" } else { "," }
        );
    }
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json").to_owned()
    });
    let json = format!(
        "{{\n  \"bench\": \"durability_overhead\",\n  \"smoke\": {smoke},\n  \"results\": [\n{json_rows}  ]\n}}\n"
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
