//! P1 — the §7 referential integrity measurement: checking the FK
//! constraint after inserting 5 000 tuples into a 50 000-tuple FK relation
//! against a 5 000-tuple key relation, on 8 nodes.
//!
//! Paper: "< 3 seconds" on the 8-node POOMA. We report both the full check
//! (scan everything) and the delta-only check the transaction modification
//! subsystem actually appends under differential optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use tm_bench::workload::{paper, Workload};

fn bench_refint(c: &mut Criterion) {
    let w = Workload::paper_scale(42);
    let db = w.into_parallel_db(paper::NODES);
    let mut group = c.benchmark_group("refint_check");
    group.sample_size(20);
    group.bench_function("full_8nodes", |b| {
        b.iter(|| {
            let r = db.check_referential("child", 1, "parent", 0);
            assert!(r.satisfied());
            r
        })
    });
    group.bench_function("delta_8nodes", |b| {
        b.iter(|| {
            let r = db.check_referential_delta(&w.inserts, 1, "parent", 0);
            assert!(r.satisfied());
            r
        })
    });
    let db1 = w.into_parallel_db(1);
    group.bench_function("full_1node", |b| {
        b.iter(|| db1.check_referential("child", 1, "parent", 0))
    });
    group.finish();
}

criterion_group!(benches, bench_refint);
criterion_main!(benches);
