//! `prepare_throughput` — ad-hoc `Engine::execute` vs prepared
//! bind+execute (`Session::execute_prepared`) for a hot single-row
//! transaction, across all four enforcement modes, with prepare-time
//! constraint specialization on and off.
//!
//! The workload models a wide production application: one hot relation
//! (`account`, 10k tuples) the measured transaction inserts into, a large
//! rule catalog spread over many cold relations (the realistic shape —
//! most rules guard relations the hot transaction never touches), and a
//! handful of hot rules written the way a declarative application writes
//! them: **full-scan abort constraints** (`forall x (x in account implies
//! x.balance + i >= 0)` plus one referential constraint against `owner`),
//! not hand-optimized delta checks.
//!
//! That makes the specializer the protagonist. With `spec=off` the
//! modified plan carries the constraints verbatim — every execution pays
//! a catalog's worth of scans over the 10k-row relation. With `spec=on`
//! the prepared template's checks are reduced at prepare time: the
//! domain constraints become single-row point checks over the `?i`
//! bindings and the referential constraint becomes one hash probe into
//! `owner`, so per-execution cost is O(Δ) — independent of both the
//! relation size and the catalog size (the trigger index dispatches the
//! 3040 cold rules in O(affected)).
//!
//! Per submission the **ad-hoc** path additionally pays building a fresh
//! transaction AST and `ModT` itself; the **prepared** path pays those
//! once (`Session::prepare`) and then an O(#params) bind plus the
//! compiled plan run.
//!
//! Cold rules are added with `allow_cycles: true`: alarm-only actions
//! cannot trigger anything, so the O(n²) definition-time graph validation
//! is pure setup cost here and skipping it keeps the catalog build fast.
//!
//! Results are printed as a table and written to
//! `BENCH_prepare_throughput.json` (override with `BENCH_OUT`). Set
//! `BENCH_SMOKE=1` for the CI configuration: small catalog, 1k tuples,
//! few iterations.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use tm_algebra::builder::TransactionBuilder;
use tm_bench::report::{fmt_duration, Table};
use tm_relational::{DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use txmod::{EnforcementMode, Engine, EngineConfig};

struct Shape {
    tuples: usize,
    cold_relations: usize,
    cold_rules_each: usize,
    hot_rules: usize,
    iters: usize,
}

struct Sample {
    mode: &'static str,
    spec: bool,
    path: &'static str,
    median: Duration,
}

fn time_median<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn schema(shape: &Shape) -> DatabaseSchema {
    let mut rels = vec![
        RelationSchema::of(
            "account",
            &[("id", ValueType::Int), ("balance", ValueType::Int)],
        ),
        // Single-attribute domain table: the referential probe keys every
        // `owner` column, so specialized execution is one set lookup.
        RelationSchema::of("owner", &[("id", ValueType::Int)]),
    ];
    for r in 0..shape.cold_relations {
        let name = format!("rel{r}");
        rels.push(RelationSchema::of(
            &name,
            &[("id", ValueType::Int), ("v", ValueType::Int)],
        ));
    }
    DatabaseSchema::from_relations(rels).expect("schema is valid")
}

fn build_engine(mode: EnforcementMode, specialize: bool, shape: &Shape) -> Engine {
    let mut e = Engine::with_config(
        schema(shape),
        EngineConfig {
            mode,
            specialize,
            allow_cycles: true,
            ..EngineConfig::default()
        },
    );
    for r in 0..shape.cold_relations {
        for i in 0..shape.cold_rules_each {
            e.add_rule_text(
                &format!(
                    "WHEN INS(rel{r}) IF NOT 1 = 1 THEN \
                     alarm(select[#1 < 0 and #0 >= {i}](rel{r}@ins))"
                ),
                &format!("cold_{r}_{i}"),
            )
            .expect("cold rule is valid");
        }
    }
    // Hot rules are declarative full-scan constraints, distinct per i so
    // none can be deduplicated away: domain constraints over `account`
    // plus one referential constraint into `owner`. Unspecialized, each
    // costs a scan of the hot relation per execution; specialized they
    // are per-inserted-row point checks / hash probes.
    for i in 0..shape.hot_rules.saturating_sub(1) {
        e.add_rule_text(
            &format!(
                "WHEN INS(account) IF NOT \
                 forall x (x in account implies x.balance + {i} >= 0) THEN abort"
            ),
            &format!("hot_dom_{i}"),
        )
        .expect("hot domain rule is valid");
    }
    e.add_rule_text(
        "WHEN INS(account) IF NOT forall x (x in account implies \
         exists y (y in owner and x.balance = y.id)) THEN abort",
        "hot_ref",
    )
    .expect("hot referential rule is valid");
    e.load(
        "account",
        (0..shape.tuples as i64).map(|i| Tuple::of((i, i % 997))),
    )
    .expect("load succeeds");
    // Every balance the seed or the workload produces has an owner row.
    e.load("owner", (0..1024_i64).map(|v| Tuple::of((v,))))
        .expect("load succeeds");
    e
}

fn tx_per_sec(median: Duration) -> f64 {
    if median.as_nanos() == 0 {
        f64::INFINITY
    } else {
        1e9 / median.as_nanos() as f64
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let shape = if smoke {
        Shape {
            tuples: 1_000,
            cold_relations: 8,
            cold_rules_each: 4,
            hot_rules: 8,
            iters: 50,
        }
    } else {
        Shape {
            tuples: 10_000,
            cold_relations: 95,
            cold_rules_each: 32,
            hot_rules: 8,
            iters: 2_000,
        }
    };
    let modes = [
        ("off", EnforcementMode::Off),
        ("dynamic", EnforcementMode::Dynamic),
        ("static", EnforcementMode::Static),
        ("differential", EnforcementMode::Differential),
    ];
    let rules_total = shape.cold_relations * shape.cold_rules_each + shape.hot_rules;
    println!(
        "prepare_throughput: {} tuples, {} rules ({} hot), {} iters{}",
        shape.tuples,
        rules_total,
        shape.hot_rules,
        shape.iters,
        if smoke { " [smoke]" } else { "" }
    );

    let mut samples: Vec<Sample> = Vec::new();
    for (label, mode) in modes {
        for spec in [true, false] {
            // Unspecialized enforcing plans pay full scans per execution;
            // fewer iterations keep the total run time bounded without
            // changing what the median measures.
            let iters = if spec || mode == EnforcementMode::Off {
                shape.iters
            } else {
                (shape.iters / 10).max(20)
            };

            // Ad hoc: a fresh transaction AST per submission (what an
            // ad-hoc client does), modified by `ModT` per submission.
            let mut engine = build_engine(mode, spec, &shape);
            let mut next = shape.tuples as i64;
            let adhoc = time_median(iters, || {
                next += 1;
                let tx = TransactionBuilder::new()
                    .insert_tuple("account", Tuple::of((next, 5)))
                    .build();
                let out = engine.execute(&tx).expect("execute succeeds");
                assert!(out.committed(), "{out}");
                out
            });
            samples.push(Sample {
                mode: label,
                spec,
                path: "adhoc",
                median: adhoc,
            });

            // Prepared: `ModT` (and specialization) once at prepare, then
            // bind+execute per submission against the retained plan.
            let mut engine = build_engine(mode, spec, &shape);
            let mut session = engine.session();
            let id = session
                .prepare(
                    &TransactionBuilder::new()
                        .insert_params("account", 2)
                        .build(),
                )
                .expect("prepare succeeds");
            let mut next = shape.tuples as i64;
            let prepared = time_median(iters, || {
                next += 1;
                let out = session
                    .execute_prepared(id, &[Value::Int(next), Value::Int(5)])
                    .expect("execute_prepared succeeds");
                assert!(out.committed() && out.reused_plan, "{out}");
                out
            });
            samples.push(Sample {
                mode: label,
                spec,
                path: "prepared",
                median: prepared,
            });
        }
    }

    let mut table = Table::new(
        "prepare_throughput (1-row insert, median end-to-end)",
        &[
            "mode",
            "spec",
            "adhoc",
            "prepared",
            "prepared tx/s",
            "speedup",
        ],
    );
    let mut json_rows = String::new();
    for pair in samples.chunks(2) {
        let (adhoc, prepared) = (&pair[0], &pair[1]);
        let speedup = adhoc.median.as_secs_f64() / prepared.median.as_secs_f64().max(1e-12);
        table.row(&[
            adhoc.mode.to_string(),
            if adhoc.spec { "on" } else { "off" }.to_string(),
            fmt_duration(adhoc.median),
            fmt_duration(prepared.median),
            format!("{:.0}", tx_per_sec(prepared.median)),
            format!("{speedup:.1}x"),
        ]);
        for s in pair {
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            let _ = write!(
                json_rows,
                "    {{\"mode\": \"{}\", \"spec\": {}, \"path\": \"{}\", \"size\": {}, \
                 \"rules\": {}, \"median_ns\": {}, \"tx_per_sec\": {:.1}, \"speedup\": {:.2}}}",
                s.mode,
                s.spec,
                s.path,
                shape.tuples,
                rules_total,
                s.median.as_nanos(),
                tx_per_sec(s.median),
                speedup
            );
        }
    }
    println!("{}", table.render());

    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_prepare_throughput.json"
        )
        .to_owned()
    });
    let json = format!(
        "{{\n  \"bench\": \"prepare_throughput\",\n  \"smoke\": {smoke},\n  \"results\": [\n{json_rows}\n  ]\n}}\n"
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
