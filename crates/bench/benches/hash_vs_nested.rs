//! `hash_vs_nested` — hash-based vs nested-loop execution of the
//! referential integrity check, in both engines:
//!
//! * **algebra**: `child ▷_{child.fk = parent.key} parent` evaluated with
//!   [`tm_algebra::JoinStrategy::Hash`] vs `NestedLoop`,
//! * **calculus**: `forall x (x in child implies exists y (y in parent and
//!   x.fk = y.key))` evaluated with the indexed quantifier fast path vs
//!   the naive nested recursion.
//!
//! Sizes are 1k / 10k / 100k tuples per relation. The nested-loop side is
//! O(n²) and is **skipped above 10k** (at 100k it would run for tens of
//! minutes); the skip is reported, not silent. Results are printed as a
//! table and written to `BENCH_hash_vs_nested.json` (override the path
//! with `BENCH_OUT`). Set `BENCH_SMOKE=1` to run only the 1k size with few
//! iterations — the CI smoke configuration.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use tm_algebra::{evaluate_with, JoinStrategy, RelExpr, ScalarExpr};
use tm_bench::report::{fmt_duration, Table};
use tm_bench::workload::{child_schema, parent_schema, Workload};
use tm_calculus::{analyze, eval_constraint, eval_constraint_naive, StateSource};
use tm_relational::{Database, DatabaseSchema};

/// Nested-loop variants are skipped above this size (O(n²) wall-clock).
const NESTED_CAP: usize = 10_000;

struct Sample {
    op: &'static str,
    size: usize,
    strategy: &'static str,
    median: Option<Duration>,
}

fn time_median<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn seq_db(w: &Workload) -> Database {
    let schema = DatabaseSchema::from_relations(vec![child_schema(), parent_schema()])
        .expect("workload schemas are valid");
    let mut db = Database::new(schema.into_shared());
    for t in &w.parents {
        db.insert("parent", t.clone()).unwrap();
    }
    for t in &w.children {
        db.insert("child", t.clone()).unwrap();
    }
    db
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut samples: Vec<Sample> = Vec::new();

    for &n in sizes {
        let iters = if n <= 1_000 { 20 } else { 3 };
        let w = Workload::generate(n, n, 0, 0, 42);
        let db = seq_db(&w);

        // Algebra: the referential check as an anti-join. child(id, fk,
        // amount) ++ parent(key, payload) — the FK equality is `#1 = #3`.
        let check = RelExpr::relation("child")
            .anti_join(RelExpr::relation("parent"), ScalarExpr::col_eq(1, 3));
        let hash = evaluate_with(&check, &db, JoinStrategy::Hash).unwrap();
        assert!(hash.is_empty(), "workload has no orphans");
        samples.push(Sample {
            op: "algebra_antijoin",
            size: n,
            strategy: "hash",
            median: Some(time_median(iters, || {
                evaluate_with(&check, &db, JoinStrategy::Hash).unwrap()
            })),
        });
        let nested_median = if n <= NESTED_CAP {
            let nested = evaluate_with(&check, &db, JoinStrategy::NestedLoop).unwrap();
            assert_eq!(
                hash.sorted_tuples(),
                nested.sorted_tuples(),
                "strategies must agree"
            );
            Some(time_median(iters.min(3), || {
                evaluate_with(&check, &db, JoinStrategy::NestedLoop).unwrap()
            }))
        } else {
            println!("note: nested-loop algebra check skipped at n={n} (O(n²))");
            None
        };
        samples.push(Sample {
            op: "algebra_antijoin",
            size: n,
            strategy: "nested",
            median: nested_median,
        });

        // Calculus: the same constraint through the quantifier evaluator.
        let formula = "forall x (x in child implies exists y (y in parent and x.fk = y.key))";
        let info = analyze(&tm_calculus::parse_formula(formula).unwrap(), db.schema()).unwrap();
        assert_eq!(eval_constraint(&info, &StateSource(&db)), Ok(true));
        samples.push(Sample {
            op: "calculus_forall_exists",
            size: n,
            strategy: "indexed",
            median: Some(time_median(iters, || {
                eval_constraint(&info, &StateSource(&db)).unwrap()
            })),
        });
        let naive_median = if n <= NESTED_CAP {
            assert_eq!(eval_constraint_naive(&info, &StateSource(&db)), Ok(true));
            Some(time_median(iters.min(3), || {
                eval_constraint_naive(&info, &StateSource(&db)).unwrap()
            }))
        } else {
            println!("note: naive calculus evaluation skipped at n={n} (O(n²))");
            None
        };
        samples.push(Sample {
            op: "calculus_forall_exists",
            size: n,
            strategy: "naive",
            median: naive_median,
        });
    }

    // Report: per (op, size), the two strategies and the speedup.
    let mut table = Table::new(
        "hash_vs_nested (median per run)",
        &["op", "size", "fast", "slow", "speedup"],
    );
    let mut json_rows = String::new();
    for pair in samples.chunks(2) {
        let (fast, slow) = (&pair[0], &pair[1]);
        let speedup = match (fast.median, slow.median) {
            (Some(f), Some(s)) if f.as_nanos() > 0 => {
                format!("{:.1}x", s.as_secs_f64() / f.as_secs_f64())
            }
            _ => "n/a (slow side skipped)".to_owned(),
        };
        table.row(&[
            fast.op.to_owned(),
            fast.size.to_string(),
            fast.median.map(fmt_duration).unwrap_or_default(),
            slow.median
                .map(fmt_duration)
                .unwrap_or_else(|| "skipped".to_owned()),
            speedup,
        ]);
        for s in pair {
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            let median = match s.median {
                Some(d) => d.as_nanos().to_string(),
                None => "null".to_owned(),
            };
            let _ = write!(
                json_rows,
                "    {{\"op\": \"{}\", \"size\": {}, \"strategy\": \"{}\", \"median_ns\": {}}}",
                s.op, s.size, s.strategy, median
            );
        }
    }
    println!("{}", table.render());

    // Default to the workspace root (cargo runs benches from the package
    // directory) so the numbers land next to the other BENCH_*.json files.
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_hash_vs_nested.json"
        )
        .to_owned()
    });
    let json = format!(
        "{{\n  \"bench\": \"hash_vs_nested\",\n  \"smoke\": {smoke},\n  \"nested_cap\": {NESTED_CAP},\n  \"results\": [\n{json_rows}\n  ]\n}}\n"
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
