//! `service_throughput` — the scenario corpus served over loopback.
//!
//! Starts the `tm-server` front-end in-process on an ephemeral port with
//! one tenant per scenario (all Static mode), then drives each scenario
//! with several concurrent client connections streaming `ExecuteMany`
//! batches of prepared bindings. The schema-churn scenario interleaves
//! `DefineConstraint`/`RemoveRule` catalog steps with traffic, so live
//! prepared statements go stale and the plan-epoch re-modification path
//! is exercised under load.
//!
//! A separate **overload** run serves the bank scenario twice — once
//! uncontended (default admission) and once behind a deliberately tight
//! in-flight cap with twice the connections. Overload must show up as
//! typed `Busy` rejections (clients retry), never as timeouts or a
//! stalled accept loop, and the engine-side throughput of admitted work
//! must stay close to the uncontended run.
//!
//! Per-transaction latency quantiles come from the server's own metrics
//! sink (the `Stats` request), not client-side clocks — they measure the
//! engine execution, excluding wire time.
//!
//! Results are printed as a table and written to
//! `BENCH_service_throughput.json` (override with `BENCH_OUT`). Set
//! `BENCH_SMOKE=1` for the CI configuration: short streams, small
//! batches.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tm_bench::report::Table;
use tm_bench::scenarios::{self, ChurnStep, Scenario};
use tm_relational::Value;
use tm_server::{
    serve, Client, PreparedStmt, ProtocolError, ServerConfig, TenantRegistry, TenantSpec,
};
use txmod::EnforcementMode;

struct Shape {
    connections: usize,
    per_connection: usize,
    batch: usize,
    overload_connections: usize,
}

struct ScenarioResult {
    name: &'static str,
    transactions: u64,
    committed: u64,
    aborted: u64,
    elapsed_secs: f64,
    tx_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    plan_remodified: u64,
}

/// Pull one `key value` line out of the plaintext metrics dump.
fn stat_u64(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|line| {
            let (k, v) = line.split_once(' ')?;
            if k == key {
                v.parse().ok()
            } else {
                None
            }
        })
        .unwrap_or(0)
}

/// Group a binding stream by template and chunk into batches, preserving
/// stream order within each template.
fn batches(
    scenario: &Scenario,
    seed: u64,
    n: usize,
    batch: usize,
) -> Vec<(usize, Vec<Vec<Value>>)> {
    let mut per_template: Vec<Vec<Vec<Value>>> = vec![Vec::new(); scenario.templates.len()];
    for (idx, params) in scenario.bindings(seed, n) {
        per_template[idx].push(params);
    }
    let mut out = Vec::new();
    for (idx, bindings) in per_template.into_iter().enumerate() {
        let mut it = bindings.into_iter().peekable();
        while it.peek().is_some() {
            out.push((idx, it.by_ref().take(batch).collect()));
        }
    }
    out
}

/// Drive one scenario tenant with `connections` concurrent clients.
/// Connection 0 interleaves the scenario's churn steps (if any) with its
/// batches. Returns committed/aborted totals and server-side latency
/// quantiles.
fn run_scenario(addr: std::net::SocketAddr, scenario: &Scenario, shape: &Shape) -> ScenarioResult {
    // Prepare the templates once; statement ids are tenant-scoped, so
    // every connection shares them.
    let mut setup = Client::connect(addr, scenario.name).expect("connect");
    let stmts: Vec<PreparedStmt> = scenario
        .templates
        .iter()
        .map(|t| setup.prepare(t).expect("prepare"))
        .collect();

    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for conn in 0..shape.connections {
            let stmts = &stmts;
            let committed = &committed;
            let aborted = &aborted;
            s.spawn(move || {
                let mut c = Client::connect(addr, scenario.name).expect("connect");
                let work = batches(scenario, conn as u64 + 1, shape.per_connection, shape.batch);
                let mut churn = scenario.churn.iter().cycle();
                for (i, (idx, bindings)) in work.into_iter().enumerate() {
                    // Connection 0 churns the catalog every few batches;
                    // everyone's prepared plans go stale and re-modify.
                    if conn == 0 && !scenario.churn.is_empty() && i.is_multiple_of(8) {
                        match churn.next().expect("cycle is infinite") {
                            ChurnStep::Define { name, cl } => {
                                c.define_constraint(name, cl).expect("churn define");
                            }
                            ChurnStep::Remove { name } => {
                                c.remove_rule(name).expect("churn remove");
                            }
                        }
                    }
                    let (ok, bad) = c.execute_many(stmts[idx], bindings).expect("batch");
                    committed.fetch_add(ok, Ordering::Relaxed);
                    aborted.fetch_add(bad, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let stats = setup.stats().expect("stats");
    let key = |f: &str| format!("tenant.{}.{f}", scenario.name);
    let committed = committed.into_inner();
    let aborted = aborted.into_inner();
    let transactions = committed + aborted;
    assert_eq!(
        transactions,
        (shape.connections * shape.per_connection) as u64,
        "{}: every binding must be answered",
        scenario.name
    );
    let commit_ratio = committed as f64 / transactions.max(1) as f64;
    assert!(
        (commit_ratio - scenario.expect_commit_ratio).abs() < 0.1,
        "{}: commit ratio {commit_ratio} (expected ~{})",
        scenario.name,
        scenario.expect_commit_ratio
    );
    ScenarioResult {
        name: scenario.name,
        transactions,
        committed,
        aborted,
        elapsed_secs: elapsed.as_secs_f64(),
        tx_per_sec: transactions as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: stat_u64(&stats, &key("latency_p50_us")),
        p99_us: stat_u64(&stats, &key("latency_p99_us")),
        plan_remodified: stat_u64(&stats, &key("plan_remodified")),
    }
}

/// Drive one tenant with retry-on-`Busy` workers; returns
/// `(tx_per_sec, busy_rejections)`.
fn run_overload(
    addr: std::net::SocketAddr,
    tenant: &str,
    connections: usize,
    shape: &Shape,
) -> (f64, u64) {
    let scenario = scenarios::bank();
    let mut setup = Client::connect(addr, tenant).expect("connect");
    let stmt = setup.prepare(scenario.templates[0]).expect("prepare");
    let done = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for conn in 0..connections {
            let scenario = &scenario;
            let done = &done;
            let busy = &busy;
            s.spawn(move || {
                let mut c = Client::connect(addr, tenant).expect("connect");
                // Scale per-connection work so total transactions match
                // the uncontended run regardless of connection count.
                let n = shape.per_connection * shape.connections / connections;
                for (_, bindings) in batches(scenario, conn as u64 + 1, n, shape.batch) {
                    loop {
                        match c.execute_many(stmt, bindings.clone()) {
                            Ok((ok, bad)) => {
                                done.fetch_add(ok + bad, Ordering::Relaxed);
                                break;
                            }
                            Err(ProtocolError::Busy { .. }) => {
                                busy.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("overload worker: {e}"),
                        }
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    (done.into_inner() as f64 / elapsed, busy.into_inner())
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let shape = if smoke {
        Shape {
            connections: 4,
            per_connection: 2_000,
            batch: 64,
            overload_connections: 8,
        }
    } else {
        Shape {
            connections: 4,
            per_connection: 50_000,
            batch: 256,
            overload_connections: 8,
        }
    };
    println!(
        "service_throughput: {} connections x {} tx, batch {}{}",
        shape.connections,
        shape.per_connection,
        shape.batch,
        if smoke { " [smoke]" } else { "" }
    );

    // One server, one tenant per scenario, all Static mode. The bank
    // scenarios carry the compensating audit rule, so every committed
    // deposit also exercises a triggered action.
    let corpus = scenarios::all();
    let registry = Arc::new(TenantRegistry::new());
    for scenario in &corpus {
        let mut engine = scenario.engine(EnforcementMode::Static);
        if scenario.name == "bank" || scenario.name == "violation_storm" {
            engine
                .add_rule_text(scenarios::BANK_AUDIT_RULE, "bank_audit")
                .expect("audit rule");
        }
        registry.add(scenario.name, engine, TenantSpec::default());
    }
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).expect("serve");
    let addr = handle.addr();

    let mut results = Vec::new();
    for scenario in &corpus {
        let r = run_scenario(addr, scenario, &shape);
        println!(
            "  {:>16}: {:>9.0} tx/s  (p50 {} us, p99 {} us)",
            r.name, r.tx_per_sec, r.p50_us, r.p99_us
        );
        results.push(r);
    }
    assert!(
        results
            .iter()
            .find(|r| r.name == "schema_churn")
            .expect("corpus has schema_churn")
            .plan_remodified
            > 0,
        "catalog churn must force plan re-modification"
    );
    let total_tx: u64 = results.iter().map(|r| r.transactions).sum();
    let total_secs: f64 = results.iter().map(|r| r.elapsed_secs).sum();
    let aggregate = total_tx as f64 / total_secs.max(1e-9);
    handle.shutdown();

    // Overload: same catalog, one tenant wide open, one behind a tight
    // in-flight cap with twice the connections hammering it.
    let registry = Arc::new(TenantRegistry::new());
    let bank = scenarios::bank();
    registry.add(
        "uncontended",
        bank.engine(EnforcementMode::Static),
        TenantSpec::default(),
    );
    registry.add(
        "capped",
        bank.engine(EnforcementMode::Static),
        TenantSpec {
            max_inflight: 2,
            rate_per_sec: 0.0,
            burst: 0.0,
        },
    );
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).expect("serve");
    let addr = handle.addr();
    let (uncontended_tps, base_busy) = run_overload(addr, "uncontended", shape.connections, &shape);
    assert_eq!(base_busy, 0, "uncontended run must not be rejected");
    let (overload_tps, busy_rejections) =
        run_overload(addr, "capped", shape.overload_connections, &shape);
    assert!(
        busy_rejections > 0,
        "the capped tenant must reject with typed Busy"
    );
    let ratio = overload_tps / uncontended_tps.max(1e-9);
    handle.shutdown();

    let mut table = Table::new(
        "service_throughput (loopback, Static mode)",
        &["scenario", "tx", "committed", "tx/s", "p50 us", "p99 us"],
    );
    for r in &results {
        table.row(&[
            r.name.to_string(),
            r.transactions.to_string(),
            r.committed.to_string(),
            format!("{:.0}", r.tx_per_sec),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "aggregate: {aggregate:.0} tx/s; overload: {busy_rejections} busy rejections, \
         {overload_tps:.0} vs {uncontended_tps:.0} tx/s uncontended (ratio {ratio:.2})"
    );

    let mut json_rows = String::new();
    for r in &results {
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let _ = write!(
            json_rows,
            "    {{\"name\": \"{}\", \"transactions\": {}, \"committed\": {}, \
             \"aborted\": {}, \"tx_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"plan_remodified\": {}}}",
            r.name,
            r.transactions,
            r.committed,
            r.aborted,
            r.tx_per_sec,
            r.p50_us,
            r.p99_us,
            r.plan_remodified
        );
    }
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_service_throughput.json"
        )
        .to_owned()
    });
    // The validator's throughput and overload gates are scaled to the
    // machine: the concurrent server's loopback numbers depend on how
    // many cores served the connections.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"service_throughput\",\n  \"smoke\": {smoke},\n  \
         \"mode\": \"Static\",\n  \"cores\": {cores},\n  \"connections\": {},\n  \"batch\": {},\n  \
         \"scenarios\": [\n{json_rows}\n  ],\n  \"aggregate_tx_per_sec\": {aggregate:.1},\n  \
         \"overload\": {{\"connections\": {}, \"max_inflight\": 2, \
         \"busy_rejections\": {busy_rejections}, \
         \"uncontended_tx_per_sec\": {uncontended_tps:.1}, \
         \"overload_tx_per_sec\": {overload_tps:.1}, \"ratio\": {ratio:.3}}}\n}}\n",
        shape.connections, shape.batch, shape.overload_connections,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
