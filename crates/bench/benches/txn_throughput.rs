//! `txn_throughput` — single-row transaction latency as a function of
//! database size, proving transaction begin/commit is O(Δ), not O(|DB|).
//!
//! Two modes per size:
//!
//! * **cow** — the real executor: begin copies nothing (the state is
//!   mutated in place, the differentials double as the undo log, `R@pre`
//!   would be reconstructed lazily if referenced), commit is a logical
//!   tick. Latency should be essentially *flat* in database size.
//! * **clone_snapshot** — the retained baseline reproducing what the
//!   executor did before the copy-on-write storage layout and the logical
//!   snapshot: every transaction begin paid two *full* per-relation
//!   tuple-set copies ([`Database::unshared_copy`] twice) before the
//!   first statement ran. Latency grows linearly with database size.
//!
//! Sizes are 1k / 10k / 100k / 1M tuples. Results are printed as a table
//! (with the per-size speedup and the cow-mode flatness ratio) and written
//! to `BENCH_txn_throughput.json` (override with `BENCH_OUT`). Set
//! `BENCH_SMOKE=1` for the CI configuration: 1k only, few iterations.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::Executor;
use tm_bench::report::{fmt_duration, Table};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, ValueType};

struct Sample {
    size: usize,
    mode: &'static str,
    median: Duration,
}

fn time_median<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// `account(id, balance)` plus an `audit` relation the transactions never
/// touch — under COW it stays shared across every commit; under the
/// baseline it is copied twice per transaction like everything else.
fn build_db(n: usize) -> Database {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "account",
            &[("id", ValueType::Int), ("balance", ValueType::Int)],
        ),
        RelationSchema::of("audit", &[("id", ValueType::Int)]),
    ])
    .expect("schema is valid");
    let mut db = Database::new(schema.into_shared());
    for i in 0..n as i64 {
        db.insert("account", Tuple::of((i, i % 1_000)))
            .expect("tuple valid");
    }
    for i in 0..(n / 10).max(1) as i64 {
        db.insert("audit", Tuple::of((i,))).expect("tuple valid");
    }
    db
}

fn single_row_tx(id: i64) -> tm_algebra::Transaction {
    TransactionBuilder::new()
        .insert_tuple("account", Tuple::of((id, 0)))
        .build()
}

fn tx_per_sec(median: Duration) -> f64 {
    if median.as_nanos() == 0 {
        f64::INFINITY
    } else {
        1e9 / median.as_nanos() as f64
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let mut samples: Vec<Sample> = Vec::new();

    for &n in sizes {
        let db = build_db(n);
        let cow_iters = if smoke { 50 } else { 200 };
        let base_iters = if smoke {
            10
        } else {
            match n {
                0..=1_000 => 50,
                1_001..=10_000 => 20,
                10_001..=100_000 => 10,
                _ => 3,
            }
        };

        // cow: the real executor against a live, COW-shared state. Fresh
        // ids keep every insert a genuine one-row delta; the database
        // grows by `cow_iters` rows over the measurement — noise at every
        // size measured here.
        let mut live = db.clone();
        let mut next_id = n as i64;
        let cow = time_median(cow_iters, || {
            next_id += 1;
            let out = Executor.execute(&mut live, &single_row_tx(next_id));
            assert!(out.is_committed(), "{out:?}");
            out
        });
        samples.push(Sample {
            size: n,
            mode: "cow",
            median: cow,
        });

        // clone_snapshot: two full per-relation tuple-set copies before
        // execution — the seed executor's begin cost, retained verbatim.
        let tx = single_row_tx(n as i64 + 1);
        let base = time_median(base_iters, || {
            let mut working = db.unshared_copy();
            let snapshot = db.unshared_copy();
            black_box(&snapshot);
            let out = Executor.execute(&mut working, &tx);
            assert!(out.is_committed(), "{out:?}");
            (working, snapshot)
        });
        samples.push(Sample {
            size: n,
            mode: "clone_snapshot",
            median: base,
        });
    }

    let mut table = Table::new(
        "txn_throughput (1-row tx, median begin+execute+commit)",
        &["size", "cow", "cow tx/s", "clone_snapshot", "speedup"],
    );
    let mut json_rows = String::new();
    for pair in samples.chunks(2) {
        let (cow, base) = (&pair[0], &pair[1]);
        let speedup = base.median.as_secs_f64() / cow.median.as_secs_f64().max(1e-12);
        table.row(&[
            cow.size.to_string(),
            fmt_duration(cow.median),
            format!("{:.0}", tx_per_sec(cow.median)),
            fmt_duration(base.median),
            format!("{speedup:.1}x"),
        ]);
        for s in pair {
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            let _ = write!(
                json_rows,
                "    {{\"size\": {}, \"mode\": \"{}\", \"median_ns\": {}, \"tx_per_sec\": {:.1}}}",
                s.size,
                s.mode,
                s.median.as_nanos(),
                tx_per_sec(s.median)
            );
        }
    }
    println!("{}", table.render());

    // Flatness: cow latency at the largest size over the smallest. A flat
    // O(Δ) transaction cost keeps this near 1; the pre-COW executor grew
    // linearly (1000x across 1k → 1M).
    let cows: Vec<&Sample> = samples.iter().filter(|s| s.mode == "cow").collect();
    if let (Some(first), Some(last)) = (cows.first(), cows.last()) {
        if first.size != last.size {
            println!(
                "flatness: cow median grew {:.2}x from {} to {} tuples (db grew {}x)",
                last.median.as_secs_f64() / first.median.as_secs_f64().max(1e-12),
                first.size,
                last.size,
                last.size / first.size.max(1)
            );
        }
    }

    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_txn_throughput.json"
        )
        .to_owned()
    });
    let json = format!(
        "{{\n  \"bench\": \"txn_throughput\",\n  \"smoke\": {smoke},\n  \"results\": [\n{json_rows}\n  ]\n}}\n"
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
