//! P3 — parallel scaling of the §7 checks over 1/2/4/8 nodes
//! (the shape of refs [7, 9]: transaction-modification checks decompose
//! over fragments, giving near-linear speedup for decomposable checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_algebra::{CmpOp, ScalarExpr};
use tm_bench::workload::{paper, Workload};

fn bench_scaling(c: &mut Criterion) {
    // 8× paper scale so per-node work dominates thread startup.
    let w = Workload::generate(
        8 * paper::KEY_TUPLES,
        8 * paper::FK_TUPLES,
        paper::INSERT_TUPLES,
        0,
        42,
    );
    let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(2), ScalarExpr::int(0));
    let total_children = (8 * paper::FK_TUPLES + paper::INSERT_TUPLES) as u64;
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_children));
    for nodes in [1usize, 2, 4, 8] {
        let db = w.into_parallel_db(nodes);
        group.bench_with_input(BenchmarkId::new("referential", nodes), &db, |b, db| {
            b.iter(|| db.check_referential("child", 1, "parent", 0))
        });
        group.bench_with_input(BenchmarkId::new("domain", nodes), &db, |b, db| {
            b.iter(|| db.check_domain("child", &pred))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
