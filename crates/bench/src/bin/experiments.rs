//! `experiments` — regenerate the paper's quantitative artifacts.
//!
//! ```text
//! cargo run --release -p tm-bench --bin experiments -- all
//! cargo run --release -p tm-bench --bin experiments -- table1
//! cargo run --release -p tm-bench --bin experiments -- example51
//! cargo run --release -p tm-bench --bin experiments -- perf
//! cargo run --release -p tm-bench --bin experiments -- scaling
//! cargo run --release -p tm-bench --bin experiments -- ablation
//! ```

use std::time::{Duration, Instant};

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{CmpOp, ScalarExpr};
use tm_bench::report::{fmt_duration, Table};
use tm_bench::workload::{child_schema, paper, parent_schema, Workload};
use tm_relational::{DatabaseSchema, Tuple};
use tm_translate::table1_rows;
use txmod::{EnforcementMode, Engine, EngineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    match which {
        "table1" => table1(),
        "example51" => example51(),
        "perf" => perf(),
        "scaling" => scaling(),
        "ablation" => {
            ablation_static();
            ablation_differential();
        }
        "all" => {
            table1();
            example51();
            perf();
            scaling();
            ablation_static();
            ablation_differential();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("expected: table1 | example51 | perf | scaling | ablation | all");
            std::process::exit(2);
        }
    }
}

/// Median-of-N wall-clock timing.
fn time_median<T>(n: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// T1 — Table 1: translation of typical constraint constructs.
fn table1() {
    let rows = table1_rows().expect("table 1 translates");
    let mut t = Table::new(
        "T1 / Table 1 — translation of typical constraint constructs",
        &[
            "#",
            "construct (CL)",
            "paper translation",
            "this reproduction",
        ],
    );
    for row in &rows {
        t.row(&[
            row.id.to_string(),
            row.construct.to_string(),
            row.paper_translation.to_string(),
            row.program.to_string().trim().to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// E5.1 — Example 5.1: the worked transaction modification.
fn example51() {
    let mut engine = Engine::new(tm_relational::schema::beer_schema());
    engine
        .add_rule_text(
            "RULE r1 WHEN INS(beer) \
             IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
            "r1",
        )
        .expect("r1 valid");
    engine
        .add_rule_text(
            "RULE r2 WHEN INS(beer), DEL(brewery) \
             IF NOT forall x (x in beer implies \
                      exists y (y in brewery and x.brewery = y.name)) \
             THEN temp := minus(project[#2](beer), project[#0](brewery)); \
                  insert(brewery, project[#0, null, null](temp))",
            "r2",
        )
        .expect("r2 valid");
    let user_tx = TransactionBuilder::new()
        .insert_tuple(
            "beer",
            Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
        )
        .build();
    let (modified, trace) = engine.modify_only(&user_tx).expect("modification succeeds");
    println!("== E5.1 / Example 5.1 — transaction modification ==");
    println!("user transaction:\n{user_tx}");
    println!("modified transaction (ModT):\n{modified}");
    println!(
        "rounds: {}, rules fired: {:?}, statements appended: {}\n",
        trace.rounds, trace.rules_fired, trace.statements_appended
    );
}

/// P1/P2 — the §7 performance evaluation.
fn perf() {
    let w = Workload::paper_scale(42);
    let db = w.into_parallel_db(paper::NODES);
    let domain_pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(2), ScalarExpr::int(0));

    let t_ref_full = time_median(5, || db.check_referential("child", 1, "parent", 0));
    let t_ref_delta = time_median(5, || db.check_referential_delta(&w.inserts, 1, "parent", 0));
    let t_dom_full = time_median(5, || db.check_domain("child", &domain_pred));
    let t_dom_delta = time_median(5, || {
        db.check_domain_delta("child", &w.inserts, &domain_pred)
    });

    let mut t = Table::new(
        format!(
            "P1/P2 / §7 — key={}, fk={}, insert={}, nodes={}",
            paper::KEY_TUPLES,
            paper::FK_TUPLES,
            paper::INSERT_TUPLES,
            paper::NODES
        ),
        &[
            "check",
            "paper (1992 POOMA)",
            "measured (full)",
            "measured (delta-only)",
        ],
    );
    t.row(&[
        "referential integrity".into(),
        format!("< {} s", paper::PAPER_REFERENTIAL_SECONDS),
        fmt_duration(t_ref_full),
        fmt_duration(t_ref_delta),
    ]);
    t.row(&[
        "domain constraint".into(),
        format!("< {} s", paper::PAPER_DOMAIN_SECONDS),
        fmt_duration(t_dom_full),
        fmt_duration(t_dom_delta),
    ]);
    println!("{}", t.render());
    let ratio = t_ref_full.as_secs_f64() / t_dom_full.as_secs_f64().max(1e-9);
    println!(
        "shape check: referential/domain cost ratio = {ratio:.2}x \
         (paper implies ≈3x: <3 s vs <1 s)\n"
    );
}

/// P3 — parallel scaling over 1/2/4/8 nodes. Runs at 8× the paper's scale
/// so per-node work dominates thread startup on modern hardware.
fn scaling() {
    let w = Workload::generate(
        8 * paper::KEY_TUPLES,
        8 * paper::FK_TUPLES,
        paper::INSERT_TUPLES,
        0,
        42,
    );
    let domain_pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(2), ScalarExpr::int(0));
    let mut t = Table::new(
        "P3 — parallel scaling of the §7 checks (8x paper scale)",
        &[
            "nodes",
            "referential (full)",
            "domain (full)",
            "referential speedup",
            "domain speedup",
        ],
    );
    let mut base: Option<(Duration, Duration)> = None;
    for nodes in [1usize, 2, 4, 8] {
        let db = w.into_parallel_db(nodes);
        let t_ref = time_median(9, || db.check_referential("child", 1, "parent", 0));
        let t_dom = time_median(9, || db.check_domain("child", &domain_pred));
        let (b_ref, b_dom) = *base.get_or_insert((t_ref, t_dom));
        t.row(&[
            nodes.to_string(),
            fmt_duration(t_ref),
            fmt_duration(t_dom),
            format!(
                "{:.2}x",
                b_ref.as_secs_f64() / t_ref.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.2}x",
                b_dom.as_secs_f64() / t_dom.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    println!("{}", t.render());
}

fn beer_rules_engine(mode: EnforcementMode) -> Engine {
    let mut e = Engine::with_config(
        tm_relational::schema::beer_schema(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    let rules: [(&str, &str); 6] = [
        (
            "alcohol_nonneg",
            "forall x (x in beer implies x.alcohol >= 0)",
        ),
        (
            "alcohol_cap",
            "forall x (x in beer implies x.alcohol <= 80.0)",
        ),
        (
            "brewery_fk",
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        ),
        ("beer_count", "CNT(beer) <= 1000000"),
        (
            "brewery_city",
            "forall x (x in brewery implies x.city != '')",
        ),
        (
            "unique_name",
            "forall x (x in beer implies forall y (y in beer implies \
             (x == y or x.name != y.name)))",
        ),
    ];
    for (name, cl) in rules {
        e.define_constraint(name, cl).expect("constraint valid");
    }
    e.load("brewery", vec![Tuple::of(("guineken", "dublin", "ie"))])
        .unwrap();
    e
}

/// A1 — static precompilation vs. enforcement-time translation (§6.2).
fn ablation_static() {
    let txns: Vec<_> = (0..1_000)
        .map(|i| {
            TransactionBuilder::new()
                .insert_tuple(
                    "beer",
                    Tuple::of((format!("beer{i}"), "lager", "guineken", 5.0_f64)),
                )
                .build()
        })
        .collect();
    let mut t = Table::new(
        "A1 / §6.2 — rule translation cost: dynamic vs static (1000 transactions, 6 rules)",
        &["mode", "ModT total", "per transaction"],
    );
    for (label, mode) in [
        ("dynamic (translate per txn)", EnforcementMode::Dynamic),
        ("static (precompiled)", EnforcementMode::Static),
    ] {
        let engine = beer_rules_engine(mode);
        let total = time_median(3, || {
            for tx in &txns {
                std::hint::black_box(engine.modify_only(tx).expect("modification succeeds"));
            }
        });
        t.row(&[
            label.into(),
            fmt_duration(total),
            fmt_duration(total / txns.len() as u32),
        ]);
    }
    println!("{}", t.render());
}

/// A2 — differential vs. full checks as the database grows (§5.2.1).
fn ablation_differential() {
    let mut t = Table::new(
        "A2 / §5.2.1 — differential vs full checks (insert batch = 100 children)",
        &[
            "children in DB",
            "full check execute",
            "differential execute",
            "speedup",
        ],
    );
    for &size in &[1_000usize, 10_000, 100_000] {
        let mut times = Vec::new();
        for mode in [EnforcementMode::Static, EnforcementMode::Differential] {
            let schema = DatabaseSchema::from_relations(vec![parent_schema(), child_schema()])
                .expect("schema valid");
            let mut engine = Engine::with_config(
                schema,
                EngineConfig {
                    mode,
                    ..EngineConfig::default()
                },
            );
            engine
                .define_constraint(
                    "fk",
                    "forall x (x in child implies exists y (y in parent and x.fk = y.key))",
                )
                .unwrap();
            engine
                .define_constraint("amount", "forall x (x in child implies x.amount >= 0)")
                .unwrap();
            let w = Workload::generate(1_000, size, 100, 0, 7);
            engine.load("parent", w.parents.iter().cloned()).unwrap();
            engine.load("child", w.children.iter().cloned()).unwrap();
            let tx = TransactionBuilder::new()
                .insert_tuples("child", w.inserts.clone())
                .build();
            // Clone the engine *outside* the timed section: only the
            // modified transaction's execution is the experiment subject.
            let mut samples: Vec<Duration> = (0..3)
                .map(|_| {
                    let mut e = engine.clone();
                    let t0 = Instant::now();
                    let out = e.execute(&tx).expect("execution succeeds");
                    let d = t0.elapsed();
                    assert!(out.committed());
                    d
                })
                .collect();
            samples.sort();
            times.push(samples[samples.len() / 2]);
        }
        t.row(&[
            size.to_string(),
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            format!(
                "{:.2}x",
                times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9)
            ),
        ]);
    }
    println!("{}", t.render());
}
