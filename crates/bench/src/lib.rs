#![warn(missing_docs)]

//! # `tm-bench` — benchmark harness for the reproduction
//!
//! Workload generators and reporting helpers shared by the criterion
//! benches (`benches/`) and the `experiments` binary, which regenerates the
//! paper's quantitative artifacts:
//!
//! * **Table 1** — translation of typical constraint constructs,
//! * **Example 5.1** — the worked transaction modification,
//! * **§7 performance evaluation** — the 5 000-key / 50 000-FK / 5 000-insert
//!   workload on an 8-node machine (referential < 3 s, domain < 1 s on the
//!   1992 POOMA; our substrate is threads on one host, so the *shape* — who
//!   is cheaper, how it scales — is the reproduction target),
//! * the ablations the design sections call for: static vs. dynamic rule
//!   translation (§6.2) and differential vs. full checks (§5.2.1).

pub mod report;
pub mod scenarios;
pub mod workload;

pub use report::Table;
pub use scenarios::{ChurnStep, Scenario};
pub use workload::{paper, Workload};
