//! Workload generation for the §7 experiments.
//!
//! The paper's test database: "a key relation of 5000 tuples and a foreign
//! key relation of 50000 tuples"; the measured operation: "checking a
//! referential integrity constraint after the insertion of 5000 new tuples
//! into the foreign key relation", plus "checking a domain constraint in
//! the same situation".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tm_parallel::ParallelDb;
use tm_relational::{RelationSchema, Tuple, ValueType};

/// The paper's §7 workload constants.
pub mod paper {
    /// Tuples in the key (parent) relation.
    pub const KEY_TUPLES: usize = 5_000;
    /// Tuples in the foreign-key (child) relation.
    pub const FK_TUPLES: usize = 50_000;
    /// Newly inserted FK tuples whose checking is measured.
    pub const INSERT_TUPLES: usize = 5_000;
    /// POOMA nodes in the prototype measurement.
    pub const NODES: usize = 8;
    /// Paper-reported bound for the referential check (seconds).
    pub const PAPER_REFERENTIAL_SECONDS: f64 = 3.0;
    /// Paper-reported bound for the domain check (seconds).
    pub const PAPER_DOMAIN_SECONDS: f64 = 1.0;
}

/// Schema of the parent (key) relation: `parent(key, payload)`.
pub fn parent_schema() -> RelationSchema {
    RelationSchema::of(
        "parent",
        &[("key", ValueType::Int), ("payload", ValueType::Int)],
    )
}

/// Schema of the child (foreign-key) relation:
/// `child(id, fk, amount)` — `fk` references `parent.key`, `amount` is the
/// domain-constrained attribute (`amount >= 0`).
pub fn child_schema() -> RelationSchema {
    RelationSchema::of(
        "child",
        &[
            ("id", ValueType::Int),
            ("fk", ValueType::Int),
            ("amount", ValueType::Int),
        ],
    )
}

/// A generated §7-style workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Parent tuples (`key` = 0..parents).
    pub parents: Vec<Tuple>,
    /// Child tuples with valid foreign keys and non-negative amounts.
    pub children: Vec<Tuple>,
    /// The insertion batch to be checked (valid unless `violations > 0`
    /// was requested).
    pub inserts: Vec<Tuple>,
}

impl Workload {
    /// Generate a workload: `parents` keys, `children` valid FK tuples,
    /// and an insert batch of `inserts` tuples of which `violations` are
    /// orphans (invalid FK) — the paper's batch is all-valid
    /// (`violations = 0`), forcing the check to scan everything.
    pub fn generate(
        parents: usize,
        children: usize,
        inserts: usize,
        violations: usize,
        seed: u64,
    ) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let parent_tuples: Vec<Tuple> = (0..parents as i64)
            .map(|k| Tuple::of((k, rng.gen_range(0..1_000_000_i64))))
            .collect();
        let children_tuples: Vec<Tuple> = (0..children as i64)
            .map(|id| {
                let fk = rng.gen_range(0..parents as i64);
                let amount = rng.gen_range(0..10_000_i64);
                Tuple::of((id, fk, amount))
            })
            .collect();
        let inserts_tuples: Vec<Tuple> = (0..inserts as i64)
            .map(|i| {
                let id = children as i64 + i;
                let orphan = (i as usize) < violations;
                let fk = if orphan {
                    parents as i64 + 1 + i // guaranteed absent
                } else {
                    rng.gen_range(0..parents as i64)
                };
                Tuple::of((id, fk, rng.gen_range(0..10_000_i64)))
            })
            .collect();
        Workload {
            parents: parent_tuples,
            children: children_tuples,
            inserts: inserts_tuples,
        }
    }

    /// The paper's exact workload sizes.
    pub fn paper_scale(seed: u64) -> Workload {
        Workload::generate(
            paper::KEY_TUPLES,
            paper::FK_TUPLES,
            paper::INSERT_TUPLES,
            0,
            seed,
        )
    }

    /// Load into a fresh [`ParallelDb`] over `nodes` nodes, co-partitioned
    /// on the join attribute (parent on `key`, child on `fk`), with the
    /// insert batch *already applied* (the paper checks after insertion).
    pub fn into_parallel_db(&self, nodes: usize) -> ParallelDb {
        let mut db = ParallelDb::new(nodes);
        db.create_relation(parent_schema(), 0);
        db.create_relation(child_schema(), 1);
        db.load("parent", self.parents.iter().cloned()).unwrap();
        db.load("child", self.children.iter().cloned()).unwrap();
        db.load("child", self.inserts.iter().cloned()).unwrap();
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(100, 1000, 50, 5, 42);
        let b = Workload::generate(100, 1000, 50, 5, 42);
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.children, b.children);
        assert_eq!(a.inserts, b.inserts);
    }

    #[test]
    fn violations_are_orphans() {
        let w = Workload::generate(100, 1000, 50, 7, 1);
        let db = w.into_parallel_db(4);
        let report = db.check_referential("child", 1, "parent", 0);
        assert_eq!(report.violations, 7);
    }

    #[test]
    fn valid_workload_satisfies_both_constraints() {
        let w = Workload::generate(50, 500, 20, 0, 9);
        let db = w.into_parallel_db(2);
        assert!(db.check_referential("child", 1, "parent", 0).satisfied());
        let neg = tm_algebra::ScalarExpr::cmp(
            tm_algebra::CmpOp::Lt,
            tm_algebra::ScalarExpr::col(2),
            tm_algebra::ScalarExpr::int(0),
        );
        assert!(db.check_domain("child", &neg).satisfied());
    }

    #[test]
    fn sizes_respected() {
        let w = Workload::generate(10, 20, 5, 0, 3);
        assert_eq!(w.parents.len(), 10);
        assert_eq!(w.children.len(), 20);
        assert_eq!(w.inserts.len(), 5);
        let db = w.into_parallel_db(2);
        assert_eq!(db.relation("child").unwrap().len(), 25);
    }
}
