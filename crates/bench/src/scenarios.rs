//! The scenario workload corpus for the service front-end.
//!
//! Each [`Scenario`] packages a schema, an integrity catalog, seed data,
//! parameterized transaction templates (RA text with `?N` placeholders —
//! the wire-protocol `Prepare` form), and a deterministic binding stream.
//! The same scenario drives the `service_throughput` bench over loopback
//! and the tenancy-isolation tests in-process:
//!
//! * [`order_entry`] — TPC-C-style order entry: referential and domain
//!   constraints over `item`/`stock`/`orders`/`payments`, happy-path
//!   bindings;
//! * [`bank`] — the bank-compensation example at scale: overdraft
//!   aborts plus a compensating audit rule that fires on every deposit;
//! * [`hot_key`] — adversarial contention: every binding hits the same
//!   key, so concurrent connections collide on one relation;
//! * [`violation_storm`] — adversarial aborts: most bindings violate,
//!   exercising rollback under sustained integrity failure;
//! * [`schema_churn`] — rules defined and removed mid-traffic
//!   ([`Scenario::churn`]), forcing the plan-epoch staleness path
//!   (re-modification) on live prepared statements.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tm_relational::{DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use txmod::{EnforcementMode, Engine, EngineConfig};

/// One catalog-churn step of [`Scenario::churn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnStep {
    /// Declare a CL constraint under a name.
    Define {
        /// Catalog name.
        name: String,
        /// CL text.
        cl: String,
    },
    /// Remove a rule/constraint by name.
    Remove {
        /// Catalog name.
        name: String,
    },
}

/// A packaged service workload: schema + catalog + seed data +
/// templates + binding stream.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (stable; used in bench reports and metrics).
    pub name: &'static str,
    /// The database schema.
    pub schema: DatabaseSchema,
    /// CL constraints `(name, text)` declared at setup.
    pub constraints: Vec<(&'static str, &'static str)>,
    /// Seed tuples per relation, loaded before traffic.
    pub loads: Vec<(&'static str, Vec<Tuple>)>,
    /// Parameterized transaction templates (RA text, `?N` placeholders).
    /// Binding streams index into this list.
    pub templates: Vec<&'static str>,
    /// Catalog churn to interleave with traffic (empty for most
    /// scenarios; [`schema_churn`] cycles these).
    pub churn: Vec<ChurnStep>,
    /// Expected fraction of committing bindings (for sanity checks; the
    /// storm scenario is deliberately below 1).
    pub expect_commit_ratio: f64,
}

impl Scenario {
    /// Build a fully seeded engine for this scenario.
    pub fn engine(&self, mode: EnforcementMode) -> Engine {
        let mut engine = Engine::with_config(
            self.schema.clone(),
            EngineConfig {
                mode,
                ..EngineConfig::default()
            },
        );
        for (name, cl) in &self.constraints {
            engine
                .define_constraint(name, cl)
                .unwrap_or_else(|e| panic!("scenario {}: constraint {name}: {e}", self.name));
        }
        for (relation, tuples) in &self.loads {
            engine
                .load(relation, tuples.clone())
                .unwrap_or_else(|e| panic!("scenario {}: load {relation}: {e}", self.name));
        }
        engine
    }

    /// A deterministic binding stream: `n` `(template_index, params)`
    /// pairs. Distinct seeds give non-overlapping key ranges, so
    /// several connections can stream concurrently without set-semantic
    /// collisions (except [`hot_key`], which collides by design).
    pub fn bindings(&self, seed: u64, n: usize) -> Vec<(usize, Vec<Value>)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        // Partition the id space by seed so streams never collide.
        let base = (seed as i64) << 40;
        (0..n)
            .map(|i| self.binding(&mut rng, base + i as i64, i))
            .collect()
    }

    fn binding(&self, rng: &mut StdRng, uid: i64, i: usize) -> (usize, Vec<Value>) {
        match self.name {
            "order_entry" => {
                let item = rng.gen_range(0..ITEMS as i64);
                if i % 4 == 3 {
                    // One payment per three orders.
                    (1, vec![Value::Int(uid), Value::Int(rng.gen_range(1..500))])
                } else {
                    (
                        0,
                        vec![
                            Value::Int(uid),
                            Value::Int(item),
                            Value::Int(rng.gen_range(1..10)),
                        ],
                    )
                }
            }
            "bank" => (
                0,
                vec![
                    Value::Int(uid),
                    Value::str(format!("owner-{}", uid & 0xff)),
                    Value::Int(rng.gen_range(0..10_000)),
                ],
            ),
            "hot_key" => (0, vec![Value::Int(0), Value::Int(uid)]),
            "violation_storm" => {
                // Three in four bindings violate the overdraft constraint.
                let balance = if i.is_multiple_of(4) {
                    rng.gen_range(0..1_000)
                } else {
                    rng.gen_range(-1_000..-1)
                };
                (
                    0,
                    vec![
                        Value::Int(uid),
                        Value::str(format!("owner-{}", uid & 0xff)),
                        Value::Int(balance),
                    ],
                )
            }
            "schema_churn" => (
                0,
                vec![Value::Int(uid), Value::Int(rng.gen_range(0..1_000))],
            ),
            other => unreachable!("unknown scenario {other}"),
        }
    }
}

/// Items seeded by [`order_entry`].
pub const ITEMS: usize = 100;

/// TPC-C-style order entry: new orders against a seeded item/stock
/// catalog, with referential integrity (`orders.item` must exist),
/// domain constraints (positive quantities, non-negative stock and
/// payment amounts).
pub fn order_entry() -> Scenario {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of("item", &[("id", ValueType::Int), ("price", ValueType::Int)]),
        RelationSchema::of(
            "stock",
            &[("item", ValueType::Int), ("qty", ValueType::Int)],
        ),
        RelationSchema::of(
            "orders",
            &[
                ("id", ValueType::Int),
                ("item", ValueType::Int),
                ("qty", ValueType::Int),
            ],
        ),
        RelationSchema::of(
            "payments",
            &[("order_id", ValueType::Int), ("amount", ValueType::Int)],
        ),
    ])
    .unwrap();
    let items: Vec<Tuple> = (0..ITEMS as i64).map(|i| Tuple::of((i, 10 + i))).collect();
    let stock: Vec<Tuple> = (0..ITEMS as i64)
        .map(|i| Tuple::of((i, 1_000_000i64)))
        .collect();
    Scenario {
        name: "order_entry",
        schema,
        constraints: vec![
            (
                "order_item_exists",
                "forall o (o in orders implies exists i (i in item and o.item = i.id))",
            ),
            (
                "order_qty_positive",
                "forall o (o in orders implies o.qty >= 1)",
            ),
            (
                "stock_non_negative",
                "forall s (s in stock implies s.qty >= 0)",
            ),
            (
                "payment_non_negative",
                "forall p (p in payments implies p.amount >= 0)",
            ),
        ],
        loads: vec![("item", items), ("stock", stock)],
        templates: vec![
            "insert(orders, row(?0, ?1, ?2))",
            "insert(payments, row(?0, ?1))",
        ],
        churn: Vec::new(),
        expect_commit_ratio: 1.0,
    }
}

/// The bank-compensation example at scale: deposits guarded by the
/// overdraft constraint, with a compensating audit rule copying every
/// inserted account row into `audit` — each commit fires a triggered
/// action, not just a check.
pub fn bank() -> Scenario {
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "account",
            &[
                ("id", ValueType::Int),
                ("owner", ValueType::Str),
                ("balance", ValueType::Int),
            ],
        ),
        RelationSchema::of(
            "audit",
            &[("id", ValueType::Int), ("balance", ValueType::Int)],
        ),
    ])
    .unwrap();
    Scenario {
        name: "bank",
        schema,
        constraints: vec![(
            "no_overdraft",
            "forall x (x in account implies x.balance >= 0)",
        )],
        loads: Vec::new(),
        templates: vec!["insert(account, row(?0, ?1, ?2))"],
        churn: Vec::new(),
        expect_commit_ratio: 1.0,
    }
}

/// The RL text of the bank audit rule (compensating action: every
/// inserted account row is mirrored into `audit`; compensations run
/// as-is on every trigger, so the condition is vacuous). Defined
/// through the wire (`DefineRule`) or [`Engine::add_rule_text`] after
/// setup; kept out of [`bank`]'s constraints because it is a rule, not
/// CL.
pub const BANK_AUDIT_RULE: &str = "RULE bank_audit WHEN INS(account) IF NOT 1 = 1 \
     THEN insert(audit, project[#0, #2](account@ins)) NON-TRIGGERING";

/// Adversarial contention: every binding inserts under the same key, so
/// concurrent connections serialize on one relation's storage and the
/// set-semantics duplicate path gets real traffic.
pub fn hot_key() -> Scenario {
    let schema = DatabaseSchema::from_relations(vec![RelationSchema::of(
        "counter",
        &[("id", ValueType::Int), ("val", ValueType::Int)],
    )])
    .unwrap();
    Scenario {
        name: "hot_key",
        schema,
        constraints: vec![(
            "val_non_negative",
            "forall c (c in counter implies c.val >= 0)",
        )],
        loads: Vec::new(),
        templates: vec!["insert(counter, row(?0, ?1))"],
        churn: Vec::new(),
        expect_commit_ratio: 1.0,
    }
}

/// Adversarial aborts: the [`bank`] catalog under a binding stream where
/// three in four deposits violate the overdraft constraint — sustained
/// rollback pressure with interleaved commits.
pub fn violation_storm() -> Scenario {
    Scenario {
        name: "violation_storm",
        expect_commit_ratio: 0.25,
        ..bank()
    }
}

/// Schema-evolution churn: plain inserts while constraints are defined
/// and removed mid-traffic ([`Scenario::churn`] cycles the steps),
/// forcing the plan-epoch staleness path — live prepared statements are
/// re-modified on their next execution after every step.
pub fn schema_churn() -> Scenario {
    let schema = DatabaseSchema::from_relations(vec![RelationSchema::of(
        "event",
        &[("id", ValueType::Int), ("weight", ValueType::Int)],
    )])
    .unwrap();
    Scenario {
        name: "schema_churn",
        schema,
        constraints: vec![(
            "weight_non_negative",
            "forall e (e in event implies e.weight >= 0)",
        )],
        loads: Vec::new(),
        templates: vec!["insert(event, row(?0, ?1))"],
        churn: vec![
            ChurnStep::Define {
                name: "weight_capped".into(),
                cl: "forall e (e in event implies e.weight <= 1000000)".into(),
            },
            ChurnStep::Remove {
                name: "weight_capped".into(),
            },
        ],
        expect_commit_ratio: 1.0,
    }
}

/// Every scenario in the corpus.
pub fn all() -> Vec<Scenario> {
    vec![
        order_entry(),
        bank(),
        hot_key(),
        violation_storm(),
        schema_churn(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scenario's engine builds, its templates prepare, and a
    /// binding stream executes with roughly the expected commit ratio.
    #[test]
    fn scenarios_prepare_and_execute() {
        for scenario in all() {
            let mut engine = scenario.engine(EnforcementMode::Static);
            if scenario.name == "bank" || scenario.name == "violation_storm" {
                engine.add_rule_text(BANK_AUDIT_RULE, "bank_audit").unwrap();
            }
            let templates: Vec<_> = scenario
                .templates
                .iter()
                .map(|t| {
                    let tx = tm_algebra::parser::parse_program(t)
                        .unwrap_or_else(|e| panic!("{}: template parse: {e}", scenario.name))
                        .bracket();
                    engine.prepare(&tx).unwrap()
                })
                .collect();
            let bindings = scenario.bindings(1, 200);
            let mut committed = 0usize;
            for (idx, params) in &bindings {
                let bound = templates[*idx].bind(params).unwrap();
                let out = engine.execute_bound(&bound).unwrap();
                if out.committed() {
                    committed += 1;
                }
            }
            let ratio = committed as f64 / bindings.len() as f64;
            assert!(
                (ratio - scenario.expect_commit_ratio).abs() < 0.1,
                "{}: commit ratio {ratio} (expected ~{})",
                scenario.name,
                scenario.expect_commit_ratio
            );
        }
    }

    /// The audit rule fires as a compensating action: every committed
    /// deposit is mirrored.
    #[test]
    fn bank_audit_rule_mirrors_deposits() {
        let scenario = bank();
        let mut engine = scenario.engine(EnforcementMode::Static);
        engine.add_rule_text(BANK_AUDIT_RULE, "bank_audit").unwrap();
        let tx = tm_algebra::parser::parse_program(scenario.templates[0])
            .unwrap()
            .bracket();
        let prepared = engine.prepare(&tx).unwrap();
        let bound = prepared
            .bind(&[Value::Int(1), Value::str("a"), Value::Int(50)])
            .unwrap();
        assert!(engine.execute_bound(&bound).unwrap().committed());
        assert_eq!(engine.relation("audit").unwrap().len(), 1);
        assert!(engine
            .relation("audit")
            .unwrap()
            .contains(&Tuple::of((1i64, 50i64))));
    }
}
