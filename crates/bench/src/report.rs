//! Minimal fixed-width table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Append a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(line, "| {cell:w$} ");
            }
            line.push('|');
            line
        };
        let header_line = fmt_row(&self.header, &widths);
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{}", "-".repeat(header_line.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3} s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_str(&["short", "1"]);
        t.row_str(&["a much longer name", "2"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| a much longer name | 2"));
        // Header and rows share widths: the two pipes align.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn duration_units() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12 µs");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(1_234)), "1.234 s");
    }
}
