//! The TCP server: std-only accept loop, thread-per-connection, and the
//! request dispatcher.
//!
//! No async runtime — connections are cheap threads blocking on reads
//! with a short timeout, so a stop flag shuts every thread down within
//! one tick without poisoning in-flight frames (partial reads resume
//! across timeouts; see [`crate::proto::read_frame_interruptible`]).
//!
//! A connection binds to one tenant with `Hello` and opens its own
//! [`ConcurrentSession`] over that tenant's engine: executions —
//! including the integrity checks, the expensive part — run on the
//! connection's thread against a private snapshot and serialize only at
//! the commit applier, so N connections to one tenant use N cores. A
//! prepared execution that loses first-committer-wins validation earns a
//! typed, retryable [`ErrorCode::Conflict`]; batch (`ExecuteMany`)
//! bindings retry transparently on a fresh snapshot instead (each
//! conflict implies some other transaction committed, so the batch as a
//! whole always makes progress).
//!
//! Work requests pass the tenant's admission controller first; rejection
//! is a typed [`Response::Busy`] — the connection stays healthy and the
//! accept loop never stalls behind an overloaded tenant. Malformed
//! frames earn a typed error response (when the stream is still
//! framable) and close the connection; they never panic and never hang.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tm_algebra::parser::parse_program;
use tm_algebra::Transaction;
use tm_relational::Value;
use txmod::{ConcurrentSession, EngineError, StatementId};

use crate::error::ProtocolError;
use crate::metrics::TenantMetrics;
use crate::proto::{
    read_frame_interruptible, write_response, ErrorCode, Request, Response, TxReport,
};
use crate::tenant::{Tenant, TenantRegistry};

/// Transparent retry budget per `ExecuteMany` binding (and per ad-hoc
/// transaction). Generous because retries are livelock-free — a binding
/// only conflicts when some other transaction committed, so total
/// progress is guaranteed; the cap merely bounds the worst-case latency
/// of one pathologically unlucky binding.
const BATCH_RETRIES: usize = 1000;

/// Knobs of [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Socket read timeout: the tick at which idle connection threads
    /// poll the stop flag.
    pub read_timeout: Duration,
    /// Accept-loop poll interval while no connection is pending.
    pub accept_pause: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_millis(50),
            accept_pause: Duration::from_millis(5),
        }
    }
}

/// Handle to a running server. Dropping it shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, wait for every connection thread to notice the
    /// stop flag and drain, and join them all.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
/// the registry's tenants until the handle is shut down.
pub fn serve(
    registry: Arc<TenantRegistry>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let stop = stop.clone();
        let conns = conns.clone();
        std::thread::spawn(move || loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let registry = registry.clone();
                    let stop = stop.clone();
                    let handle = std::thread::spawn(move || {
                        handle_connection(stream, registry, stop, config);
                    });
                    conns.lock().unwrap().push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.accept_pause);
                }
                Err(_) => std::thread::sleep(config.accept_pause),
            }
        })
    };
    Ok(ServerHandle {
        addr: local,
        stop,
        accept: Some(accept),
        conns,
    })
}

/// A connection's tenant binding: the tenant plus this connection's own
/// snapshot session and its lazily adopted statement handles (index
/// `i` holds the session-local id of the tenant's statement `i`).
struct Conn {
    tenant: Arc<Tenant>,
    session: ConcurrentSession,
    stmts: Vec<StatementId>,
}

/// Serve one connection until it closes, errors, or the server stops.
fn handle_connection(
    mut stream: TcpStream,
    registry: Arc<TenantRegistry>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut conn: Option<Conn> = None;
    loop {
        let payload = {
            let mut tick = || stop.load(Ordering::SeqCst);
            match read_frame_interruptible(&mut stream, &mut tick) {
                Ok(Some(p)) => p,
                // Clean close, or quiet shutdown at a frame boundary.
                Ok(None) => return,
                // Framing is broken (garbage length, checksum mismatch,
                // mid-frame close): a typed error is sent best-effort —
                // the stream position is untrustworthy, so close.
                Err(e) => {
                    let _ = write_response(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        },
                    );
                    let _ = stream.flush();
                    return;
                }
            }
        };
        let response = match Request::decode(&payload) {
            // The frame was intact but the payload is not a request:
            // report it; framing is still synchronized, keep serving.
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                message: ProtocolError::Codec(e).to_string(),
            },
            Ok(Request::Hello { tenant: name }) => match registry.get(&name) {
                Some(t) => {
                    conn = Some(Conn {
                        session: t.engine.session(),
                        tenant: t,
                        stmts: Vec::new(),
                    });
                    Response::HelloOk { tenant: name }
                }
                None => Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant {name:?} is registered"),
                },
            },
            Ok(req) => match &mut conn {
                None => Response::Error {
                    code: ErrorCode::NeedHello,
                    message: "first request must be Hello".to_owned(),
                },
                Some(c) => dispatch(c, &registry, req),
            },
        };
        if let Response::Error { .. } = response {
            if let Some(c) = &conn {
                c.tenant.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if write_response(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Whether a request mutates or queries the tenant's engine (and must
/// therefore pass admission control). `Hello` never reaches here;
/// `Stats` is served from the sink without touching any engine.
fn needs_admission(req: &Request) -> bool {
    !matches!(req, Request::Stats)
}

/// Serve one request against its tenant.
fn dispatch(conn: &mut Conn, registry: &Arc<TenantRegistry>, req: Request) -> Response {
    if needs_admission(&req) {
        let tenant = conn.tenant.clone();
        let Some(_guard) = tenant.admission.try_admit() else {
            tenant.metrics.busy_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::Busy {
                limit: tenant.admission.max_inflight() as u64,
            };
        };
        return dispatch_admitted(conn, registry, req);
    }
    dispatch_admitted(conn, registry, req)
}

fn engine_error(e: EngineError) -> Response {
    Response::Error {
        code: ErrorCode::Engine,
        message: e.to_string(),
    }
}

/// Parse a wire-borne RA program into a transaction.
fn parse_tx(text: &str) -> Result<Transaction, Response> {
    match parse_program(text) {
        Ok(program) => Ok(program.bracket()),
        Err(e) => Err(Response::Error {
            code: ErrorCode::Engine,
            message: format!("program parse error: {e}"),
        }),
    }
}

fn dispatch_admitted(conn: &mut Conn, registry: &Arc<TenantRegistry>, req: Request) -> Response {
    let tenant = conn.tenant.clone();
    let metrics = &tenant.metrics;
    match req {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "connection is already bound to a tenant".to_owned(),
        },
        Request::Prepare { template } => {
            let tx = match parse_tx(&template) {
                Ok(tx) => tx,
                Err(resp) => return resp,
            };
            // Prepare under the engine lock (ModT paid once), then
            // publish into the tenant-wide list; wire statement ids are
            // tenant-scoped, so every connection can execute it.
            let prepared = match tenant.engine.lock().prepare(&tx) {
                Ok(p) => p,
                Err(e) => return engine_error(e),
            };
            let param_count = prepared.param_count() as u32;
            let mut statements = tenant.statements.write().unwrap();
            statements.push(prepared);
            metrics.prepared.fetch_add(1, Ordering::Relaxed);
            Response::Prepared {
                stmt_id: (statements.len() - 1) as u32,
                param_count,
            }
        }
        Request::Execute { stmt_id, params } => {
            // No transparent retry on the single-shot path: the client
            // owns the retry decision (a typed, retryable Conflict).
            match run_one(conn, stmt_id, &params, 0) {
                Ok(report) => {
                    poll_checkpoint(&tenant, metrics);
                    Response::Tx(report)
                }
                Err(resp) => resp,
            }
        }
        Request::ExecuteMany { stmt_id, bindings } => {
            let (mut committed, mut aborted) = (0u64, 0u64);
            for params in &bindings {
                match run_one(conn, stmt_id, params, BATCH_RETRIES) {
                    Ok(report) if report.committed => committed += 1,
                    Ok(_) => aborted += 1,
                    Err(resp) => return resp,
                }
            }
            poll_checkpoint(&tenant, metrics);
            Response::Batch { committed, aborted }
        }
        Request::AdHoc { tx } => {
            let tx = match parse_tx(&tx) {
                Ok(tx) => tx,
                Err(resp) => return resp,
            };
            // One-shot statements still run as snapshot transactions —
            // through a throwaway session, so they validate and commit
            // exactly like prepared work (no serializability side door).
            let mut session = tenant.engine.session();
            let t0 = Instant::now();
            let result = session
                .prepare(&tx)
                .and_then(|id| session.execute_with_retry(id, &[], BATCH_RETRIES));
            match result {
                Ok((mut out, retries)) => {
                    metrics
                        .conflict_retries
                        .fetch_add(retries as u64, Ordering::Relaxed);
                    // A one-shot plan is never reused: report the
                    // modification as paid here.
                    out.reused_plan = false;
                    metrics.adhoc.fetch_add(1, Ordering::Relaxed);
                    metrics.record_execution(&out, None, None, t0.elapsed().as_micros() as u64);
                    poll_checkpoint(&tenant, metrics);
                    Response::Tx(report_of(&out))
                }
                Err(e) if e.is_retryable() => {
                    metrics.conflicts.fetch_add(1, Ordering::Relaxed);
                    Response::Error {
                        code: ErrorCode::Conflict,
                        message: e.to_string(),
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Request::DefineRule { name, text } => {
            match tenant.engine.lock().add_rule_text(&text, &name) {
                Ok(()) => Response::Ack {
                    detail: format!("rule {name} defined"),
                },
                Err(e) => engine_error(e),
            }
        }
        Request::DefineConstraint { name, cl } => {
            match tenant.engine.lock().define_constraint(&name, &cl) {
                Ok(()) => Response::Ack {
                    detail: format!("constraint {name} defined"),
                },
                Err(e) => engine_error(e),
            }
        }
        Request::RemoveRule { name } => match tenant.engine.lock().remove_rule(&name) {
            Ok(true) => Response::Ack {
                detail: format!("rule {name} removed"),
            },
            Ok(false) => Response::Ack {
                detail: format!("rule {name} was not present"),
            },
            Err(e) => engine_error(e),
        },
        Request::Snapshot { relation } => {
            let engine = tenant.engine.lock();
            match engine.relation(&relation) {
                Ok(rel) => {
                    let mut tuples: Vec<_> = rel.iter().cloned().collect();
                    tuples.sort();
                    Response::SnapshotData { relation, tuples }
                }
                Err(e) => engine_error(e),
            }
        }
        Request::Analyze => Response::Analysis {
            text: tenant.engine.lock().validate_full().to_string(),
        },
        Request::Stats => {
            registry.poll_checkpoint_errors();
            Response::StatsDump {
                text: registry.metrics().dump(),
            }
        }
    }
}

fn report_of(out: &txmod::EngineOutcome) -> TxReport {
    let abort = match &out.outcome {
        tm_algebra::TxOutcome::Committed(_) => None,
        tm_algebra::TxOutcome::Aborted { reason, .. } => Some(reason.to_string()),
    };
    TxReport {
        committed: out.committed(),
        reused_plan: out.reused_plan,
        checks_skipped: out.checks.skipped as u32,
        checks_probed: out.checks.probed as u32,
        checks_evaluated: out.checks.evaluated as u32,
        abort,
    }
}

/// Make the tenant's statement `stmt_id` executable in this connection's
/// session, adopting any not-yet-seen statements in order (so the
/// session-local index always equals the tenant-wide wire id).
fn ensure_statement(conn: &mut Conn, stmt_id: u32) -> Result<StatementId, Response> {
    let idx = stmt_id as usize;
    if idx >= conn.stmts.len() {
        let canonical = conn.tenant.statements.read().unwrap();
        for p in canonical.iter().skip(conn.stmts.len()) {
            let id = conn.session.adopt(p.clone());
            conn.stmts.push(id);
        }
    }
    conn.stmts.get(idx).copied().ok_or_else(|| Response::Error {
        code: ErrorCode::UnknownStatement,
        message: format!("no prepared statement {stmt_id}"),
    })
}

/// Execute one binding of a prepared statement as a snapshot transaction
/// in this connection's session, with up to `max_retries` transparent
/// re-executions on serialization conflicts. A conflict surviving the
/// budget maps to the typed, retryable [`ErrorCode::Conflict`].
fn run_one(
    conn: &mut Conn,
    stmt_id: u32,
    params: &[Value],
    max_retries: usize,
) -> Result<TxReport, Response> {
    let id = ensure_statement(conn, stmt_id)?;
    let metrics = conn.tenant.metrics.clone();
    let t0 = Instant::now();
    match conn.session.execute_with_retry(id, params, max_retries) {
        Ok((out, retries)) => {
            metrics
                .conflict_retries
                .fetch_add(retries as u64, Ordering::Relaxed);
            if !out.reused_plan {
                // The session found its copy stale (catalog moved) and
                // re-modified before executing.
                metrics.plan_remodified.fetch_add(1, Ordering::Relaxed);
            }
            let slot = conn
                .session
                .prepared(id)
                .expect("statement adopted just above");
            metrics.record_execution(
                &out,
                Some(slot.specialization()),
                Some(slot.check_attribution()),
                t0.elapsed().as_micros() as u64,
            );
            Ok(report_of(&out))
        }
        Err(e) if e.is_retryable() => {
            metrics.conflicts.fetch_add(1, Ordering::Relaxed);
            Err(Response::Error {
                code: ErrorCode::Conflict,
                message: e.to_string(),
            })
        }
        Err(e) => Err(engine_error(e)),
    }
}

/// After an execution, surface any deferred auto-checkpoint error into
/// the tenant's health metrics. Opportunistic: a busy engine (another
/// connection mid-snapshot or mid-drain) is skipped and polled on the
/// next execution or `Stats` pass rather than waited for.
fn poll_checkpoint(tenant: &Tenant, metrics: &TenantMetrics) {
    if let Some(mut engine) = tenant.engine.try_lock() {
        if let Some(err) = engine.take_checkpoint_error() {
            metrics.record_checkpoint_error(err.to_string());
        }
    }
}
