//! The TCP server: std-only accept loop, thread-per-connection, and the
//! request dispatcher.
//!
//! No async runtime — connections are cheap threads blocking on reads
//! with a short timeout, so a stop flag shuts every thread down within
//! one tick without poisoning in-flight frames (partial reads resume
//! across timeouts; see [`crate::proto::read_frame_interruptible`]).
//!
//! A connection binds to one tenant with `Hello` and then serves
//! requests in order. Work requests pass the tenant's admission
//! controller first; rejection is a typed [`Response::Busy`] — the
//! connection stays healthy and the accept loop never stalls behind an
//! overloaded tenant. Malformed frames earn a typed error response
//! (when the stream is still framable) and close the connection; they
//! never panic and never hang.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tm_algebra::parser::parse_program;
use tm_algebra::Transaction;
use txmod::{EngineError, Prepared};

use crate::error::ProtocolError;
use crate::proto::{
    read_frame_interruptible, write_response, ErrorCode, Request, Response, TxReport,
};
use crate::tenant::{Tenant, TenantRegistry, TenantState};

/// Knobs of [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Socket read timeout: the tick at which idle connection threads
    /// poll the stop flag.
    pub read_timeout: Duration,
    /// Accept-loop poll interval while no connection is pending.
    pub accept_pause: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_millis(50),
            accept_pause: Duration::from_millis(5),
        }
    }
}

/// Handle to a running server. Dropping it shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, wait for every connection thread to notice the
    /// stop flag and drain, and join them all.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
/// the registry's tenants until the handle is shut down.
pub fn serve(
    registry: Arc<TenantRegistry>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let stop = stop.clone();
        let conns = conns.clone();
        std::thread::spawn(move || loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let registry = registry.clone();
                    let stop = stop.clone();
                    let handle = std::thread::spawn(move || {
                        handle_connection(stream, registry, stop, config);
                    });
                    conns.lock().unwrap().push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.accept_pause);
                }
                Err(_) => std::thread::sleep(config.accept_pause),
            }
        })
    };
    Ok(ServerHandle {
        addr: local,
        stop,
        accept: Some(accept),
        conns,
    })
}

/// Serve one connection until it closes, errors, or the server stops.
fn handle_connection(
    mut stream: TcpStream,
    registry: Arc<TenantRegistry>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut tenant: Option<Arc<Tenant>> = None;
    loop {
        let payload = {
            let mut tick = || stop.load(Ordering::SeqCst);
            match read_frame_interruptible(&mut stream, &mut tick) {
                Ok(Some(p)) => p,
                // Clean close, or quiet shutdown at a frame boundary.
                Ok(None) => return,
                // Framing is broken (garbage length, checksum mismatch,
                // mid-frame close): a typed error is sent best-effort —
                // the stream position is untrustworthy, so close.
                Err(e) => {
                    let _ = write_response(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        },
                    );
                    let _ = stream.flush();
                    return;
                }
            }
        };
        let response = match Request::decode(&payload) {
            // The frame was intact but the payload is not a request:
            // report it; framing is still synchronized, keep serving.
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                message: ProtocolError::Codec(e).to_string(),
            },
            Ok(Request::Hello { tenant: name }) => match registry.get(&name) {
                Some(t) => {
                    tenant = Some(t);
                    Response::HelloOk { tenant: name }
                }
                None => Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant {name:?} is registered"),
                },
            },
            Ok(req) => match &tenant {
                None => Response::Error {
                    code: ErrorCode::NeedHello,
                    message: "first request must be Hello".to_owned(),
                },
                Some(t) => dispatch(t, &registry, req),
            },
        };
        if let Response::Error { .. } = response {
            if let Some(t) = &tenant {
                t.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if write_response(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Whether a request mutates or queries the tenant's engine (and must
/// therefore pass admission control). `Hello` never reaches here;
/// `Stats` is served from the sink without touching any engine.
fn needs_admission(req: &Request) -> bool {
    !matches!(req, Request::Stats)
}

/// Serve one request against its tenant.
fn dispatch(tenant: &Arc<Tenant>, registry: &Arc<TenantRegistry>, req: Request) -> Response {
    if needs_admission(&req) {
        let Some(_guard) = tenant.admission.try_admit() else {
            tenant.metrics.busy_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::Busy {
                limit: tenant.admission.max_inflight() as u64,
            };
        };
        return dispatch_admitted(tenant, registry, req);
    }
    dispatch_admitted(tenant, registry, req)
}

fn engine_error(e: EngineError) -> Response {
    Response::Error {
        code: ErrorCode::Engine,
        message: e.to_string(),
    }
}

/// Parse a wire-borne RA program into a transaction.
fn parse_tx(text: &str) -> Result<Transaction, Response> {
    match parse_program(text) {
        Ok(program) => Ok(program.bracket()),
        Err(e) => Err(Response::Error {
            code: ErrorCode::Engine,
            message: format!("program parse error: {e}"),
        }),
    }
}

fn dispatch_admitted(
    tenant: &Arc<Tenant>,
    registry: &Arc<TenantRegistry>,
    req: Request,
) -> Response {
    let metrics = &tenant.metrics;
    match req {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "connection is already bound to a tenant".to_owned(),
        },
        Request::Prepare { template } => {
            let tx = match parse_tx(&template) {
                Ok(tx) => tx,
                Err(resp) => return resp,
            };
            let mut st = tenant.state.lock().unwrap();
            match st.engine.prepare(&tx) {
                Ok(prepared) => {
                    let param_count = prepared.param_count() as u32;
                    st.statements.push(prepared);
                    metrics.prepared.fetch_add(1, Ordering::Relaxed);
                    Response::Prepared {
                        stmt_id: (st.statements.len() - 1) as u32,
                        param_count,
                    }
                }
                Err(e) => engine_error(e),
            }
        }
        Request::Execute { stmt_id, params } => {
            let mut st = tenant.state.lock().unwrap();
            match run_one(&mut st, metrics, stmt_id, &params) {
                Ok(report) => {
                    poll_checkpoint(&mut st, metrics);
                    Response::Tx(report)
                }
                Err(resp) => resp,
            }
        }
        Request::ExecuteMany { stmt_id, bindings } => {
            let mut st = tenant.state.lock().unwrap();
            let (mut committed, mut aborted) = (0u64, 0u64);
            for params in &bindings {
                match run_one(&mut st, metrics, stmt_id, params) {
                    Ok(report) if report.committed => committed += 1,
                    Ok(_) => aborted += 1,
                    Err(resp) => return resp,
                }
            }
            poll_checkpoint(&mut st, metrics);
            Response::Batch { committed, aborted }
        }
        Request::AdHoc { tx } => {
            let tx = match parse_tx(&tx) {
                Ok(tx) => tx,
                Err(resp) => return resp,
            };
            let mut st = tenant.state.lock().unwrap();
            let t0 = Instant::now();
            match st.engine.execute(&tx) {
                Ok(out) => {
                    metrics.adhoc.fetch_add(1, Ordering::Relaxed);
                    metrics.record_execution(&out, None, t0.elapsed().as_micros() as u64);
                    poll_checkpoint(&mut st, metrics);
                    Response::Tx(report_of(&out))
                }
                Err(e) => engine_error(e),
            }
        }
        Request::DefineRule { name, text } => {
            let mut st = tenant.state.lock().unwrap();
            match st.engine.add_rule_text(&text, &name) {
                Ok(()) => Response::Ack {
                    detail: format!("rule {name} defined"),
                },
                Err(e) => engine_error(e),
            }
        }
        Request::DefineConstraint { name, cl } => {
            let mut st = tenant.state.lock().unwrap();
            match st.engine.define_constraint(&name, &cl) {
                Ok(()) => Response::Ack {
                    detail: format!("constraint {name} defined"),
                },
                Err(e) => engine_error(e),
            }
        }
        Request::RemoveRule { name } => {
            let mut st = tenant.state.lock().unwrap();
            match st.engine.remove_rule(&name) {
                Ok(true) => Response::Ack {
                    detail: format!("rule {name} removed"),
                },
                Ok(false) => Response::Ack {
                    detail: format!("rule {name} was not present"),
                },
                Err(e) => engine_error(e),
            }
        }
        Request::Snapshot { relation } => {
            let st = tenant.state.lock().unwrap();
            match st.engine.relation(&relation) {
                Ok(rel) => {
                    let mut tuples: Vec<_> = rel.iter().cloned().collect();
                    tuples.sort();
                    Response::SnapshotData { relation, tuples }
                }
                Err(e) => engine_error(e),
            }
        }
        Request::Analyze => {
            let st = tenant.state.lock().unwrap();
            Response::Analysis {
                text: st.engine.validate_full().to_string(),
            }
        }
        Request::Stats => {
            registry.poll_checkpoint_errors();
            Response::StatsDump {
                text: registry.metrics().dump(),
            }
        }
    }
}

fn report_of(out: &txmod::EngineOutcome) -> TxReport {
    let abort = match &out.outcome {
        tm_algebra::TxOutcome::Committed(_) => None,
        tm_algebra::TxOutcome::Aborted { reason, .. } => Some(reason.to_string()),
    };
    TxReport {
        committed: out.committed(),
        reused_plan: out.reused_plan,
        checks_skipped: out.checks.skipped as u32,
        checks_probed: out.checks.probed as u32,
        checks_evaluated: out.checks.evaluated as u32,
        abort,
    }
}

/// Execute one binding of a prepared statement, with the session-style
/// stale-plan refresh and metrics recording.
fn run_one(
    st: &mut TenantState,
    metrics: &crate::metrics::TenantMetrics,
    stmt_id: u32,
    params: &[tm_relational::Value],
) -> Result<TxReport, Response> {
    let TenantState { engine, statements } = st;
    let slot: &mut Prepared =
        statements
            .get_mut(stmt_id as usize)
            .ok_or_else(|| Response::Error {
                code: ErrorCode::UnknownStatement,
                message: format!("no prepared statement {stmt_id}"),
            })?;
    let refreshed = if slot.is_stale(engine) {
        *slot = engine.prepare(slot.source()).map_err(engine_error)?;
        metrics.plan_remodified.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    };
    let t0 = Instant::now();
    let bound = slot.bind(params).map_err(engine_error)?;
    let mut out = engine.execute_bound(&bound).map_err(engine_error)?;
    if refreshed {
        out.reused_plan = false;
    }
    metrics.record_execution(
        &out,
        Some(slot.specialization()),
        t0.elapsed().as_micros() as u64,
    );
    Ok(report_of(&out))
}

/// After a batch or ad-hoc execution, surface any deferred
/// auto-checkpoint error into the tenant's health metrics.
fn poll_checkpoint(st: &mut TenantState, metrics: &crate::metrics::TenantMetrics) {
    if let Some(err) = st.engine.take_checkpoint_error() {
        metrics.record_checkpoint_error(err.to_string());
    }
}
