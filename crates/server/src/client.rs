//! A blocking wire-protocol client.
//!
//! One request, one response, in order — the protocol has no pipelining.
//! Convenience methods decode the expected response kind and turn
//! everything else into a typed [`ProtocolError`]; [`Client::request`]
//! exposes the raw exchange for callers (benches, smoke tests) that want
//! to observe `Busy` and error responses directly.

use std::net::{TcpStream, ToSocketAddrs};

use tm_relational::{Tuple, Value};

use crate::error::{ProtocolError, Result};
use crate::proto::{read_frame, write_request, Request, Response, TxReport};

/// A connected, tenant-bound protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    tenant: String,
}

/// A prepared statement as seen by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedStmt {
    /// The server-side statement id.
    pub stmt_id: u32,
    /// Number of `?N` placeholders to bind.
    pub param_count: u32,
}

impl Client {
    /// Connect and bind to `tenant` (the `Hello` handshake).
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            tenant: tenant.to_owned(),
        };
        match client.request(&Request::Hello {
            tenant: tenant.to_owned(),
        })? {
            Response::HelloOk { .. } => Ok(client),
            other => Err(unexpected(other)),
        }
    }

    /// The tenant this connection is bound to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Send one request and read its response — the raw exchange.
    /// `Busy` and `Error` arrive as `Ok(Response::...)`, not errors.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        write_request(&mut self.stream, req)?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ProtocolError::UnexpectedEof { got: 0 }),
        }
    }

    /// Prepare a transaction template.
    pub fn prepare(&mut self, template: &str) -> Result<PreparedStmt> {
        match self.request(&Request::Prepare {
            template: template.to_owned(),
        })? {
            Response::Prepared {
                stmt_id,
                param_count,
            } => Ok(PreparedStmt {
                stmt_id,
                param_count,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Bind and execute a prepared statement once.
    pub fn execute(&mut self, stmt: PreparedStmt, params: Vec<Value>) -> Result<TxReport> {
        match self.request(&Request::Execute {
            stmt_id: stmt.stmt_id,
            params,
        })? {
            Response::Tx(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// [`Client::execute`] with automatic retry on serialization
    /// conflicts ([`crate::proto::ErrorCode::Conflict`]): the server runs
    /// each attempt on a fresh snapshot, so under contention a retry
    /// normally lands. Returns the report together with the number of
    /// retries spent; the last conflict propagates when the budget is
    /// exhausted.
    pub fn execute_retrying(
        &mut self,
        stmt: PreparedStmt,
        params: Vec<Value>,
        max_retries: usize,
    ) -> Result<(TxReport, usize)> {
        let mut retries = 0;
        loop {
            match self.execute(stmt, params.clone()) {
                Err(e) if e.is_conflict() && retries < max_retries => retries += 1,
                other => return other.map(|r| (r, retries)),
            }
        }
    }

    /// Bind and execute a prepared statement once per binding; returns
    /// `(committed, aborted)` counts.
    pub fn execute_many(
        &mut self,
        stmt: PreparedStmt,
        bindings: Vec<Vec<Value>>,
    ) -> Result<(u64, u64)> {
        match self.request(&Request::ExecuteMany {
            stmt_id: stmt.stmt_id,
            bindings,
        })? {
            Response::Batch { committed, aborted } => Ok((committed, aborted)),
            other => Err(unexpected(other)),
        }
    }

    /// Execute an ad-hoc transaction.
    pub fn ad_hoc(&mut self, tx: &str) -> Result<TxReport> {
        match self.request(&Request::AdHoc { tx: tx.to_owned() })? {
            Response::Tx(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Add an RL rule to the tenant's catalog.
    pub fn define_rule(&mut self, name: &str, text: &str) -> Result<String> {
        self.expect_ack(Request::DefineRule {
            name: name.to_owned(),
            text: text.to_owned(),
        })
    }

    /// Declare a CL constraint on the tenant's catalog.
    pub fn define_constraint(&mut self, name: &str, cl: &str) -> Result<String> {
        self.expect_ack(Request::DefineConstraint {
            name: name.to_owned(),
            cl: cl.to_owned(),
        })
    }

    /// Remove a rule or constraint by name.
    pub fn remove_rule(&mut self, name: &str) -> Result<String> {
        self.expect_ack(Request::RemoveRule {
            name: name.to_owned(),
        })
    }

    /// Read a consistent snapshot of one relation (tuples arrive
    /// sorted).
    pub fn snapshot(&mut self, relation: &str) -> Result<Vec<Tuple>> {
        match self.request(&Request::Snapshot {
            relation: relation.to_owned(),
        })? {
            Response::SnapshotData { tuples, .. } => Ok(tuples),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the catalog analysis rendering.
    pub fn analyze(&mut self) -> Result<String> {
        match self.request(&Request::Analyze)? {
            Response::Analysis { text } => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the server metrics dump.
    pub fn stats(&mut self) -> Result<String> {
        match self.request(&Request::Stats)? {
            Response::StatsDump { text } => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    fn expect_ack(&mut self, req: Request) -> Result<String> {
        match self.request(&req)? {
            Response::Ack { detail } => Ok(detail),
            other => Err(unexpected(other)),
        }
    }
}

/// Map a well-formed but out-of-place response to the matching typed
/// error: server errors and admission rejections keep their identity,
/// everything else is [`ProtocolError::Unexpected`].
fn unexpected(resp: Response) -> ProtocolError {
    match resp {
        Response::Error { code, message } => ProtocolError::Remote { code, message },
        Response::Busy { limit } => ProtocolError::Busy { limit },
        other => ProtocolError::Unexpected {
            got: format!("{other:?}"),
        },
    }
}
