//! Multi-tenancy: the tenant registry and per-tenant admission control.
//!
//! A tenant is an independent engine — its own catalog, enforcement
//! mode, durability level, and (when durable) WAL directory — plus the
//! prepared statements its connections have accumulated and an
//! [`Admission`] controller bounding its in-flight work. Tenants share
//! nothing but the process: one tenant's aborts, violation storms, or
//! overload cannot perturb another's state, verdicts, or metrics (only
//! the process-wide COW/WAL counters aggregate across tenants, which is
//! why the dump labels them `process.*`).
//!
//! The engine is wrapped in a [`ConcurrentEngine`]: every connection
//! gets its own snapshot session, so N connections to one tenant run
//! their executions — including the integrity checks, the expensive part
//! — on N cores, serializing only at the flat-combining commit applier
//! (see `txmod::concurrent`). The canonical prepared-statement list
//! lives here, tenant-wide, because statement ids on the wire are
//! tenant-scoped; each connection's session lazily adopts copies (see
//! [`crate::server`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use txmod::{ConcurrentEngine, Engine, Prepared};

use crate::metrics::{ServerMetrics, TenantMetrics};

/// Admission knobs for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Maximum requests in flight (queue-depth cap); `0` = unlimited.
    /// Overload beyond the cap earns a typed `Busy` response — the
    /// accept loop and other tenants never stall, and admitted work
    /// proceeds at full engine speed.
    pub max_inflight: usize,
    /// Token-bucket refill rate, requests per second; `0` = unlimited.
    pub rate_per_sec: f64,
    /// Token-bucket capacity (burst size); ignored when `rate_per_sec`
    /// is 0.
    pub burst: f64,
}

impl Default for TenantSpec {
    /// Queue-depth cap of 64, no rate limit.
    fn default() -> Self {
        TenantSpec {
            max_inflight: 64,
            rate_per_sec: 0.0,
            burst: 0.0,
        }
    }
}

#[derive(Debug)]
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn try_take(&mut self) -> bool {
        let now = Instant::now();
        self.tokens =
            (self.tokens + self.rate * now.duration_since(self.last).as_secs_f64()).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The per-tenant admission controller: a queue-depth cap on in-flight
/// requests plus an optional token bucket. Rejection is cheap (two
/// atomics, or one short lock when rate-limited) and typed — the caller
/// turns it into a `Busy` response.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    inflight: AtomicUsize,
    rejected: AtomicU64,
    bucket: Option<Mutex<TokenBucket>>,
}

impl Admission {
    fn new(spec: &TenantSpec) -> Admission {
        Admission {
            max_inflight: spec.max_inflight,
            inflight: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            bucket: (spec.rate_per_sec > 0.0).then(|| {
                Mutex::new(TokenBucket {
                    rate: spec.rate_per_sec,
                    burst: spec.burst.max(1.0),
                    tokens: spec.burst.max(1.0),
                    last: Instant::now(),
                })
            }),
        }
    }

    /// Try to admit one request. `None` means overload — respond `Busy`.
    /// The returned guard holds the in-flight slot until dropped.
    pub fn try_admit(&self) -> Option<AdmitGuard<'_>> {
        if let Some(bucket) = &self.bucket {
            if !bucket.lock().unwrap().try_take() {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        if self.max_inflight > 0 {
            let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
            if prev >= self.max_inflight {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        Some(AdmitGuard { admission: self })
    }

    /// The configured in-flight cap (0 = unlimited).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// RAII in-flight slot of [`Admission::try_admit`].
#[derive(Debug)]
pub struct AdmitGuard<'a> {
    admission: &'a Admission,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        if self.admission.max_inflight > 0 {
            self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// One registered tenant.
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's engine, wrapped for concurrent snapshot execution.
    /// Administration (DDL, snapshots, analysis) goes through
    /// [`ConcurrentEngine::lock`]; the execute path goes through
    /// per-connection sessions and never serializes on it.
    pub engine: ConcurrentEngine,
    /// The canonical prepared statements; wire statement ids index this
    /// vector. Connections adopt copies into their own sessions.
    pub statements: RwLock<Vec<Prepared>>,
    /// The admission controller.
    pub admission: Admission,
    /// This tenant's metrics slice.
    pub metrics: Arc<TenantMetrics>,
}

/// The tenant registry: tenant id → independent engine.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    metrics: Arc<ServerMetrics>,
}

impl Default for TenantRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TenantRegistry {
    /// An empty registry with a fresh metrics sink.
    pub fn new() -> TenantRegistry {
        TenantRegistry {
            tenants: RwLock::new(BTreeMap::new()),
            metrics: Arc::new(ServerMetrics::new()),
        }
    }

    /// Register a tenant. The engine arrives fully configured — schema,
    /// catalog, enforcement mode, and (via [`Engine::make_durable`])
    /// durability level and WAL directory are the caller's choices; the
    /// registry turns on per-check timing (so `rule.<r>.latency_us` in
    /// the metrics dump reports measured check time) and wraps it for
    /// concurrent sessions. Replaces any previous tenant of the same
    /// name.
    pub fn add(&self, name: &str, mut engine: Engine, spec: TenantSpec) -> Arc<Tenant> {
        engine.set_check_timing(true);
        let tenant = Arc::new(Tenant {
            engine: ConcurrentEngine::new(engine),
            statements: RwLock::new(Vec::new()),
            admission: Admission::new(&spec),
            metrics: self.metrics.tenant(name),
        });
        self.tenants
            .write()
            .unwrap()
            .insert(name.to_owned(), tenant.clone());
        tenant
    }

    /// Look up a tenant by id.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().unwrap().get(name).cloned()
    }

    /// Registered tenant ids, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.read().unwrap().keys().cloned().collect()
    }

    /// The server-wide metrics sink.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Poll every tenant's engine for a deferred auto-checkpoint error
    /// and record it in that tenant's metrics (tenant health). Called on
    /// each `Stats` request; tenants busy under their engine mutex are
    /// polled on the next pass rather than waited for.
    pub fn poll_checkpoint_errors(&self) {
        let tenants: Vec<Arc<Tenant>> = self.tenants.read().unwrap().values().cloned().collect();
        for t in tenants {
            if let Some(mut engine) = t.engine.try_lock() {
                if let Some(err) = engine.take_checkpoint_error() {
                    t.metrics.record_checkpoint_error(err.to_string());
                }
            }
        }
    }
}
