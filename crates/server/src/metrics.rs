//! The metrics sink: cheap atomic counters and histograms, fed by the
//! request handlers and sampled by the `Stats` request.
//!
//! Everything on the hot path is a relaxed atomic op or an uncontended
//! mutex over plain integers — recording an execution costs nanoseconds,
//! not a syscall. Three layers:
//!
//! * **per-tenant** ([`TenantMetrics`]): transaction outcomes, plan
//!   reuse/re-modification, admission rejections, check-verdict counts,
//!   a per-transaction engine latency histogram, deferred checkpoint
//!   errors (tenant health), and per-rule verdict/latency attribution;
//! * **per-rule** ([`RuleMetrics`]): how each catalog rule's checks were
//!   dispatched across executions — dropped by a specialization proof,
//!   reduced to a point probe, or evaluated generically — with the
//!   **measured** check latency. The engine times each appended check
//!   statement (`EngineOutcome::check_times_ns`, enabled per tenant at
//!   registration) and the prepared plan knows which rule each check
//!   belongs to (`Prepared::check_attribution`), so `rule.<r>.latency_us`
//!   is the summed wall time of rule `r`'s own checks — not a plan-level
//!   upper bound. Nanoseconds accumulate internally; the dump renders
//!   microseconds, so sub-µs point probes don't round away;
//! * **process-wide**: the COW unshare counter (`tm-relational`) and the
//!   WAL bytes/fsync counters (`tm-durable`), sampled as deltas since
//!   server start so co-resident tenants see server-attributable totals.
//!
//! [`ServerMetrics::dump`] renders the whole sink as plaintext, one
//! `key value` pair per line — the payload of the `Stats` response.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use txmod::{EngineOutcome, SpecOutcome, SpecializationReport};

/// Number of log₂ latency buckets (covers up to ~2^39 µs ≈ 6 days).
const BUCKETS: usize = 40;

/// A lock-free log₂-bucketed latency histogram (microseconds).
///
/// Recording is one relaxed `fetch_add`; quantiles are computed at dump
/// time by walking the cumulative bucket counts. A bucket's reported
/// value is its geometric midpoint, so quantiles carry at most ~41%
/// relative error — plenty for p50/p99 dashboards, free on the hot path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample, microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The `q`-quantile (0 < q ≤ 1) in microseconds, 0 when empty. The
    /// value is the geometric midpoint of the bucket holding the
    /// quantile sample.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds samples in [2^(i-1), 2^i); midpoint ≈
                // 1.5 · 2^(i-1). Bucket 0 holds the zeros.
                return if i == 0 { 0 } else { 3 << (i - 1) >> 1 };
            }
        }
        0
    }
}

/// Per-rule check dispatch and measured check latency.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RuleMetrics {
    /// Executions whose plan dropped this rule's check with a
    /// weakest-precondition proof.
    pub skipped: u64,
    /// Executions whose plan reduced this rule's check to point probes.
    pub probed: u64,
    /// Executions whose plan evaluated this rule's check generically.
    pub evaluated: u64,
    /// Cumulative measured wall time of this rule's own checks,
    /// nanoseconds (dropped checks execute nothing and are not charged;
    /// executions without check timing contribute verdict counts only).
    pub latency_ns: u64,
}

impl RuleMetrics {
    /// The accumulated check latency in microseconds (the dump unit).
    pub fn latency_us(&self) -> u64 {
        self.latency_ns / 1_000
    }
}

/// The per-tenant slice of the metrics sink. All fields are monotonic
/// counters; rates are derived by sampling twice.
#[derive(Debug, Default)]
pub struct TenantMetrics {
    /// Transactions that committed.
    pub committed: AtomicU64,
    /// Transactions that aborted (integrity violation, explicit abort).
    pub aborted: AtomicU64,
    /// Requests rejected by admission control with a typed `Busy`.
    pub busy_rejected: AtomicU64,
    /// Executions that lost first-committer-wins validation and were
    /// surfaced to the client as a typed, retryable `Conflict`.
    pub conflicts: AtomicU64,
    /// Transparent conflict re-executions spent inside batch requests
    /// (`ExecuteMany` retries a conflicted binding on a fresh snapshot
    /// rather than failing the batch).
    pub conflict_retries: AtomicU64,
    /// Requests that failed with an error response.
    pub errors: AtomicU64,
    /// Statements prepared (ModT runs paid at prepare time).
    pub prepared: AtomicU64,
    /// Executions that reused a prepared plan unchanged.
    pub plan_reused: AtomicU64,
    /// Executions that found their plan stale (catalog epoch moved) and
    /// re-modified it first — the re-modification count.
    pub plan_remodified: AtomicU64,
    /// Ad-hoc (non-prepared) executions.
    pub adhoc: AtomicU64,
    /// Rule checks skipped across all executions.
    pub checks_skipped: AtomicU64,
    /// Rule checks reduced to point probes across all executions.
    pub checks_probed: AtomicU64,
    /// Rule checks evaluated generically across all executions.
    pub checks_evaluated: AtomicU64,
    /// Deferred auto-checkpoint failures observed (tenant health).
    pub checkpoint_errors: AtomicU64,
    /// Per-transaction engine-side latency.
    pub latency: Histogram,
    last_checkpoint_error: Mutex<Option<String>>,
    rules: Mutex<BTreeMap<String, RuleMetrics>>,
}

impl TenantMetrics {
    /// Record one engine execution: outcome counters, check verdicts,
    /// latency, and — when the plan's specialization report is provided —
    /// per-rule attribution.
    ///
    /// `attribution` is the prepared plan's rule → check-count map
    /// (`Prepared::check_attribution`), positionally parallel to
    /// `spec.decisions`; together with `outcome.check_times_ns` it
    /// charges each rule the measured wall time of its own checks. An
    /// execution without timing data (ad-hoc, or a transaction that
    /// aborted before reaching a rule's checks) contributes verdict
    /// counts but no latency sample for the unreached checks.
    pub fn record_execution(
        &self,
        outcome: &EngineOutcome,
        spec: Option<&SpecializationReport>,
        attribution: Option<&[(String, usize)]>,
        elapsed_us: u64,
    ) {
        if outcome.committed() {
            self.committed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.aborted.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.reused_plan {
            self.plan_reused.fetch_add(1, Ordering::Relaxed);
        }
        let checks = outcome.checks;
        self.checks_skipped
            .fetch_add(checks.skipped as u64, Ordering::Relaxed);
        self.checks_probed
            .fetch_add(checks.probed as u64, Ordering::Relaxed);
        self.checks_evaluated
            .fetch_add(checks.evaluated as u64, Ordering::Relaxed);
        self.latency.record_us(elapsed_us);
        if let Some(report) = spec {
            let attr = attribution.unwrap_or(&[]);
            let times = &outcome.check_times_ns;
            let mut cursor = 0usize;
            let mut rules = self.rules.lock().unwrap();
            for (i, decision) in report.decisions.iter().enumerate() {
                let n = attr.get(i).map(|(_, n)| *n).unwrap_or(0);
                let end = (cursor + n).min(times.len());
                let ns: u64 = times[cursor.min(times.len())..end].iter().sum();
                cursor += n;
                let m = rules.entry(decision.rule.clone()).or_default();
                match decision.outcome {
                    SpecOutcome::Dropped { .. } => m.skipped += 1,
                    SpecOutcome::Probe { .. } => {
                        m.probed += 1;
                        m.latency_ns += ns;
                    }
                    SpecOutcome::Generic => {
                        m.evaluated += 1;
                        m.latency_ns += ns;
                    }
                }
            }
        }
    }

    /// Record a deferred checkpoint failure surfaced by
    /// `Session::take_checkpoint_error` (or the engine directly).
    pub fn record_checkpoint_error(&self, message: String) {
        self.checkpoint_errors.fetch_add(1, Ordering::Relaxed);
        *self.last_checkpoint_error.lock().unwrap() = Some(message);
    }

    /// The most recent deferred checkpoint error, if any was recorded.
    pub fn last_checkpoint_error(&self) -> Option<String> {
        self.last_checkpoint_error.lock().unwrap().clone()
    }

    /// A copy of the per-rule attribution table.
    pub fn rules(&self) -> BTreeMap<String, RuleMetrics> {
        self.rules.lock().unwrap().clone()
    }
}

/// The server-wide metrics sink: one [`TenantMetrics`] per tenant plus
/// the process-wide counter baselines.
#[derive(Debug)]
pub struct ServerMetrics {
    tenants: RwLock<BTreeMap<String, Arc<TenantMetrics>>>,
    started: Instant,
    unshares_at_start: u64,
    wal_bytes_at_start: u64,
    wal_fsyncs_at_start: u64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Create a sink; process-wide counters are baselined here so the
    /// dump reports deltas since server start.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            tenants: RwLock::new(BTreeMap::new()),
            started: Instant::now(),
            unshares_at_start: tm_relational::unshare_count(),
            wal_bytes_at_start: tm_durable::wal_bytes_written(),
            wal_fsyncs_at_start: tm_durable::wal_fsyncs(),
        }
    }

    /// The per-tenant slice for `name`, created on first use.
    pub fn tenant(&self, name: &str) -> Arc<TenantMetrics> {
        if let Some(m) = self.tenants.read().unwrap().get(name) {
            return m.clone();
        }
        self.tenants
            .write()
            .unwrap()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Render the whole sink as plaintext, one `key value` pair per
    /// line. Stable key order (tenants and rules alphabetical), so the
    /// dump is diffable.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let uptime = self.started.elapsed();
        let _ = writeln!(out, "server.uptime_ms {}", uptime.as_millis());
        let _ = writeln!(
            out,
            "process.cow_unshares {}",
            tm_relational::unshare_count() - self.unshares_at_start
        );
        let _ = writeln!(
            out,
            "process.wal_bytes_written {}",
            tm_durable::wal_bytes_written() - self.wal_bytes_at_start
        );
        let _ = writeln!(
            out,
            "process.wal_fsyncs {}",
            tm_durable::wal_fsyncs() - self.wal_fsyncs_at_start
        );
        let tenants = self.tenants.read().unwrap();
        let secs = uptime.as_secs_f64().max(1e-9);
        for (name, m) in tenants.iter() {
            let k = |field: &str| format!("tenant.{name}.{field}");
            let committed = m.committed.load(Ordering::Relaxed);
            let _ = writeln!(out, "{} {}", k("tx_committed"), committed);
            let _ = writeln!(
                out,
                "{} {}",
                k("tx_aborted"),
                m.aborted.load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "{} {:.0}", k("tx_per_sec"), committed as f64 / secs);
            let _ = writeln!(
                out,
                "{} {}",
                k("busy_rejected"),
                m.busy_rejected.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "{} {}",
                k("tx_conflicts"),
                m.conflicts.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "{} {}",
                k("conflict_retries"),
                m.conflict_retries.load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "{} {}", k("errors"), m.errors.load(Ordering::Relaxed));
            let _ = writeln!(
                out,
                "{} {}",
                k("stmts_prepared"),
                m.prepared.load(Ordering::Relaxed)
            );
            let reused = m.plan_reused.load(Ordering::Relaxed);
            let remod = m.plan_remodified.load(Ordering::Relaxed);
            let _ = writeln!(out, "{} {}", k("plan_reused"), reused);
            let _ = writeln!(out, "{} {}", k("plan_remodified"), remod);
            let executions = m.latency.count();
            let reuse_rate = if executions == 0 {
                0.0
            } else {
                reused as f64 / executions as f64
            };
            let _ = writeln!(out, "{} {:.3}", k("plan_reuse_rate"), reuse_rate);
            let _ = writeln!(out, "{} {}", k("adhoc"), m.adhoc.load(Ordering::Relaxed));
            let _ = writeln!(
                out,
                "{} {}",
                k("checks_skipped"),
                m.checks_skipped.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "{} {}",
                k("checks_probed"),
                m.checks_probed.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "{} {}",
                k("checks_evaluated"),
                m.checks_evaluated.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "{} {}",
                k("latency_p50_us"),
                m.latency.quantile_us(0.5)
            );
            let _ = writeln!(
                out,
                "{} {}",
                k("latency_p99_us"),
                m.latency.quantile_us(0.99)
            );
            let _ = writeln!(out, "{} {}", k("latency_mean_us"), m.latency.mean_us());
            let _ = writeln!(
                out,
                "{} {}",
                k("checkpoint_errors"),
                m.checkpoint_errors.load(Ordering::Relaxed)
            );
            if let Some(msg) = m.last_checkpoint_error() {
                let _ = writeln!(
                    out,
                    "{} {}",
                    k("last_checkpoint_error"),
                    msg.replace('\n', " ")
                );
            }
            for (rule, rm) in m.rules() {
                let rk = |field: &str| format!("tenant.{name}.rule.{rule}.{field}");
                let _ = writeln!(out, "{} {}", rk("skipped"), rm.skipped);
                let _ = writeln!(out, "{} {}", rk("probed"), rm.probed);
                let _ = writeln!(out, "{} {}", rk("evaluated"), rm.evaluated);
                let _ = writeln!(out, "{} {}", rk("latency_us"), rm.latency_us());
            }
        }
        out
    }
}
