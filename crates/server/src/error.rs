//! Typed errors of the wire protocol and client.

use std::fmt;
use std::io;

use tm_relational::CodecError;

use crate::proto::ErrorCode;

/// Everything that can go wrong on a protocol connection. Corrupt or
/// malformed input is always reported through one of these variants —
/// never a panic, never a hung connection.
#[derive(Debug)]
pub enum ProtocolError {
    /// A socket-level I/O failure.
    Io(io::Error),
    /// The peer closed the connection mid-frame (a clean close at a
    /// frame boundary is not an error).
    UnexpectedEof {
        /// Bytes of the partial frame that did arrive.
        got: usize,
    },
    /// A frame header announced a payload longer than the protocol
    /// allows — almost certainly garbage bytes, not a frame.
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
    },
    /// The frame checksum did not match its payload: bit rot or a
    /// desynchronized stream.
    ChecksumMismatch {
        /// CRC-32 announced by the header.
        expected: u32,
        /// CRC-32 of the payload that arrived.
        actual: u32,
    },
    /// The payload arrived intact (checksum valid) but does not decode
    /// as a message: unknown tag, truncated field, trailing bytes.
    Codec(CodecError),
    /// The server answered with a typed error response.
    Remote {
        /// The machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server rejected the request under admission control; retry
    /// later. Carries the tenant's in-flight limit for context.
    Busy {
        /// The tenant's configured in-flight cap (0 when rejected by the
        /// token bucket instead).
        limit: u64,
    },
    /// The peer answered with a well-formed message that makes no sense
    /// in this state (e.g. a `Tx` response to a `Prepare` request).
    Unexpected {
        /// What arrived, rendered for the error message.
        got: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::UnexpectedEof { got } => {
                write!(f, "connection closed mid-frame ({got} byte(s) arrived)")
            }
            ProtocolError::FrameTooLarge { len } => {
                write!(f, "frame payload of {len} bytes exceeds the protocol limit")
            }
            ProtocolError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch (header says {expected:#010x}, payload hashes to {actual:#010x})"
            ),
            ProtocolError::Codec(e) => write!(f, "undecodable frame payload: {e}"),
            ProtocolError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ProtocolError::Busy { limit } => {
                write!(f, "server busy (admission control, in-flight cap {limit})")
            }
            ProtocolError::Unexpected { got } => {
                write!(f, "unexpected response: {got}")
            }
        }
    }
}

impl ProtocolError {
    /// Whether this error is a retryable serialization conflict
    /// ([`ErrorCode::Conflict`]): the execution lost first-committer-wins
    /// validation; re-issuing the request runs it on a fresh snapshot.
    pub fn is_conflict(&self) -> bool {
        matches!(
            self,
            ProtocolError::Remote {
                code: ErrorCode::Conflict,
                ..
            }
        )
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

/// Shorthand result type of the protocol layer.
pub type Result<T> = std::result::Result<T, ProtocolError>;
