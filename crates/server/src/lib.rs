#![warn(missing_docs)]

//! # `tm-server` — the service front-end
//!
//! The paper positions transaction modification as a *subsystem of a
//! DBMS*: ModT/ModP run inside a server fielding transactions from many
//! clients, not inside a single-threaded library. This crate promotes
//! the `txmod` engine into exactly that — a multi-tenant TCP service —
//! without leaving the standard library (no async runtime, no external
//! dependencies).
//!
//! * [`proto`] — the wire protocol: length-prefixed, CRC-32-checksummed
//!   frames (the `tm-durable` WAL framing discipline, applied to a
//!   socket) carrying the full prepared lifecycle: `Hello`, `Prepare`,
//!   `Execute`/`ExecuteMany`, `AdHoc`, `DefineRule`/`DefineConstraint`/
//!   `RemoveRule`, `Snapshot`, `Analyze`, `Stats`;
//! * [`tenant`] — multi-tenancy: a [`TenantRegistry`] mapping tenant
//!   ids to independent engines (own catalog, enforcement mode,
//!   durability), each wrapped in a `txmod::ConcurrentEngine`, with
//!   per-tenant [`Admission`] control (queue-depth cap plus optional
//!   token bucket; overload earns a typed `Busy`, never a stalled accept
//!   loop);
//! * [`server`] — the std-only TCP server: thread-per-connection with
//!   timeout-ticked reads, so shutdown is prompt and hang-free. Each
//!   connection runs a snapshot session of its tenant's engine:
//!   executions proceed concurrently and serialize only at the commit
//!   applier (first-committer-wins; losses surface as the typed,
//!   retryable [`ErrorCode::Conflict`], and batch bindings retry
//!   transparently) — see `docs/concurrency.md`;
//! * [`client`] — a blocking client speaking the same protocol;
//! * [`metrics`] — the metrics sink: atomic counters and log₂
//!   histograms for per-tenant throughput, plan reuse and
//!   re-modification, per-rule check verdicts and latency attribution,
//!   COW unshares, and WAL bytes/fsyncs, rendered as a plaintext dump
//!   by the `Stats` request;
//! * [`error`] — typed protocol errors: corrupt frames and malformed
//!   payloads are reported, never panicked on.
//!
//! See `docs/server.md` for the frame format, request taxonomy, tenancy
//! model, admission control, and the metrics glossary.

pub mod client;
pub mod error;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod tenant;

pub use client::{Client, PreparedStmt};
pub use error::ProtocolError;
pub use metrics::{Histogram, RuleMetrics, ServerMetrics, TenantMetrics};
pub use proto::{ErrorCode, Request, Response, TxReport, MAX_FRAME};
pub use server::{serve, ServerConfig, ServerHandle};
pub use tenant::{Admission, Tenant, TenantRegistry, TenantSpec};
