//! The wire protocol: message taxonomy and frame codec.
//!
//! ## Frame layout
//!
//! The framing reuses the `tm-durable` WAL discipline — length-prefixed,
//! CRC-32-checksummed:
//!
//! ```text
//! ┌─────────┬─────────┬──────────────────────────────┐
//! │ len u32 │ crc u32 │ payload = tag u8 ‖ fields    │
//! └─────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! `len` is the payload length (capped at [`MAX_FRAME`]); `crc` is CRC-32
//! (IEEE) over the payload. The payload is one message: a tag byte
//! followed by its fields in the `tm-relational` binary codec (the same
//! value/tuple encoding the WAL records use). Requests and responses use
//! disjoint tag ranges (`0x01..` vs `0x81..`) so a desynchronized peer is
//! detected immediately.
//!
//! ## Corruption contract
//!
//! Decoding is total: a truncated header, an oversized length, a checksum
//! mismatch, an unknown tag, a short payload, or trailing bytes each map
//! to a typed [`ProtocolError`] — never a panic, never an unbounded
//! allocation (lengths are validated against the remaining input before
//! any buffer is sized by them, via [`ByteReader::count`]).

use std::io::{Read, Write};

use tm_durable::crc32;
use tm_relational::codec::{put_str, put_u32, put_u64, put_value, ByteReader, CodecError};
use tm_relational::{Tuple, Value};

use crate::error::{ProtocolError, Result};

/// Hard cap on a frame payload, bytes. Large enough for a bulk snapshot,
/// small enough that garbage bytes read as a length cannot drive an
/// absurd allocation.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Bytes of the `len`+`crc` frame header.
pub const FRAME_HEADER: usize = 8;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session against a tenant. Must be the first request on a
    /// connection; everything else is rejected with
    /// [`ErrorCode::NeedHello`] until it succeeds.
    Hello {
        /// The tenant id to bind this connection to.
        tenant: String,
    },
    /// Prepare a transaction template (RA program text, `?N`
    /// placeholders allowed): one `ModT` run, retained server-side.
    Prepare {
        /// The template program text.
        template: String,
    },
    /// Bind values to a prepared statement and execute it once.
    Execute {
        /// Statement id from a [`Response::Prepared`].
        stmt_id: u32,
        /// One value per `?N` placeholder.
        params: Vec<Value>,
    },
    /// Bind and execute a prepared statement once per binding — the
    /// batch path that amortizes the wire round-trip over many
    /// transactions.
    ExecuteMany {
        /// Statement id from a [`Response::Prepared`].
        stmt_id: u32,
        /// One execution per element.
        bindings: Vec<Vec<Value>>,
    },
    /// Execute an ad-hoc transaction (RA program text, no placeholders,
    /// not retained).
    AdHoc {
        /// The program text.
        tx: String,
    },
    /// Add an integrity rule from RL text to the tenant's catalog.
    DefineRule {
        /// Catalog name for the rule.
        name: String,
        /// The RL rule text.
        text: String,
    },
    /// Declare a CL constraint (compiled to rules server-side).
    DefineConstraint {
        /// Catalog name for the constraint.
        name: String,
        /// The CL constraint text.
        cl: String,
    },
    /// Remove a rule or constraint by name.
    RemoveRule {
        /// The catalog name to remove.
        name: String,
    },
    /// Read a consistent snapshot of one relation.
    Snapshot {
        /// The relation name.
        relation: String,
    },
    /// Run the catalog static analysis and return its rendering.
    Analyze,
    /// Fetch the server metrics dump (includes tenant health: deferred
    /// checkpoint errors).
    Stats,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session is open.
    HelloOk {
        /// The tenant the connection is now bound to.
        tenant: String,
    },
    /// A template was prepared and retained.
    Prepared {
        /// Id to pass to `Execute`/`ExecuteMany`.
        stmt_id: u32,
        /// Number of `?N` placeholders the template declares.
        param_count: u32,
    },
    /// Outcome of one transaction execution.
    Tx(TxReport),
    /// Outcome summary of an `ExecuteMany` batch.
    Batch {
        /// Executions that committed.
        committed: u64,
        /// Executions that aborted (integrity violation or explicit).
        aborted: u64,
    },
    /// Generic success acknowledgement for catalog requests.
    Ack {
        /// Human-readable detail (e.g. `"rule removed"`).
        detail: String,
    },
    /// A relation snapshot.
    SnapshotData {
        /// The relation name.
        relation: String,
        /// Its tuples at the read point.
        tuples: Vec<Tuple>,
    },
    /// The catalog analysis rendering.
    Analysis {
        /// Plaintext report.
        text: String,
    },
    /// The metrics dump.
    StatsDump {
        /// Plaintext metrics, one `key value` pair per line.
        text: String,
    },
    /// The request was rejected by admission control — typed overload,
    /// not a timeout. Retry later.
    Busy {
        /// The tenant's in-flight cap (0 when the token bucket rejected).
        limit: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Outcome of a single transaction execution, as reported on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct TxReport {
    /// Whether the transaction committed.
    pub committed: bool,
    /// Whether the execution reused the prepared plan without
    /// re-modification (always `false` for ad-hoc transactions).
    pub reused_plan: bool,
    /// Rule checks skipped by specialization or triggering analysis.
    pub checks_skipped: u32,
    /// Rule checks reduced to point probes.
    pub checks_probed: u32,
    /// Rule checks evaluated generically.
    pub checks_evaluated: u32,
    /// Abort reason rendering; `None` on commit.
    pub abort: Option<String>,
}

/// Machine-readable error classes of [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request is well-formed but invalid in this state (e.g. a
    /// second `Hello`).
    BadRequest,
    /// `Hello` named a tenant the registry does not know.
    UnknownTenant,
    /// A work request arrived before a successful `Hello`.
    NeedHello,
    /// `Execute` named a statement id this tenant never prepared.
    UnknownStatement,
    /// The engine rejected the request (parse error, bind error,
    /// catalog conflict, …).
    Engine,
    /// The execution lost first-committer-wins validation to a
    /// transaction that committed after its snapshot (or to a concurrent
    /// catalog change). Retryable: re-issue the request and it runs on a
    /// fresh snapshot.
    Conflict,
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::NeedHello => "need-hello",
            ErrorCode::UnknownStatement => "unknown-statement",
            ErrorCode::Engine => "engine",
            ErrorCode::Conflict => "conflict",
        };
        f.write_str(s)
    }
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownTenant => 2,
            ErrorCode::NeedHello => 3,
            ErrorCode::UnknownStatement => 4,
            ErrorCode::Engine => 5,
            ErrorCode::Conflict => 6,
        }
    }

    fn from_byte(offset: usize, b: u8) -> std::result::Result<Self, CodecError> {
        Ok(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::UnknownTenant,
            3 => ErrorCode::NeedHello,
            4 => ErrorCode::UnknownStatement,
            5 => ErrorCode::Engine,
            6 => ErrorCode::Conflict,
            tag => return Err(CodecError::InvalidTag { offset, tag }),
        })
    }
}

const REQ_HELLO: u8 = 0x01;
const REQ_PREPARE: u8 = 0x02;
const REQ_EXECUTE: u8 = 0x03;
const REQ_EXECUTE_MANY: u8 = 0x04;
const REQ_ADHOC: u8 = 0x05;
const REQ_DEFINE_RULE: u8 = 0x06;
const REQ_DEFINE_CONSTRAINT: u8 = 0x07;
const REQ_REMOVE_RULE: u8 = 0x08;
const REQ_SNAPSHOT: u8 = 0x09;
const REQ_ANALYZE: u8 = 0x0a;
const REQ_STATS: u8 = 0x0b;

const RESP_HELLO_OK: u8 = 0x81;
const RESP_PREPARED: u8 = 0x82;
const RESP_TX: u8 = 0x83;
const RESP_BATCH: u8 = 0x84;
const RESP_ACK: u8 = 0x85;
const RESP_SNAPSHOT: u8 = 0x86;
const RESP_ANALYSIS: u8 = 0x87;
const RESP_STATS: u8 = 0x88;
const RESP_BUSY: u8 = 0x8e;
const RESP_ERROR: u8 = 0x8f;

fn put_params(out: &mut Vec<u8>, params: &[Value]) {
    put_u32(out, params.len() as u32);
    for v in params {
        put_value(out, v);
    }
}

fn read_params(r: &mut ByteReader<'_>) -> std::result::Result<Vec<Value>, CodecError> {
    // A value is at least one tag byte, so `count` can bound the
    // allocation against the remaining input.
    let n = r.count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.value()?);
    }
    Ok(out)
}

impl Request {
    /// Encode this request as a frame payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Hello { tenant } => {
                out.push(REQ_HELLO);
                put_str(out, tenant);
            }
            Request::Prepare { template } => {
                out.push(REQ_PREPARE);
                put_str(out, template);
            }
            Request::Execute { stmt_id, params } => {
                out.push(REQ_EXECUTE);
                put_u32(out, *stmt_id);
                put_params(out, params);
            }
            Request::ExecuteMany { stmt_id, bindings } => {
                out.push(REQ_EXECUTE_MANY);
                put_u32(out, *stmt_id);
                put_u32(out, bindings.len() as u32);
                for b in bindings {
                    put_params(out, b);
                }
            }
            Request::AdHoc { tx } => {
                out.push(REQ_ADHOC);
                put_str(out, tx);
            }
            Request::DefineRule { name, text } => {
                out.push(REQ_DEFINE_RULE);
                put_str(out, name);
                put_str(out, text);
            }
            Request::DefineConstraint { name, cl } => {
                out.push(REQ_DEFINE_CONSTRAINT);
                put_str(out, name);
                put_str(out, cl);
            }
            Request::RemoveRule { name } => {
                out.push(REQ_REMOVE_RULE);
                put_str(out, name);
            }
            Request::Snapshot { relation } => {
                out.push(REQ_SNAPSHOT);
                put_str(out, relation);
            }
            Request::Analyze => out.push(REQ_ANALYZE),
            Request::Stats => out.push(REQ_STATS),
        }
    }

    /// Decode a frame payload as a request. Total: every malformed input
    /// maps to a [`CodecError`]; the whole payload must be consumed.
    pub fn decode(buf: &[u8]) -> std::result::Result<Request, CodecError> {
        let mut r = ByteReader::new(buf);
        let tag = r.u8()?;
        let req = match tag {
            REQ_HELLO => Request::Hello { tenant: r.str()? },
            REQ_PREPARE => Request::Prepare { template: r.str()? },
            REQ_EXECUTE => Request::Execute {
                stmt_id: r.u32()?,
                params: read_params(&mut r)?,
            },
            REQ_EXECUTE_MANY => {
                let stmt_id = r.u32()?;
                // Each binding is at least a 4-byte count.
                let n = r.count(4)?;
                let mut bindings = Vec::with_capacity(n);
                for _ in 0..n {
                    bindings.push(read_params(&mut r)?);
                }
                Request::ExecuteMany { stmt_id, bindings }
            }
            REQ_ADHOC => Request::AdHoc { tx: r.str()? },
            REQ_DEFINE_RULE => Request::DefineRule {
                name: r.str()?,
                text: r.str()?,
            },
            REQ_DEFINE_CONSTRAINT => Request::DefineConstraint {
                name: r.str()?,
                cl: r.str()?,
            },
            REQ_REMOVE_RULE => Request::RemoveRule { name: r.str()? },
            REQ_SNAPSHOT => Request::Snapshot { relation: r.str()? },
            REQ_ANALYZE => Request::Analyze,
            REQ_STATS => Request::Stats,
            tag => {
                return Err(CodecError::InvalidTag {
                    offset: r.offset().saturating_sub(1),
                    tag,
                })
            }
        };
        r.expect_end()?;
        Ok(req)
    }
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

fn read_bool(r: &mut ByteReader<'_>) -> std::result::Result<bool, CodecError> {
    let offset = r.offset();
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        byte => Err(CodecError::InvalidBool { offset, byte }),
    }
}

impl TxReport {
    fn encode(&self, out: &mut Vec<u8>) {
        put_bool(out, self.committed);
        put_bool(out, self.reused_plan);
        put_u32(out, self.checks_skipped);
        put_u32(out, self.checks_probed);
        put_u32(out, self.checks_evaluated);
        match &self.abort {
            None => put_bool(out, false),
            Some(reason) => {
                put_bool(out, true);
                put_str(out, reason);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> std::result::Result<TxReport, CodecError> {
        let committed = read_bool(r)?;
        let reused_plan = read_bool(r)?;
        let checks_skipped = r.u32()?;
        let checks_probed = r.u32()?;
        let checks_evaluated = r.u32()?;
        let abort = if read_bool(r)? { Some(r.str()?) } else { None };
        Ok(TxReport {
            committed,
            reused_plan,
            checks_skipped,
            checks_probed,
            checks_evaluated,
            abort,
        })
    }
}

impl Response {
    /// Encode this response as a frame payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::HelloOk { tenant } => {
                out.push(RESP_HELLO_OK);
                put_str(out, tenant);
            }
            Response::Prepared {
                stmt_id,
                param_count,
            } => {
                out.push(RESP_PREPARED);
                put_u32(out, *stmt_id);
                put_u32(out, *param_count);
            }
            Response::Tx(report) => {
                out.push(RESP_TX);
                report.encode(out);
            }
            Response::Batch { committed, aborted } => {
                out.push(RESP_BATCH);
                put_u64(out, *committed);
                put_u64(out, *aborted);
            }
            Response::Ack { detail } => {
                out.push(RESP_ACK);
                put_str(out, detail);
            }
            Response::SnapshotData { relation, tuples } => {
                out.push(RESP_SNAPSHOT);
                put_str(out, relation);
                put_u32(out, tuples.len() as u32);
                for t in tuples {
                    tm_relational::codec::put_tuple(out, t);
                }
            }
            Response::Analysis { text } => {
                out.push(RESP_ANALYSIS);
                put_str(out, text);
            }
            Response::StatsDump { text } => {
                out.push(RESP_STATS);
                put_str(out, text);
            }
            Response::Busy { limit } => {
                out.push(RESP_BUSY);
                put_u64(out, *limit);
            }
            Response::Error { code, message } => {
                out.push(RESP_ERROR);
                out.push(code.to_byte());
                put_str(out, message);
            }
        }
    }

    /// Decode a frame payload as a response. Total, like
    /// [`Request::decode`].
    pub fn decode(buf: &[u8]) -> std::result::Result<Response, CodecError> {
        let mut r = ByteReader::new(buf);
        let tag = r.u8()?;
        let resp = match tag {
            RESP_HELLO_OK => Response::HelloOk { tenant: r.str()? },
            RESP_PREPARED => Response::Prepared {
                stmt_id: r.u32()?,
                param_count: r.u32()?,
            },
            RESP_TX => Response::Tx(TxReport::decode(&mut r)?),
            RESP_BATCH => Response::Batch {
                committed: r.u64()?,
                aborted: r.u64()?,
            },
            RESP_ACK => Response::Ack { detail: r.str()? },
            RESP_SNAPSHOT => {
                let relation = r.str()?;
                // A tuple is at least a 4-byte arity.
                let n = r.count(4)?;
                let mut tuples = Vec::with_capacity(n);
                for _ in 0..n {
                    tuples.push(r.tuple()?);
                }
                Response::SnapshotData { relation, tuples }
            }
            RESP_ANALYSIS => Response::Analysis { text: r.str()? },
            RESP_STATS => Response::StatsDump { text: r.str()? },
            RESP_BUSY => Response::Busy { limit: r.u64()? },
            RESP_ERROR => {
                let offset = r.offset();
                let code = ErrorCode::from_byte(offset, r.u8()?)?;
                Response::Error {
                    code,
                    message: r.str()?,
                }
            }
            tag => {
                return Err(CodecError::InvalidTag {
                    offset: r.offset().saturating_sub(1),
                    tag,
                })
            }
        };
        r.expect_end()?;
        Ok(resp)
    }
}

/// Frame a payload and write it to `w` (one `write_all`: header and
/// payload go out together).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(payload));
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    Ok(())
}

/// Encode and frame a request in one step.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<()> {
    let mut payload = Vec::new();
    req.encode(&mut payload);
    write_frame(w, &payload)
}

/// Encode and frame a response in one step.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<()> {
    let mut payload = Vec::new();
    resp.encode(&mut payload);
    write_frame(w, &payload)
}

/// Fill `buf[*got..]` from `r`, tolerating `Interrupted` and — so a
/// server thread with a read timeout can poll its stop flag — treating
/// `WouldBlock`/`TimedOut` as a tick: `stop` is consulted, and reading
/// resumes where it left off (partial bytes are never dropped).
///
/// Returns `Ok(true)` when the buffer is full, `Ok(false)` when `stop`
/// asked to give up before any byte of it arrived.
fn fill_interruptible(
    r: &mut impl Read,
    buf: &mut [u8],
    got: &mut usize,
    total_before: usize,
    stop: &mut dyn FnMut() -> bool,
) -> Result<bool> {
    while *got < buf.len() {
        match r.read(&mut buf[*got..]) {
            Ok(0) => {
                return if *got == 0 && total_before == 0 {
                    Ok(false) // clean close at a frame boundary
                } else {
                    Err(ProtocolError::UnexpectedEof {
                        got: total_before + *got,
                    })
                };
            }
            Ok(n) => *got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop() {
                    return if *got == 0 && total_before == 0 {
                        Ok(false) // idle at a boundary: quiet shutdown
                    } else {
                        Err(ProtocolError::UnexpectedEof {
                            got: total_before + *got,
                        })
                    };
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame payload from `r`, polling `stop` whenever a read
/// timeout elapses. Returns `Ok(None)` on a clean close at a frame
/// boundary, or when `stop` returns `true` while the connection is idle;
/// a close (or shutdown) mid-frame, an oversized length, and a checksum
/// mismatch are typed errors.
pub fn read_frame_interruptible(
    r: &mut impl Read,
    stop: &mut dyn FnMut() -> bool,
) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    let mut got = 0;
    if !fill_interruptible(r, &mut header, &mut got, 0, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len as usize];
    let mut read = 0;
    // `total_before` is non-zero, so a close or shutdown here is always
    // the mid-frame error, never a quiet `Ok(false)`.
    fill_interruptible(r, &mut payload, &mut read, FRAME_HEADER, stop)?;
    let actual = crc32(&payload);
    if actual != crc {
        return Err(ProtocolError::ChecksumMismatch {
            expected: crc,
            actual,
        });
    }
    Ok(Some(payload))
}

/// Read one frame payload from a blocking `r` (no timeout; see
/// [`read_frame_interruptible`] for the server-side variant). Returns
/// `Ok(None)` on a clean close at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    read_frame_interruptible(r, &mut || false)
}
