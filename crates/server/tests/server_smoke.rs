//! Server smoke: start on an ephemeral port, exercise one round-trip per
//! request kind, check the typed overload and error paths, shut down
//! cleanly.

use std::sync::Arc;

use tm_relational::{DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use tm_server::proto::{read_frame, write_frame, write_request, ErrorCode, Request, Response};
use tm_server::{serve, Client, ProtocolError, ServerConfig, TenantRegistry, TenantSpec};
use txmod::{EnforcementMode, Engine, EngineConfig};

fn account_engine(mode: EnforcementMode) -> Engine {
    let schema = DatabaseSchema::from_relations(vec![RelationSchema::of(
        "account",
        &[("id", ValueType::Int), ("balance", ValueType::Int)],
    )])
    .unwrap();
    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    );
    engine
        .define_constraint(
            "balance_non_negative",
            "forall x (x in account implies x.balance >= 0)",
        )
        .unwrap();
    engine
}

fn start() -> (tm_server::ServerHandle, std::net::SocketAddr) {
    let registry = Arc::new(TenantRegistry::new());
    registry.add(
        "acme",
        account_engine(EnforcementMode::Static),
        TenantSpec::default(),
    );
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();
    (handle, addr)
}

#[test]
fn every_request_kind_round_trips() {
    let (handle, addr) = start();
    let mut c = Client::connect(addr, "acme").unwrap();
    assert_eq!(c.tenant(), "acme");

    // Prepare / Execute / ExecuteMany.
    let stmt = c.prepare("insert(account, row(?0, ?1))").unwrap();
    assert_eq!(stmt.param_count, 2);
    let report = c
        .execute(stmt, vec![Value::Int(1), Value::Int(100)])
        .unwrap();
    assert!(report.committed && report.reused_plan);
    let violating = c
        .execute(stmt, vec![Value::Int(2), Value::Int(-5)])
        .unwrap();
    assert!(!violating.committed);
    assert!(violating.abort.is_some());
    let bindings: Vec<Vec<Value>> = (10..20)
        .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
        .collect();
    assert_eq!(c.execute_many(stmt, bindings).unwrap(), (10, 0));

    // AdHoc.
    let adhoc = c.ad_hoc("insert(account, {(99, 990)})").unwrap();
    assert!(adhoc.committed && !adhoc.reused_plan);

    // DefineConstraint goes stale-plan: the next execute re-modifies.
    c.define_constraint(
        "balance_capped",
        "forall x (x in account implies x.balance <= 100000)",
    )
    .unwrap();
    let refreshed = c
        .execute(stmt, vec![Value::Int(3), Value::Int(30)])
        .unwrap();
    assert!(refreshed.committed && !refreshed.reused_plan);

    // DefineRule / RemoveRule. Tenant-authored RL text that does not
    // parse is a typed engine error, not a dropped connection.
    c.define_rule(
        "huge_deposit_guard",
        "WHEN INS(account) IF NOT 1 = 1 THEN abort",
    )
    .unwrap();
    assert!(matches!(
        c.define_rule("broken", "this is not RL"),
        Err(ProtocolError::Remote {
            code: ErrorCode::Engine,
            ..
        })
    ));
    let removed = c.remove_rule("huge_deposit_guard").unwrap();
    assert!(removed.contains("removed"));
    let absent = c.remove_rule("huge_deposit_guard").unwrap();
    assert!(absent.contains("not present"));

    // Snapshot sees the committed rows.
    let tuples = c.snapshot("account").unwrap();
    assert!(tuples.contains(&Tuple::of((1i64, 100i64))));
    assert!(tuples.contains(&Tuple::of((99i64, 990i64))));
    assert_eq!(tuples.len(), 13);

    // Analyze renders the catalog analysis.
    let analysis = c.analyze().unwrap();
    assert!(!analysis.is_empty());

    // Stats carries the metrics dump with this tenant's counters.
    let stats = c.stats().unwrap();
    assert!(stats.contains("tenant.acme.tx_committed 13"));
    assert!(stats.contains("tenant.acme.tx_aborted 1"));
    assert!(stats.contains("tenant.acme.plan_remodified 1"));
    assert!(stats.contains("process.cow_unshares"));
    assert!(stats.contains("tenant.acme.rule.balance_non_negative"));

    handle.shutdown();
}

#[test]
fn unknown_tenant_and_missing_hello_are_typed_errors() {
    let (handle, addr) = start();
    assert!(matches!(
        Client::connect(addr, "nobody"),
        Err(ProtocolError::Remote {
            code: ErrorCode::UnknownTenant,
            ..
        })
    ));

    // A work request before Hello earns NeedHello on the same connection.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write_request(&mut stream, &Request::Stats).unwrap();
    let payload = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Error {
            code: ErrorCode::NeedHello,
            ..
        }
    ));
    handle.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_not_hangs() {
    let (handle, addr) = start();

    // An intact frame whose payload is garbage: typed BadRequest, and
    // the connection keeps serving.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &[0xff, 0x00, 0x99]).unwrap();
    let payload = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    write_request(
        &mut stream,
        &Request::Hello {
            tenant: "acme".into(),
        },
    )
    .unwrap();
    let payload = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::HelloOk { .. }
    ));

    // A corrupt frame (bad checksum): typed error back, then close.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut req = Vec::new();
    Request::Stats.encode(&mut req);
    let mut frame = Vec::new();
    frame.extend_from_slice(&(req.len() as u32).to_le_bytes());
    frame.extend_from_slice(&0xdead_beefu32.to_le_bytes()); // wrong crc
    frame.extend_from_slice(&req);
    use std::io::Write as _;
    stream.write_all(&frame).unwrap();
    let payload = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    // The server closed its end; the next read is a clean EOF.
    assert!(read_frame(&mut stream).unwrap().is_none());
    handle.shutdown();
}

#[test]
fn overload_returns_typed_busy() {
    let registry = Arc::new(TenantRegistry::new());
    registry.add(
        "tight",
        account_engine(EnforcementMode::Static),
        TenantSpec {
            max_inflight: 1,
            rate_per_sec: 1.0, // one request per second, burst 1
            burst: 1.0,
        },
    );
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr(), "tight").unwrap();
    // The burst token pays for the first request; the second is rejected
    // by the bucket with a typed Busy — not a timeout, not a stall.
    let first = c.request(&Request::Snapshot {
        relation: "account".into(),
    });
    assert!(matches!(first, Ok(Response::SnapshotData { .. })));
    let second = c.request(&Request::Snapshot {
        relation: "account".into(),
    });
    assert!(matches!(second, Ok(Response::Busy { .. })));
    let stats = c.stats().unwrap(); // Stats bypasses admission
    assert!(stats.contains("tenant.tight.busy_rejected 1"));
    handle.shutdown();
}

#[test]
fn shutdown_is_prompt_with_idle_connections() {
    let (handle, addr) = start();
    let _idle1 = Client::connect(addr, "acme").unwrap();
    let _idle2 = Client::connect(addr, "acme").unwrap();
    let t0 = std::time::Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(2),
        "shutdown must not wait on idle connections"
    );
}
