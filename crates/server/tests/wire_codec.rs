//! Property tests for the wire protocol codec: every request/response
//! frame round-trips exactly, and malformed, truncated, or bit-flipped
//! frames yield typed protocol errors — never a panic, never a hung
//! decode. (Mirrors `crates/relational/tests/codec_roundtrip.rs` for the
//! value layer underneath.)

use proptest::prelude::*;

use tm_relational::{Tuple, Value};
use tm_server::error::ProtocolError;
use tm_server::proto::{
    read_frame, write_request, write_response, ErrorCode, Request, Response, TxReport,
    FRAME_HEADER, MAX_FRAME,
};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (i64::MIN..=i64::MAX).prop_map(Value::Int),
        (0u64..=u64::MAX).prop_map(|bits| Value::double(f64::from_bits(bits))),
        "[a-z0-9 ]{0,12}".prop_map(Value::str),
        prop_oneof![Just(true), Just(false)].prop_map(Value::Bool),
    ]
}

fn params() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(value(), 0..5)
}

fn tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value(), 0..5).prop_map(Tuple::from_values)
}

fn name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,10}".prop_map(|s| s)
}

fn text() -> impl Strategy<Value = String> {
    // Program/rule text is opaque to the codec — any UTF-8 goes.
    "[ -~àß≤]{0,40}".prop_map(|s| s)
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        name().prop_map(|tenant| Request::Hello { tenant }),
        text().prop_map(|template| Request::Prepare { template }),
        (0u32..1000, params()).prop_map(|(stmt_id, params)| Request::Execute { stmt_id, params }),
        (0u32..1000, proptest::collection::vec(params(), 0..4))
            .prop_map(|(stmt_id, bindings)| Request::ExecuteMany { stmt_id, bindings }),
        text().prop_map(|tx| Request::AdHoc { tx }),
        (name(), text()).prop_map(|(name, text)| Request::DefineRule { name, text }),
        (name(), text()).prop_map(|(name, cl)| Request::DefineConstraint { name, cl }),
        name().prop_map(|name| Request::RemoveRule { name }),
        name().prop_map(|relation| Request::Snapshot { relation }),
        Just(Request::Analyze),
        Just(Request::Stats),
    ]
}

fn flag() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

fn tx_report() -> impl Strategy<Value = TxReport> {
    (
        flag(),
        flag(),
        0u32..100,
        0u32..100,
        0u32..100,
        proptest::option::of(text()),
    )
        .prop_map(
            |(committed, reused_plan, checks_skipped, checks_probed, checks_evaluated, abort)| {
                TxReport {
                    committed,
                    reused_plan,
                    checks_skipped,
                    checks_probed,
                    checks_evaluated,
                    abort,
                }
            },
        )
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::UnknownTenant),
        Just(ErrorCode::NeedHello),
        Just(ErrorCode::UnknownStatement),
        Just(ErrorCode::Engine),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        name().prop_map(|tenant| Response::HelloOk { tenant }),
        (0u32..1000, 0u32..16).prop_map(|(stmt_id, param_count)| Response::Prepared {
            stmt_id,
            param_count
        }),
        tx_report().prop_map(Response::Tx),
        (0u64..1 << 40, 0u64..1 << 40)
            .prop_map(|(committed, aborted)| Response::Batch { committed, aborted }),
        text().prop_map(|detail| Response::Ack { detail }),
        (name(), proptest::collection::vec(tuple(), 0..6))
            .prop_map(|(relation, tuples)| Response::SnapshotData { relation, tuples }),
        text().prop_map(|text| Response::Analysis { text }),
        text().prop_map(|text| Response::StatsDump { text }),
        (0u64..1 << 20).prop_map(|limit| Response::Busy { limit }),
        (error_code(), text()).prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request frame round-trips through a byte stream exactly.
    #[test]
    fn request_frames_round_trip(req in request()) {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut cursor = &wire[..];
        let payload = read_frame(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
        prop_assert!(cursor.is_empty(), "frame must consume exactly its bytes");
    }

    /// Every response frame round-trips through a byte stream exactly.
    #[test]
    fn response_frames_round_trip(resp in response()) {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let mut cursor = &wire[..];
        let payload = read_frame(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
        prop_assert!(cursor.is_empty());
    }

    /// Several frames on one stream arrive in order, and the stream ends
    /// with a clean `None`.
    #[test]
    fn frame_streams_preserve_order(reqs in proptest::collection::vec(request(), 1..5)) {
        let mut wire = Vec::new();
        for r in &reqs {
            write_request(&mut wire, r).unwrap();
        }
        let mut cursor = &wire[..];
        for r in &reqs {
            let payload = read_frame(&mut cursor).unwrap().expect("frame");
            prop_assert_eq!(&Request::decode(&payload).unwrap(), r);
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    /// Every proper prefix of a frame is a typed error (mid-frame close),
    /// except the empty prefix, which is a clean end-of-stream.
    #[test]
    fn truncated_frames_error_not_panic(req in request(), frac in 0u64..1000) {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let cut = (frac as usize * wire.len()) / 1000;
        let mut cursor = &wire[..cut];
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty prefix is a clean close"),
            Ok(Some(_)) => prop_assert!(false, "a proper prefix decoded as a whole frame"),
            Err(ProtocolError::UnexpectedEof { .. }) => {}
            Err(e) => prop_assert!(false, "wrong error kind: {e}"),
        }
    }

    /// A single flipped bit anywhere in a frame is always detected: in
    /// the payload (or the crc field) the checksum catches it; in the
    /// length field the frame either overruns the protocol cap, tears
    /// the stream, or mismatches the checksum. Never a panic, never a
    /// silently wrong message.
    #[test]
    fn bit_flips_are_detected(req in request(), pos in 0usize..4096, bit in 0u8..8) {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let pos = pos % wire.len();
        wire[pos] ^= 1 << bit;
        let mut cursor = &wire[..];
        match read_frame(&mut cursor) {
            Ok(Some(payload)) => {
                // The frame layer can only pass a flip through when the
                // length field shrank/grew onto another valid framing —
                // impossible with a single frame — or the flip cancelled
                // in the CRC, which CRC-32 excludes for single bits.
                prop_assert!(false, "flipped frame decoded: {:?}", Request::decode(&payload));
            }
            Ok(None) => prop_assert!(false, "flipped frame read as clean close"),
            Err(
                ProtocolError::ChecksumMismatch { .. }
                | ProtocolError::FrameTooLarge { .. }
                | ProtocolError::UnexpectedEof { .. },
            ) => {}
            Err(e) => prop_assert!(false, "wrong error kind: {e}"),
        }
    }

    /// Arbitrary payload bytes (framing intact, contents garbage) either
    /// decode to some message or yield a typed codec error — no panics,
    /// and whatever decodes re-encodes identically.
    #[test]
    fn arbitrary_payloads_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..96)) {
        if let Ok(req) = Request::decode(&bytes) {
            let mut re = Vec::new();
            req.encode(&mut re);
            prop_assert_eq!(Request::decode(&re).unwrap(), req);
        }
        if let Ok(resp) = Response::decode(&bytes) {
            let mut re = Vec::new();
            resp.encode(&mut re);
            prop_assert_eq!(Response::decode(&re).unwrap(), resp);
        }
    }

    /// Trailing bytes after a well-formed message are rejected — a
    /// desynchronized stream cannot smuggle a second message into one
    /// frame.
    #[test]
    fn trailing_bytes_rejected(req in request(), extra in 1usize..8) {
        let mut payload = Vec::new();
        req.encode(&mut payload);
        payload.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(Request::decode(&payload).is_err());
    }
}

/// A frame header announcing more than [`MAX_FRAME`] bytes is rejected
/// before any allocation is sized by it.
#[test]
fn oversized_length_is_rejected() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    wire.extend_from_slice(&0u32.to_le_bytes());
    let mut cursor = &wire[..];
    assert!(matches!(
        read_frame(&mut cursor),
        Err(ProtocolError::FrameTooLarge { .. })
    ));
    assert_eq!(wire.len(), FRAME_HEADER);
}

/// Request and response tags are disjoint: decoding a response payload
/// as a request (a desynchronized peer) is a typed error, not a
/// misparse.
#[test]
fn request_and_response_tags_are_disjoint() {
    let resp = Response::HelloOk { tenant: "t".into() };
    let mut payload = Vec::new();
    resp.encode(&mut payload);
    assert!(Request::decode(&payload).is_err());

    let req = Request::Hello { tenant: "t".into() };
    let mut payload = Vec::new();
    req.encode(&mut payload);
    assert!(Response::decode(&payload).is_err());
}
