//! Property tests: hash-based and nested-loop join execution produce
//! identical relations for randomized predicates mixing equality and
//! non-equality conjuncts — including `Null` join keys (which match each
//! other under the engine's two-valued logic) and empty build sides.
//!
//! The nested-loop path is the obviously-correct baseline; the hash path
//! (key extraction + bucket-and-verify probing) must be observationally
//! equivalent on every operator that takes a join predicate.

use proptest::prelude::*;

use tm_algebra::{evaluate_with, CmpOp, JoinStrategy, RelExpr, ScalarExpr};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, Value, ValueType};

/// A generated attribute value: `None` becomes `Null`.
type Cell = Option<i64>;

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Int)]),
        RelationSchema::of("s", &[("x", ValueType::Int), ("y", ValueType::Int)]),
    ])
    .unwrap()
}

fn value(c: Cell) -> Value {
    match c {
        None => Value::Null,
        Some(i) => Value::Int(i),
    }
}

fn db(r: &[(Cell, Cell)], s: &[(Cell, Cell)]) -> Database {
    let mut db = Database::new(schema().into_shared());
    for &(a, b) in r {
        db.insert("r", Tuple::from_values(vec![value(a), value(b)]))
            .unwrap();
    }
    for &(x, y) in s {
        db.insert("s", Tuple::from_values(vec![value(x), value(y)]))
            .unwrap();
    }
    db
}

/// Tuples over a small value range (plus Null) so joins actually match.
fn rel_strategy() -> impl Strategy<Value = Vec<(Cell, Cell)>> {
    prop::collection::vec(
        (prop::option::of(-2..4i64), prop::option::of(-2..4i64)),
        0..10,
    )
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

/// One conjunct of a join predicate over the concatenated 4-column tuple:
/// an extractable equi-join key, a cross-side non-equality, a constant
/// comparison, a same-side equality (residual), or a constant boolean.
fn conjunct() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        // Equi-join key pair: left col 0..2, right col 2..4.
        (0usize..2, 2usize..4).prop_map(|(l, r)| ScalarExpr::col_eq(l, r)),
        // Cross-side non-equality.
        (cmp_op(), 0usize..2, 2usize..4).prop_map(|(op, l, r)| ScalarExpr::cmp(
            op,
            ScalarExpr::col(l),
            ScalarExpr::col(r)
        )),
        // Column vs constant.
        (cmp_op(), 0usize..4, -2..4i64).prop_map(|(op, c, k)| ScalarExpr::cmp(
            op,
            ScalarExpr::col(c),
            ScalarExpr::int(k)
        )),
        // Same-side equality: classified as residual, not a key.
        Just(ScalarExpr::col_eq(0, 1)),
        Just(ScalarExpr::col_eq(2, 3)),
        Just(ScalarExpr::true_()),
    ]
}

fn predicate() -> impl Strategy<Value = ScalarExpr> {
    prop::collection::vec(conjunct(), 1..4).prop_map(|cs| {
        cs.into_iter()
            .reduce(ScalarExpr::and)
            .expect("at least one conjunct")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn join_strategies_agree(r in rel_strategy(), s in rel_strategy(), pred in predicate()) {
        let db = db(&r, &s);
        let e = RelExpr::relation("r").join(RelExpr::relation("s"), pred);
        let hash = evaluate_with(&e, &db, JoinStrategy::Hash).unwrap();
        let nested = evaluate_with(&e, &db, JoinStrategy::NestedLoop).unwrap();
        prop_assert_eq!(hash.sorted_tuples(), nested.sorted_tuples());
    }

    #[test]
    fn semi_join_strategies_agree(r in rel_strategy(), s in rel_strategy(), pred in predicate()) {
        let db = db(&r, &s);
        let e = RelExpr::relation("r").semi_join(RelExpr::relation("s"), pred);
        let hash = evaluate_with(&e, &db, JoinStrategy::Hash).unwrap();
        let nested = evaluate_with(&e, &db, JoinStrategy::NestedLoop).unwrap();
        prop_assert_eq!(hash.sorted_tuples(), nested.sorted_tuples());
    }

    #[test]
    fn anti_join_strategies_agree(r in rel_strategy(), s in rel_strategy(), pred in predicate()) {
        let db = db(&r, &s);
        let e = RelExpr::relation("r").anti_join(RelExpr::relation("s"), pred);
        let hash = evaluate_with(&e, &db, JoinStrategy::Hash).unwrap();
        let nested = evaluate_with(&e, &db, JoinStrategy::NestedLoop).unwrap();
        prop_assert_eq!(hash.sorted_tuples(), nested.sorted_tuples());
    }

    /// Semi ⊎ anti must partition the left input under both strategies.
    #[test]
    fn semi_anti_partition_left(r in rel_strategy(), s in rel_strategy(), pred in predicate()) {
        let db = db(&r, &s);
        for strategy in [JoinStrategy::Hash, JoinStrategy::NestedLoop] {
            let semi = evaluate_with(
                &RelExpr::relation("r").semi_join(RelExpr::relation("s"), pred.clone()),
                &db,
                strategy,
            )
            .unwrap();
            let anti = evaluate_with(
                &RelExpr::relation("r").anti_join(RelExpr::relation("s"), pred.clone()),
                &db,
                strategy,
            )
            .unwrap();
            let left = db.relation("r").unwrap();
            prop_assert_eq!(semi.len() + anti.len(), left.len());
            for t in semi.iter() {
                prop_assert!(left.contains(t) && !anti.contains(t));
            }
        }
    }
}

#[test]
fn null_keys_join_each_other() {
    // Two-valued logic: `Null = Null` is true, so Null keys pair up under
    // both strategies — pinned here explicitly, not just probabilistically.
    let r = [(None, Some(1))];
    let s = [(None, Some(2))];
    let db = db(&r, &s);
    let e = RelExpr::relation("r").join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2));
    let hash = evaluate_with(&e, &db, JoinStrategy::Hash).unwrap();
    let nested = evaluate_with(&e, &db, JoinStrategy::NestedLoop).unwrap();
    assert_eq!(hash.sorted_tuples(), nested.sorted_tuples());
    assert_eq!(hash.len(), 1);
}

#[test]
fn empty_build_sides_agree() {
    let r = [(Some(1), Some(2)), (Some(3), Some(4))];
    let db = db(&r, &[]);
    for e in [
        RelExpr::relation("r").join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
        RelExpr::relation("r").semi_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
        RelExpr::relation("r").anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
        RelExpr::relation("s").join(RelExpr::relation("r"), ScalarExpr::col_eq(0, 2)),
        RelExpr::relation("s").anti_join(RelExpr::relation("r"), ScalarExpr::col_eq(0, 2)),
    ] {
        let hash = evaluate_with(&e, &db, JoinStrategy::Hash).unwrap();
        let nested = evaluate_with(&e, &db, JoinStrategy::NestedLoop).unwrap();
        assert_eq!(hash.sorted_tuples(), nested.sorted_tuples(), "{e}");
    }
}
