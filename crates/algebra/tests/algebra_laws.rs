//! Property tests of the algebraic laws the translator and optimizer rely
//! on: set-operation identities, join/semi-join/anti-join relationships,
//! and select fusion — all over randomized relations and predicates.

use std::sync::Arc;

use proptest::prelude::*;

use tm_algebra::{evaluate, CmpOp, RelExpr, ScalarExpr};
use tm_relational::{Database, DatabaseSchema, Relation, RelationSchema, Tuple, ValueType};

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Int)]),
        RelationSchema::of("s", &[("c", ValueType::Int), ("d", ValueType::Int)]),
    ])
    .unwrap()
}

fn db(r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
    let mut db = Database::new(schema().into_shared());
    for &(a, b) in r {
        db.insert("r", Tuple::of((a, b))).unwrap();
    }
    for &(c, d) in s {
        db.insert("s", Tuple::of((c, d))).unwrap();
    }
    db
}

/// A random comparison predicate over a 2-column tuple.
fn pred2() -> impl Strategy<Value = ScalarExpr> {
    let op = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ];
    (op, 0usize..2, -3..4i64)
        .prop_map(|(op, col, k)| ScalarExpr::cmp(op, ScalarExpr::col(col), ScalarExpr::int(k)))
}

fn rel_pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((-3..4i64, -3..4i64), 0..12)
}

fn eq(a: &Relation, b: &Relation) -> bool {
    a.set_eq(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_commutes_intersect_distributes(r in rel_pairs(), s in rel_pairs()) {
        let d = db(&r, &s);
        let rr = RelExpr::relation("r");
        let ss = RelExpr::relation("s");
        let ab = evaluate(&rr.clone().union(ss.clone()), &d).unwrap();
        let ba = evaluate(&ss.clone().union(rr.clone()), &d).unwrap();
        prop_assert!(eq(&ab, &ba));
        let iab = evaluate(&rr.clone().intersect(ss.clone()), &d).unwrap();
        let iba = evaluate(&ss.intersect(rr), &d).unwrap();
        prop_assert!(eq(&iab, &iba));
    }

    #[test]
    fn difference_laws(r in rel_pairs(), s in rel_pairs()) {
        let d = db(&r, &s);
        let rr = RelExpr::relation("r");
        let ss = RelExpr::relation("s");
        // R − S = R − (R ∩ S)
        let lhs = evaluate(&rr.clone().difference(ss.clone()), &d).unwrap();
        let rhs = evaluate(
            &rr.clone().difference(rr.clone().intersect(ss.clone())),
            &d,
        )
        .unwrap();
        prop_assert!(eq(&lhs, &rhs));
        // (R − S) ∪ (R ∩ S) = R
        let back = evaluate(
            &rr.clone()
                .difference(ss.clone())
                .union(rr.clone().intersect(ss)),
            &d,
        )
        .unwrap();
        let r_all = evaluate(&rr, &d).unwrap();
        prop_assert!(eq(&back, &r_all));
    }

    #[test]
    fn semijoin_antijoin_partition(r in rel_pairs(), s in rel_pairs(), p in pred2()) {
        // For any join predicate over (r-tuple ++ s-tuple) columns —
        // shift the right side's columns.
        let d = db(&r, &s);
        let join_pred = ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::col(0),
            ScalarExpr::col(2),
        );
        let _ = p; // the partition law must hold for the equi-join too
        let rr = RelExpr::relation("r");
        let ss = RelExpr::relation("s");
        let semi = evaluate(&rr.clone().semi_join(ss.clone(), join_pred.clone()), &d).unwrap();
        let anti = evaluate(&rr.clone().anti_join(ss, join_pred), &d).unwrap();
        // Disjoint and exhaustive.
        for t in semi.iter() {
            prop_assert!(!anti.contains(t));
        }
        let r_all = evaluate(&rr, &d).unwrap();
        prop_assert_eq!(semi.len() + anti.len(), r_all.len());
    }

    #[test]
    fn select_fusion_equals_nested_select(r in rel_pairs(), p1 in pred2(), p2 in pred2()) {
        let d = db(&r, &[]);
        let nested = evaluate(
            &RelExpr::relation("r").select(p1.clone()).select(p2.clone()),
            &d,
        )
        .unwrap();
        let fused = evaluate(
            &RelExpr::relation("r").select(ScalarExpr::and(p1, p2)),
            &d,
        )
        .unwrap();
        prop_assert!(eq(&nested, &fused));
    }

    #[test]
    fn select_complement_partitions(r in rel_pairs(), p in pred2()) {
        let d = db(&r, &[]);
        let pos = evaluate(&RelExpr::relation("r").select(p.clone()), &d).unwrap();
        let neg = evaluate(
            &RelExpr::relation("r").select(ScalarExpr::not(p)),
            &d,
        )
        .unwrap();
        let all = evaluate(&RelExpr::relation("r"), &d).unwrap();
        prop_assert_eq!(pos.len() + neg.len(), all.len());
        for t in pos.iter() {
            prop_assert!(!neg.contains(t));
        }
    }

    #[test]
    fn join_equals_filtered_product(r in rel_pairs(), s in rel_pairs()) {
        let d = db(&r, &s);
        let pred = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(1), ScalarExpr::col(2));
        let join = evaluate(
            &RelExpr::relation("r").join(RelExpr::relation("s"), pred.clone()),
            &d,
        )
        .unwrap();
        let product = evaluate(
            &RelExpr::relation("r")
                .product(RelExpr::relation("s"))
                .select(pred),
            &d,
        )
        .unwrap();
        prop_assert!(eq(&join, &product));
    }

    #[test]
    fn projection_narrows_or_preserves(r in rel_pairs()) {
        let d = db(&r, &[]);
        let all = evaluate(&RelExpr::relation("r"), &d).unwrap();
        let proj = evaluate(&RelExpr::relation("r").project_cols(&[0]), &d).unwrap();
        prop_assert!(proj.len() <= all.len());
        // Every projected value stems from some source tuple.
        for t in proj.iter() {
            prop_assert!(all.iter().any(|src| src.get(0) == t.get(0)));
        }
    }

    #[test]
    fn count_aggregate_matches_len(r in rel_pairs()) {
        let d = db(&r, &[]);
        let cnt = evaluate(
            &RelExpr::Singleton(vec![ScalarExpr::Cnt(Box::new(RelExpr::relation("r")))]),
            &d,
        )
        .unwrap();
        let all = evaluate(&RelExpr::relation("r"), &d).unwrap();
        let t = cnt.sorted_tuples();
        prop_assert_eq!(t[0].get(0).unwrap().as_int().unwrap(), all.len() as i64);
    }
}

#[test]
fn semijoin_is_join_projected() {
    let d = db(&[(1, 1), (2, 2), (3, 3)], &[(1, 9), (1, 8), (3, 7)]);
    let pred = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::col(2));
    let semi = evaluate(
        &RelExpr::relation("r").semi_join(RelExpr::relation("s"), pred.clone()),
        &d,
    )
    .unwrap();
    // π_{r-cols}(r ⋈ s) with duplicate elimination = semijoin.
    let join_proj = evaluate(
        &RelExpr::relation("r")
            .join(RelExpr::relation("s"), pred)
            .project_cols(&[0, 1]),
        &d,
    )
    .unwrap();
    assert!(semi.set_eq(&join_proj));
    assert_eq!(semi.len(), 2);
}

#[test]
fn schema_mismatch_detected_not_panicking() {
    let d = db(&[(1, 1)], &[(1, 1)]);
    // Arity mismatch through projection: r(2 cols) ∪ π0(s) (1 col).
    let e = RelExpr::relation("r").union(RelExpr::relation("s").project_cols(&[0]));
    assert!(evaluate(&e, &d).is_err());
    let _ = Arc::new(()); // silence unused import lint paranoia
}
