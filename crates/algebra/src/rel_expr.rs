//! Relational expressions of the extended algebra.

use std::fmt;

use tm_relational::{Tuple, Value};

use crate::expr::{max_opt, ScalarExpr};

/// A relational algebra expression producing a relation state.
///
/// The operator set covers what Section 5.2.2 and Table 1 of the paper
/// need: selection `σ`, projection `π` (generalised: computed expressions),
/// theta join `⋈`, semi-join `⋉`, anti-join `▷`, the set operations, the
/// cartesian product, literal relations, and singleton relations whose
/// single tuple is computed from scalar (possibly aggregate) expressions —
/// the vehicle for Table 1's `AGGR(R, i)` and `CNT(R)` rows.
#[derive(Debug, Clone, PartialEq)]
pub enum RelExpr {
    /// A named relation: base relation, temporary, or auxiliary
    /// (`R@pre`, `R@ins`, `R@del`).
    Rel(String),
    /// A literal relation given by explicit tuples (used for inserts of
    /// constant tuples, e.g. the transaction of Example 5.1).
    Literal(Vec<Tuple>),
    /// A one-tuple relation whose values are computed by scalar
    /// expressions evaluated over the empty tuple; expressions may contain
    /// aggregates (`Singleton([CNT(R)])` is the paper's `CNT(R)` relation).
    Singleton(Vec<ScalarExpr>),
    /// Selection `σ_pred(E)`.
    Select(Box<RelExpr>, ScalarExpr),
    /// Generalised projection `π_exprs(E)`; plain column projection uses
    /// `Col` expressions.
    Project(Box<RelExpr>, Vec<ScalarExpr>),
    /// Theta join `E1 ⋈_pred E2`; the predicate sees the concatenated
    /// tuple (left columns first).
    Join(Box<RelExpr>, Box<RelExpr>, ScalarExpr),
    /// Semi-join `E1 ⋉_pred E2`: left tuples with at least one match.
    SemiJoin(Box<RelExpr>, Box<RelExpr>, ScalarExpr),
    /// Anti-join `E1 ▷_pred E2`: left tuples with no match.
    AntiJoin(Box<RelExpr>, Box<RelExpr>, ScalarExpr),
    /// Set union `E1 ∪ E2` (operands must be union-compatible).
    Union(Box<RelExpr>, Box<RelExpr>),
    /// Set difference `E1 − E2`.
    Difference(Box<RelExpr>, Box<RelExpr>),
    /// Set intersection `E1 ∩ E2`.
    Intersect(Box<RelExpr>, Box<RelExpr>),
    /// Cartesian product `E1 × E2`.
    Product(Box<RelExpr>, Box<RelExpr>),
}

impl RelExpr {
    /// Reference a relation by name.
    pub fn relation(name: impl Into<String>) -> RelExpr {
        RelExpr::Rel(name.into())
    }

    /// Selection.
    pub fn select(self, pred: ScalarExpr) -> RelExpr {
        RelExpr::Select(Box::new(self), pred)
    }

    /// Generalised projection.
    pub fn project(self, exprs: Vec<ScalarExpr>) -> RelExpr {
        RelExpr::Project(Box::new(self), exprs)
    }

    /// Column projection onto zero-based positions.
    pub fn project_cols(self, cols: &[usize]) -> RelExpr {
        RelExpr::Project(
            Box::new(self),
            cols.iter().map(|&c| ScalarExpr::Col(c)).collect(),
        )
    }

    /// Theta join.
    pub fn join(self, right: RelExpr, pred: ScalarExpr) -> RelExpr {
        RelExpr::Join(Box::new(self), Box::new(right), pred)
    }

    /// Semi-join.
    pub fn semi_join(self, right: RelExpr, pred: ScalarExpr) -> RelExpr {
        RelExpr::SemiJoin(Box::new(self), Box::new(right), pred)
    }

    /// Anti-join.
    pub fn anti_join(self, right: RelExpr, pred: ScalarExpr) -> RelExpr {
        RelExpr::AntiJoin(Box::new(self), Box::new(right), pred)
    }

    /// Set union.
    pub fn union(self, right: RelExpr) -> RelExpr {
        RelExpr::Union(Box::new(self), Box::new(right))
    }

    /// Set difference.
    pub fn difference(self, right: RelExpr) -> RelExpr {
        RelExpr::Difference(Box::new(self), Box::new(right))
    }

    /// Set intersection.
    pub fn intersect(self, right: RelExpr) -> RelExpr {
        RelExpr::Intersect(Box::new(self), Box::new(right))
    }

    /// Cartesian product.
    pub fn product(self, right: RelExpr) -> RelExpr {
        RelExpr::Product(Box::new(self), Box::new(right))
    }

    /// All relation names referenced anywhere in the expression, including
    /// inside aggregate subexpressions (deterministic order, duplicates
    /// removed). Used by trigger analysis and the triggering graph.
    pub fn referenced_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out.dedup();
        let mut seen = std::collections::HashSet::new();
        out.retain(|n| seen.insert(n.clone()));
        out
    }

    fn collect_relations(&self, out: &mut Vec<String>) {
        match self {
            RelExpr::Rel(name) => out.push(name.clone()),
            RelExpr::Literal(_) => {}
            RelExpr::Singleton(exprs) => {
                for e in exprs {
                    collect_scalar_relations(e, out);
                }
            }
            RelExpr::Select(input, pred) => {
                input.collect_relations(out);
                collect_scalar_relations(pred, out);
            }
            RelExpr::Project(input, exprs) => {
                input.collect_relations(out);
                for e in exprs {
                    collect_scalar_relations(e, out);
                }
            }
            RelExpr::Join(l, r, pred)
            | RelExpr::SemiJoin(l, r, pred)
            | RelExpr::AntiJoin(l, r, pred) => {
                l.collect_relations(out);
                r.collect_relations(out);
                collect_scalar_relations(pred, out);
            }
            RelExpr::Union(l, r)
            | RelExpr::Difference(l, r)
            | RelExpr::Intersect(l, r)
            | RelExpr::Product(l, r) => {
                l.collect_relations(out);
                r.collect_relations(out);
            }
        }
    }

    /// Substitute every reference to relation `from` with a reference to
    /// relation `to` (including inside aggregates). The differential
    /// optimizer uses this to retarget checks at delta relations.
    pub fn substitute_relation(&self, from: &str, to: &str) -> RelExpr {
        match self {
            RelExpr::Rel(name) => {
                if name == from {
                    RelExpr::Rel(to.to_owned())
                } else {
                    self.clone()
                }
            }
            RelExpr::Literal(_) => self.clone(),
            RelExpr::Singleton(exprs) => RelExpr::Singleton(
                exprs
                    .iter()
                    .map(|e| substitute_scalar(e, from, to))
                    .collect(),
            ),
            RelExpr::Select(input, pred) => RelExpr::Select(
                Box::new(input.substitute_relation(from, to)),
                substitute_scalar(pred, from, to),
            ),
            RelExpr::Project(input, exprs) => RelExpr::Project(
                Box::new(input.substitute_relation(from, to)),
                exprs
                    .iter()
                    .map(|e| substitute_scalar(e, from, to))
                    .collect(),
            ),
            RelExpr::Join(l, r, p) => RelExpr::Join(
                Box::new(l.substitute_relation(from, to)),
                Box::new(r.substitute_relation(from, to)),
                substitute_scalar(p, from, to),
            ),
            RelExpr::SemiJoin(l, r, p) => RelExpr::SemiJoin(
                Box::new(l.substitute_relation(from, to)),
                Box::new(r.substitute_relation(from, to)),
                substitute_scalar(p, from, to),
            ),
            RelExpr::AntiJoin(l, r, p) => RelExpr::AntiJoin(
                Box::new(l.substitute_relation(from, to)),
                Box::new(r.substitute_relation(from, to)),
                substitute_scalar(p, from, to),
            ),
            RelExpr::Union(l, r) => RelExpr::Union(
                Box::new(l.substitute_relation(from, to)),
                Box::new(r.substitute_relation(from, to)),
            ),
            RelExpr::Difference(l, r) => RelExpr::Difference(
                Box::new(l.substitute_relation(from, to)),
                Box::new(r.substitute_relation(from, to)),
            ),
            RelExpr::Intersect(l, r) => RelExpr::Intersect(
                Box::new(l.substitute_relation(from, to)),
                Box::new(r.substitute_relation(from, to)),
            ),
            RelExpr::Product(l, r) => RelExpr::Product(
                Box::new(l.substitute_relation(from, to)),
                Box::new(r.substitute_relation(from, to)),
            ),
        }
    }
}

impl ScalarExpr {
    /// All relation names referenced by aggregate/count subexpressions of
    /// this scalar expression (deterministic order, duplicates removed) —
    /// the scalar-level counterpart of [`RelExpr::referenced_relations`].
    /// The executor uses it to discover which differential relations a
    /// statement's predicates can read.
    pub fn referenced_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_scalar_relations(self, &mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|n| seen.insert(n.clone()));
        out
    }
}

fn collect_scalar_relations(e: &ScalarExpr, out: &mut Vec<String>) {
    match e {
        ScalarExpr::Agg(_, rel, _) => rel.collect_relations(out),
        ScalarExpr::Cnt(rel) => rel.collect_relations(out),
        ScalarExpr::Arith(_, l, r) | ScalarExpr::Cmp(_, l, r) => {
            collect_scalar_relations(l, out);
            collect_scalar_relations(r, out);
        }
        ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
            collect_scalar_relations(l, out);
            collect_scalar_relations(r, out);
        }
        ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => collect_scalar_relations(x, out),
        ScalarExpr::Const(_) | ScalarExpr::Param(_) | ScalarExpr::Col(_) => {}
    }
}

fn substitute_scalar(e: &ScalarExpr, from: &str, to: &str) -> ScalarExpr {
    match e {
        ScalarExpr::Agg(f, rel, col) => {
            ScalarExpr::Agg(*f, Box::new(rel.substitute_relation(from, to)), *col)
        }
        ScalarExpr::Cnt(rel) => ScalarExpr::Cnt(Box::new(rel.substitute_relation(from, to))),
        ScalarExpr::Arith(op, l, r) => ScalarExpr::arith(
            *op,
            substitute_scalar(l, from, to),
            substitute_scalar(r, from, to),
        ),
        ScalarExpr::Cmp(op, l, r) => ScalarExpr::cmp(
            *op,
            substitute_scalar(l, from, to),
            substitute_scalar(r, from, to),
        ),
        ScalarExpr::And(l, r) => ScalarExpr::and(
            substitute_scalar(l, from, to),
            substitute_scalar(r, from, to),
        ),
        ScalarExpr::Or(l, r) => ScalarExpr::or(
            substitute_scalar(l, from, to),
            substitute_scalar(r, from, to),
        ),
        ScalarExpr::Not(x) => ScalarExpr::not(substitute_scalar(x, from, to)),
        ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Box::new(substitute_scalar(x, from, to))),
        ScalarExpr::Const(_) | ScalarExpr::Param(_) | ScalarExpr::Col(_) => e.clone(),
    }
}

impl ScalarExpr {
    /// The largest parameter index `?i` referenced anywhere in this
    /// expression, including inside aggregate subexpressions, or `None`
    /// when the expression is parameter-free.
    pub fn max_param(&self) -> Option<usize> {
        match self {
            ScalarExpr::Param(i) => Some(*i),
            ScalarExpr::Const(_) | ScalarExpr::Col(_) => None,
            ScalarExpr::Arith(_, l, r) | ScalarExpr::Cmp(_, l, r) => {
                max_opt(l.max_param(), r.max_param())
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => max_opt(l.max_param(), r.max_param()),
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.max_param(),
            ScalarExpr::Agg(_, rel, _) => rel.max_param(),
            ScalarExpr::Cnt(rel) => rel.max_param(),
        }
    }

    /// Substitute every placeholder `?i` with the constant `values[i]`.
    /// Placeholders beyond `values.len()` are left in place (callers that
    /// need an error for them check [`ScalarExpr::max_param`] first).
    pub fn bind_params(&self, values: &[Value]) -> ScalarExpr {
        match self {
            ScalarExpr::Param(i) => match values.get(*i) {
                Some(v) => ScalarExpr::Const(v.clone()),
                None => self.clone(),
            },
            ScalarExpr::Const(_) | ScalarExpr::Col(_) => self.clone(),
            ScalarExpr::Arith(op, l, r) => {
                ScalarExpr::arith(*op, l.bind_params(values), r.bind_params(values))
            }
            ScalarExpr::Cmp(op, l, r) => {
                ScalarExpr::cmp(*op, l.bind_params(values), r.bind_params(values))
            }
            ScalarExpr::And(l, r) => ScalarExpr::and(l.bind_params(values), r.bind_params(values)),
            ScalarExpr::Or(l, r) => ScalarExpr::or(l.bind_params(values), r.bind_params(values)),
            ScalarExpr::Not(e) => ScalarExpr::not(e.bind_params(values)),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.bind_params(values))),
            ScalarExpr::Agg(f, rel, col) => {
                ScalarExpr::Agg(*f, Box::new(rel.bind_params(values)), *col)
            }
            ScalarExpr::Cnt(rel) => ScalarExpr::Cnt(Box::new(rel.bind_params(values))),
        }
    }
}

impl RelExpr {
    /// The largest parameter index `?i` referenced anywhere in this
    /// expression, or `None` when it is parameter-free.
    pub fn max_param(&self) -> Option<usize> {
        match self {
            RelExpr::Rel(_) | RelExpr::Literal(_) => None,
            RelExpr::Singleton(exprs) => exprs.iter().fold(None, |m, e| max_opt(m, e.max_param())),
            RelExpr::Select(input, pred) => max_opt(input.max_param(), pred.max_param()),
            RelExpr::Project(input, exprs) => exprs
                .iter()
                .fold(input.max_param(), |m, e| max_opt(m, e.max_param())),
            RelExpr::Join(l, r, p) | RelExpr::SemiJoin(l, r, p) | RelExpr::AntiJoin(l, r, p) => {
                max_opt(max_opt(l.max_param(), r.max_param()), p.max_param())
            }
            RelExpr::Union(l, r)
            | RelExpr::Difference(l, r)
            | RelExpr::Intersect(l, r)
            | RelExpr::Product(l, r) => max_opt(l.max_param(), r.max_param()),
        }
    }

    /// Substitute every placeholder `?i` with the constant `values[i]`
    /// (see [`ScalarExpr::bind_params`]).
    pub fn bind_params(&self, values: &[Value]) -> RelExpr {
        if self.max_param().is_none() {
            // Parameter-free subtrees are cloned wholesale — the common
            // case for the integrity checks appended by `ModT`.
            return self.clone();
        }
        match self {
            RelExpr::Rel(_) | RelExpr::Literal(_) => self.clone(),
            RelExpr::Singleton(exprs) => {
                RelExpr::Singleton(exprs.iter().map(|e| e.bind_params(values)).collect())
            }
            RelExpr::Select(input, pred) => RelExpr::Select(
                Box::new(input.bind_params(values)),
                pred.bind_params(values),
            ),
            RelExpr::Project(input, exprs) => RelExpr::Project(
                Box::new(input.bind_params(values)),
                exprs.iter().map(|e| e.bind_params(values)).collect(),
            ),
            RelExpr::Join(l, r, p) => RelExpr::Join(
                Box::new(l.bind_params(values)),
                Box::new(r.bind_params(values)),
                p.bind_params(values),
            ),
            RelExpr::SemiJoin(l, r, p) => RelExpr::SemiJoin(
                Box::new(l.bind_params(values)),
                Box::new(r.bind_params(values)),
                p.bind_params(values),
            ),
            RelExpr::AntiJoin(l, r, p) => RelExpr::AntiJoin(
                Box::new(l.bind_params(values)),
                Box::new(r.bind_params(values)),
                p.bind_params(values),
            ),
            RelExpr::Union(l, r) => RelExpr::Union(
                Box::new(l.bind_params(values)),
                Box::new(r.bind_params(values)),
            ),
            RelExpr::Difference(l, r) => RelExpr::Difference(
                Box::new(l.bind_params(values)),
                Box::new(r.bind_params(values)),
            ),
            RelExpr::Intersect(l, r) => RelExpr::Intersect(
                Box::new(l.bind_params(values)),
                Box::new(r.bind_params(values)),
            ),
            RelExpr::Product(l, r) => RelExpr::Product(
                Box::new(l.bind_params(values)),
                Box::new(r.bind_params(values)),
            ),
        }
    }
}

impl fmt::Display for RelExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelExpr::Rel(name) => write!(f, "{name}"),
            RelExpr::Literal(tuples) => {
                write!(f, "{{")?;
                for (i, t) in tuples.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
            RelExpr::Singleton(exprs) => {
                write!(f, "row(")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            RelExpr::Select(input, pred) => write!(f, "select[{pred}]({input})"),
            RelExpr::Project(input, exprs) => {
                write!(f, "project[")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]({input})")
            }
            RelExpr::Join(l, r, p) => write!(f, "join[{p}]({l}, {r})"),
            RelExpr::SemiJoin(l, r, p) => write!(f, "semijoin[{p}]({l}, {r})"),
            RelExpr::AntiJoin(l, r, p) => write!(f, "antijoin[{p}]({l}, {r})"),
            RelExpr::Union(l, r) => write!(f, "({l} union {r})"),
            RelExpr::Difference(l, r) => write!(f, "({l} minus {r})"),
            RelExpr::Intersect(l, r) => write!(f, "({l} intersect {r})"),
            RelExpr::Product(l, r) => write!(f, "({l} times {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn builders_compose() {
        let e = RelExpr::relation("beer")
            .select(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(3),
                ScalarExpr::double(0.0),
            ))
            .project_cols(&[0]);
        assert_eq!(e.to_string(), "project[#0](select[(#3 < 0)](beer))");
    }

    #[test]
    fn referenced_relations_deduplicated_and_deep() {
        let e = RelExpr::relation("a")
            .join(RelExpr::relation("b"), ScalarExpr::col_eq(0, 1))
            .union(RelExpr::relation("a"))
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::Cnt(Box::new(RelExpr::relation("c"))),
                ScalarExpr::int(0),
            ));
        assert_eq!(e.referenced_relations(), vec!["a", "b", "c"]);
    }

    #[test]
    fn substitution_reaches_aggregates() {
        let e = RelExpr::Singleton(vec![ScalarExpr::Cnt(Box::new(RelExpr::relation("r")))])
            .union(RelExpr::relation("r"));
        let s = e.substitute_relation("r", "r@ins");
        assert_eq!(s.referenced_relations(), vec!["r@ins"]);
        // Original untouched.
        assert_eq!(e.referenced_relations(), vec!["r"]);
    }

    #[test]
    fn max_param_reaches_aggregates() {
        let e = RelExpr::relation("r")
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::Cnt(Box::new(RelExpr::relation("s").select(ScalarExpr::cmp(
                    CmpOp::Eq,
                    ScalarExpr::col(0),
                    ScalarExpr::param(3),
                )))),
                ScalarExpr::param(1),
            ))
            .union(RelExpr::Singleton(vec![ScalarExpr::param(0)]));
        assert_eq!(e.max_param(), Some(3));
        assert_eq!(RelExpr::relation("r").max_param(), None);
    }

    #[test]
    fn bind_params_substitutes_and_preserves_param_free_subtrees() {
        use tm_relational::Value;
        let e = RelExpr::Singleton(vec![ScalarExpr::param(0), ScalarExpr::int(7)]);
        let bound = e.bind_params(&[Value::str("x")]);
        assert_eq!(
            bound,
            RelExpr::Singleton(vec![ScalarExpr::str("x"), ScalarExpr::int(7)])
        );
        assert_eq!(bound.max_param(), None);
        // A short binding leaves later placeholders in place.
        let e = RelExpr::Singleton(vec![ScalarExpr::param(0), ScalarExpr::param(5)]);
        let partial = e.bind_params(&[Value::Int(1)]);
        assert_eq!(partial.max_param(), Some(5));
    }

    #[test]
    fn display_literals() {
        let e = RelExpr::Literal(vec![Tuple::of((1, "x"))]);
        assert_eq!(e.to_string(), "{(1, \"x\")}");
        let s = RelExpr::Singleton(vec![ScalarExpr::int(5)]);
        assert_eq!(s.to_string(), "row(5)");
    }
}
