//! Ergonomic construction of programs and transactions.
//!
//! The paper writes transactions as
//! `⟨ insert(beer, (…)); alarm(σ…beer); … ⟩`; this module provides a fluent
//! builder producing the same ASTs without manual boxing:
//!
//! ```
//! use tm_algebra::builder::TransactionBuilder;
//! use tm_algebra::{RelExpr, ScalarExpr, CmpOp};
//! use tm_relational::Tuple;
//!
//! let tx = TransactionBuilder::new()
//!     .insert_tuple("beer", Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)))
//!     .alarm(RelExpr::relation("beer").select(ScalarExpr::cmp(
//!         CmpOp::Lt,
//!         ScalarExpr::col(3),
//!         ScalarExpr::double(0.0),
//!     )))
//!     .build();
//! assert_eq!(tx.len(), 2);
//! ```

use tm_relational::Tuple;

use crate::expr::ScalarExpr;
use crate::program::{Program, Statement, Transaction, UpdateAssignment};
use crate::rel_expr::RelExpr;

/// Fluent builder for [`Transaction`]s.
#[derive(Debug, Default, Clone)]
pub struct TransactionBuilder {
    statements: Vec<Statement>,
}

impl TransactionBuilder {
    /// Start an empty transaction.
    pub fn new() -> Self {
        TransactionBuilder::default()
    }

    /// Append `target := expr`.
    pub fn assign(mut self, target: impl Into<String>, expr: RelExpr) -> Self {
        self.statements.push(Statement::Assign {
            target: target.into(),
            expr,
        });
        self
    }

    /// Append `insert(relation, source)`.
    pub fn insert(mut self, relation: impl Into<String>, source: RelExpr) -> Self {
        self.statements.push(Statement::Insert {
            relation: relation.into(),
            source,
        });
        self
    }

    /// Append an insert of a single literal tuple.
    pub fn insert_tuple(self, relation: impl Into<String>, tuple: Tuple) -> Self {
        self.insert(relation, RelExpr::Literal(vec![tuple]))
    }

    /// Append an insert of several literal tuples.
    pub fn insert_tuples(self, relation: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        self.insert(relation, RelExpr::Literal(tuples))
    }

    /// Append an insert of one computed row — the parameterized
    /// tuple-literal form: `insert(R, row(e0, e1, …))`. Expressions may
    /// contain parameter placeholders (`ScalarExpr::param`).
    pub fn insert_row(self, relation: impl Into<String>, exprs: Vec<ScalarExpr>) -> Self {
        self.insert(relation, RelExpr::Singleton(exprs))
    }

    /// Append an insert of the fully parameterized row
    /// `row(?0, …, ?(arity-1))` — the template of a prepared single-row
    /// insert.
    pub fn insert_params(self, relation: impl Into<String>, arity: usize) -> Self {
        self.insert_row(relation, ScalarExpr::params(arity))
    }

    /// Append `delete(relation, source)`.
    pub fn delete(mut self, relation: impl Into<String>, source: RelExpr) -> Self {
        self.statements.push(Statement::Delete {
            relation: relation.into(),
            source,
        });
        self
    }

    /// Append a delete of a single literal tuple.
    pub fn delete_tuple(self, relation: impl Into<String>, tuple: Tuple) -> Self {
        self.delete(relation, RelExpr::Literal(vec![tuple]))
    }

    /// Append a delete of one computed row (the parameterized counterpart
    /// of [`TransactionBuilder::delete_tuple`]).
    pub fn delete_row(self, relation: impl Into<String>, exprs: Vec<ScalarExpr>) -> Self {
        self.delete(relation, RelExpr::Singleton(exprs))
    }

    /// Append a delete of the fully parameterized row
    /// `row(?0, …, ?(arity-1))`.
    pub fn delete_params(self, relation: impl Into<String>, arity: usize) -> Self {
        self.delete_row(relation, ScalarExpr::params(arity))
    }

    /// Append `delete(R, σ_pred(R))`.
    pub fn delete_where(mut self, relation: impl Into<String>, pred: ScalarExpr) -> Self {
        self.statements
            .push(Statement::delete_where(relation, pred));
        self
    }

    /// Append `update(relation, pred, set)`.
    pub fn update(
        mut self,
        relation: impl Into<String>,
        pred: ScalarExpr,
        set: Vec<UpdateAssignment>,
    ) -> Self {
        self.statements.push(Statement::Update {
            relation: relation.into(),
            pred,
            set,
        });
        self
    }

    /// Append `alarm(expr)`.
    pub fn alarm(mut self, expr: RelExpr) -> Self {
        self.statements.push(Statement::Alarm(expr));
        self
    }

    /// Append `abort`.
    pub fn abort(mut self) -> Self {
        self.statements.push(Statement::Abort);
        self
    }

    /// Append an arbitrary statement.
    pub fn statement(mut self, stmt: Statement) -> Self {
        self.statements.push(stmt);
        self
    }

    /// Finish, producing a bracketed transaction.
    pub fn build(self) -> Transaction {
        Program::new(self.statements).bracket()
    }

    /// Finish, producing an unbracketed program (for rule actions).
    pub fn build_program(self) -> Program {
        Program::new(self.statements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn builder_produces_expected_statements() {
        let tx = TransactionBuilder::new()
            .insert_tuple("r", Tuple::of((1,)))
            .delete_where(
                "r",
                ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(1)),
            )
            .abort()
            .build();
        let stmts = tx.debracket().statements();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Statement::Insert { .. }));
        assert!(matches!(stmts[1], Statement::Delete { .. }));
        assert!(matches!(stmts[2], Statement::Abort));
    }

    #[test]
    fn build_program_is_unbracketed() {
        let p = TransactionBuilder::new().abort().build_program();
        assert_eq!(p.len(), 1);
    }
}
