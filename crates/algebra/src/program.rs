//! Statements, programs (Definition 2.4), and transactions (Definition 2.5).

use std::fmt;

use crate::expr::{max_opt, ScalarExpr};
use crate::rel_expr::RelExpr;

/// One attribute assignment inside an `update` statement: set the attribute
/// at `position` to the value of `value` (evaluated over the *old* tuple).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateAssignment {
    /// Zero-based attribute position being assigned.
    pub position: usize,
    /// New value, computed from the pre-update tuple.
    pub value: ScalarExpr,
}

impl UpdateAssignment {
    /// Convenience constructor.
    pub fn new(position: usize, value: ScalarExpr) -> Self {
        UpdateAssignment { position, value }
    }
}

/// An extended relational algebra statement (Definition 2.4: "assignments,
/// insert, delete, and update statements", plus the `alarm` statement of
/// Definition 5.1 and the explicit `abort` used by aborting rule actions).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `target := expr` — bind a temporary relation. Temporaries live only
    /// in the intermediate states `D^{t,i}` and are removed by the end
    /// bracket.
    Assign {
        /// Temporary relation name (must not collide with a base relation).
        target: String,
        /// Defining expression.
        expr: RelExpr,
    },
    /// `insert(R, E)` — add the tuples of `E` to base relation `R`.
    Insert {
        /// Target base relation.
        relation: String,
        /// Source expression (same type as `R`).
        source: RelExpr,
    },
    /// `delete(R, E)` — remove the tuples of `E` from base relation `R`.
    Delete {
        /// Target base relation.
        relation: String,
        /// Tuples to remove (same type as `R`).
        source: RelExpr,
    },
    /// `update(R, θ, f)` — replace every tuple of `R` satisfying `pred`
    /// with the tuple obtained by applying the assignments. Per
    /// Definition 4.5, an update is treated as a delete plus an insert for
    /// triggering purposes.
    Update {
        /// Target base relation.
        relation: String,
        /// Which tuples to update.
        pred: ScalarExpr,
        /// The update function `f` as attribute assignments.
        set: Vec<UpdateAssignment>,
    },
    /// `alarm(E)` (Definition 5.1) — abort the enclosing transaction iff
    /// `E` is non-empty; otherwise do nothing.
    Alarm(RelExpr),
    /// Unconditional abort — the paper's default violation response
    /// (`THEN abort` in Example 4.2).
    Abort,
}

impl Statement {
    /// Convenience: `insert` of explicit tuples.
    pub fn insert_tuples(
        relation: impl Into<String>,
        tuples: Vec<tm_relational::Tuple>,
    ) -> Statement {
        Statement::Insert {
            relation: relation.into(),
            source: RelExpr::Literal(tuples),
        }
    }

    /// Convenience: `delete(R, select[pred](R))`.
    pub fn delete_where(relation: impl Into<String>, pred: ScalarExpr) -> Statement {
        let relation = relation.into();
        Statement::Delete {
            source: RelExpr::relation(relation.clone()).select(pred),
            relation,
        }
    }

    /// Convenience: `insert(R, row(?0, …, ?(arity-1)))` — the
    /// parameterized single-row insert of a prepared transaction.
    pub fn insert_params(relation: impl Into<String>, arity: usize) -> Statement {
        Statement::Insert {
            relation: relation.into(),
            source: RelExpr::Singleton(ScalarExpr::params(arity)),
        }
    }

    /// The largest parameter index `?i` referenced by this statement, or
    /// `None` when it is parameter-free.
    pub fn max_param(&self) -> Option<usize> {
        match self {
            Statement::Assign { expr, .. } => expr.max_param(),
            Statement::Insert { source, .. } | Statement::Delete { source, .. } => {
                source.max_param()
            }
            Statement::Update { pred, set, .. } => set
                .iter()
                .fold(pred.max_param(), |m, a| max_opt(m, a.value.max_param())),
            Statement::Alarm(expr) => expr.max_param(),
            Statement::Abort => None,
        }
    }

    /// Substitute every placeholder `?i` with the constant `values[i]`
    /// (see [`ScalarExpr::bind_params`]). Parameter-free statements are
    /// cloned wholesale.
    pub fn bind_params(&self, values: &[tm_relational::Value]) -> Statement {
        if self.max_param().is_none() {
            return self.clone();
        }
        match self {
            Statement::Assign { target, expr } => Statement::Assign {
                target: target.clone(),
                expr: expr.bind_params(values),
            },
            Statement::Insert { relation, source } => Statement::Insert {
                relation: relation.clone(),
                source: source.bind_params(values),
            },
            Statement::Delete { relation, source } => Statement::Delete {
                relation: relation.clone(),
                source: source.bind_params(values),
            },
            Statement::Update {
                relation,
                pred,
                set,
            } => Statement::Update {
                relation: relation.clone(),
                pred: pred.bind_params(values),
                set: set
                    .iter()
                    .map(|a| UpdateAssignment::new(a.position, a.value.bind_params(values)))
                    .collect(),
            },
            Statement::Alarm(expr) => Statement::Alarm(expr.bind_params(values)),
            Statement::Abort => Statement::Abort,
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Assign { target, expr } => write!(f, "{target} := {expr}"),
            Statement::Insert { relation, source } => write!(f, "insert({relation}, {source})"),
            Statement::Delete { relation, source } => write!(f, "delete({relation}, {source})"),
            Statement::Update {
                relation,
                pred,
                set,
            } => {
                write!(f, "update({relation}, {pred}, [")?;
                for (i, a) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "#{} := {}", a.position, a.value)?;
                }
                write!(f, "])")
            }
            Statement::Alarm(expr) => write!(f, "alarm({expr})"),
            Statement::Abort => write!(f, "abort"),
        }
    }
}

/// An extended relational algebra program `P = a1; a2; …; an`
/// (Definition 2.4). `Program::empty()` is the paper's empty program `Pε`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    statements: Vec<Statement>,
}

impl Program {
    /// The empty program `Pε`.
    pub fn empty() -> Program {
        Program::default()
    }

    /// A program from a statement list.
    pub fn new(statements: Vec<Statement>) -> Program {
        Program { statements }
    }

    /// Whether this is `Pε`.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// The statements in order.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// The first statement (`head(P)` in Algorithm 5.2), if any.
    pub fn head(&self) -> Option<&Statement> {
        self.statements.first()
    }

    /// The program without its first statement (`tail(P)`).
    pub fn tail(&self) -> Program {
        if self.statements.is_empty() {
            Program::empty()
        } else {
            Program {
                statements: self.statements[1..].to_vec(),
            }
        }
    }

    /// The program concatenation operator `⊕` (Algorithm 5.1).
    pub fn concat(mut self, other: Program) -> Program {
        self.statements.extend(other.statements);
        self
    }

    /// Append a single statement.
    pub fn push(&mut self, stmt: Statement) {
        self.statements.push(stmt);
    }

    /// The transaction bracketing operator `↑`: wrap the program in
    /// transaction brackets (Algorithm 5.1).
    pub fn bracket(self) -> Transaction {
        Transaction { program: self }
    }

    /// The number of parameter slots this program requires: one more than
    /// the largest `?i` referenced, or 0 for a parameter-free program.
    pub fn param_count(&self) -> usize {
        self.statements
            .iter()
            .fold(None, |m, s| max_opt(m, s.max_param()))
            .map_or(0, |m| m + 1)
    }

    /// Substitute every placeholder `?i` with the constant `values[i]`.
    pub fn bind_params(&self, values: &[tm_relational::Value]) -> Program {
        Program {
            statements: self
                .statements
                .iter()
                .map(|s| s.bind_params(values))
                .collect(),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.statements {
            writeln!(f, "{s};")?;
        }
        Ok(())
    }
}

impl FromIterator<Statement> for Program {
    fn from_iter<I: IntoIterator<Item = Statement>>(iter: I) -> Self {
        Program {
            statements: iter.into_iter().collect(),
        }
    }
}

/// A transaction: a program within transaction brackets (Definition 2.5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Transaction {
    program: Program,
}

impl Transaction {
    /// Wrap a program in transaction brackets.
    pub fn new(program: Program) -> Transaction {
        Transaction { program }
    }

    /// The transaction debracketing operator `↓`: strip the brackets and
    /// return the underlying program (Algorithm 5.1).
    pub fn debracket(&self) -> &Program {
        &self.program
    }

    /// Consume the transaction, returning the underlying program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Number of statements in the transaction body.
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// Whether the transaction body is empty.
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }

    /// The number of parameter slots this transaction requires (see
    /// [`Program::param_count`]). 0 means the transaction is fully ground
    /// and can execute without a binding.
    pub fn param_count(&self) -> usize {
        self.program.param_count()
    }

    /// Substitute every placeholder `?i` with the constant `values[i]`,
    /// producing the ground transaction a binding denotes. The engine's
    /// prepared-execution path does **not** materialize this — it executes
    /// the template against the binding directly — but the substituted
    /// form is the semantic reference (property-tested in
    /// `tests/prepared_equivalence.rs`) and is useful for inspection.
    pub fn bind_params(&self, values: &[tm_relational::Value]) -> Transaction {
        Transaction {
            program: self.program.bind_params(values),
        }
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "begin")?;
        for s in self.program.statements() {
            writeln!(f, "  {s};")?;
        }
        writeln!(f, "end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::Tuple;

    #[test]
    fn empty_program_is_pe() {
        assert!(Program::empty().is_empty());
        assert_eq!(Program::empty().len(), 0);
        assert!(Program::empty().head().is_none());
        assert!(Program::empty().tail().is_empty());
    }

    #[test]
    fn head_tail_decomposition() {
        let p = Program::new(vec![
            Statement::Abort,
            Statement::Alarm(RelExpr::relation("r")),
        ]);
        assert_eq!(p.head(), Some(&Statement::Abort));
        let t = p.tail();
        assert_eq!(t.len(), 1);
        assert_eq!(t.head(), Some(&Statement::Alarm(RelExpr::relation("r"))));
        assert!(t.tail().is_empty());
    }

    #[test]
    fn concat_is_associative_on_statements() {
        let a = Program::new(vec![Statement::Abort]);
        let b = Program::new(vec![Statement::Alarm(RelExpr::relation("r"))]);
        let c = Program::new(vec![Statement::Abort]);
        let left = a.clone().concat(b.clone()).concat(c.clone());
        let right = a.concat(b.concat(c));
        assert_eq!(left, right);
        assert_eq!(left.len(), 3);
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let p = Program::new(vec![Statement::Abort]);
        assert_eq!(p.clone().concat(Program::empty()), p);
        assert_eq!(Program::empty().concat(p.clone()), p);
    }

    #[test]
    fn bracket_debracket_round_trip() {
        let p = Program::new(vec![Statement::insert_tuples(
            "beer",
            vec![Tuple::of(("a", "b", "c", 1.0_f64))],
        )]);
        let t = p.clone().bracket();
        assert_eq!(t.debracket(), &p);
        assert_eq!(t.into_program(), p);
    }

    #[test]
    fn display_transaction() {
        let t = Program::new(vec![Statement::Abort]).bracket();
        let s = t.to_string();
        assert!(s.starts_with("begin\n"));
        assert!(s.contains("  abort;"));
        assert!(s.ends_with("end\n"));
    }

    #[test]
    fn delete_where_desugars() {
        let s = Statement::delete_where("r", ScalarExpr::col_eq(0, 0));
        match s {
            Statement::Delete { relation, source } => {
                assert_eq!(relation, "r");
                assert!(matches!(source, RelExpr::Select(..)));
            }
            _ => panic!("expected delete"),
        }
    }

    #[test]
    fn param_count_and_bind() {
        use tm_relational::Value;
        let tx = Program::new(vec![Statement::insert_params("r", 2), Statement::Abort]).bracket();
        assert_eq!(tx.param_count(), 2);
        assert_eq!(Transaction::default().param_count(), 0);
        let ground = tx.bind_params(&[Value::Int(4), Value::str("x")]);
        assert_eq!(ground.param_count(), 0);
        assert!(ground.to_string().contains("row(4, \"x\")"));
        // Update assignments count too.
        let s = Statement::Update {
            relation: "r".into(),
            pred: ScalarExpr::cmp(
                crate::expr::CmpOp::Eq,
                ScalarExpr::col(0),
                ScalarExpr::param(1),
            ),
            set: vec![UpdateAssignment::new(1, ScalarExpr::param(4))],
        };
        assert_eq!(s.max_param(), Some(4));
    }

    #[test]
    fn update_display() {
        let s = Statement::Update {
            relation: "r".into(),
            pred: ScalarExpr::true_(),
            set: vec![UpdateAssignment::new(1, ScalarExpr::int(9))],
        };
        assert_eq!(s.to_string(), "update(r, true, [#1 := 9])");
    }
}
