//! Equi-join key extraction from join predicates.
//!
//! Every referential check the translator emits — Table 1's `R ▷ S`, the
//! generated triggers, the §7 experiments — carries a predicate over the
//! concatenated tuple of the two join inputs. Whenever that predicate is a
//! *conjunction* containing `col_i = col_j` terms with one column on each
//! side, the join can be executed with a hash table instead of nested
//! loops. This module decomposes a predicate into:
//!
//! * **key pairs** — `(left column, right column)` offsets equated by an
//!   equality conjunct (right offsets are relative to the right input), and
//! * a **residual** predicate — the conjunction of everything else, still
//!   expressed over the concatenated tuple.
//!
//! [`extract_equi_keys`] is shared by the hash execution paths of
//! [`crate::eval`] and by `tm-parallel`'s repartitioning referential check,
//! so co-partition detection and shuffle routing use one code path.
//!
//! ## Key hashing
//!
//! Join-key equality is defined by [`Value::compare`](tm_relational::Value::compare), which treats
//! `Int(1)` and `Double(1.0)` as equal — but `Value`'s `Hash`/`Eq` keep the
//! variants distinct (relations are typed sets). A hash table keyed on
//! `Value` directly would therefore miss cross-type numeric matches, and
//! because compare-equality is not transitive over large integers (two
//! distinct `i64`s can both compare equal to the `f64` they round to), *no*
//! canonical key can represent it exactly. The hash paths therefore use
//! **bucket-and-verify**: [`hash_key_values`] computes a hash under which
//! compare-equal values always collide (integers hash as the double they
//! widen to), and every bucket candidate is re-verified with
//! [`key_values_match`] before it joins. False bucket collisions cost a
//! comparison; false negatives are impossible.

use tm_relational::util::hash_join_key;
use tm_relational::Tuple;

use crate::expr::{CmpOp, ScalarExpr};

/// The decomposition of a join predicate into equi-join keys plus a
/// residual predicate. Produced by [`extract_equi_keys`].
#[derive(Debug, Clone, PartialEq)]
pub struct JoinKeys {
    /// Column pairs equated by the predicate: `.0` is an offset into the
    /// left tuple, `.1` an offset into the **right** tuple (right-local,
    /// i.e. already shifted down by the left arity).
    pub pairs: Vec<(usize, usize)>,
    /// The conjunction of all non-key conjuncts, over the concatenated
    /// tuple; `None` when the predicate was purely equi-join keys.
    pub residual: Option<ScalarExpr>,
}

/// Decompose `pred` into equi-join key pairs and a residual, treating the
/// first `left_arity` columns as the left input and columns
/// `left_arity..total_arity` as the right input.
///
/// A conjunct `#i = #j` (in either order) becomes a key pair when exactly
/// one side lands in each input and both offsets are in range; every other
/// conjunct — non-equalities, same-side equalities, disjunctions, computed
/// terms — is folded into the residual. Returns `None` when no key pair
/// exists, in which case callers fall back to nested loops.
///
/// Note on evaluation order: the nested-loop path evaluates the original
/// conjunction left-to-right with short-circuiting, so a runtime error in
/// a later conjunct is skipped when an earlier one is false. The hash path
/// tests key equality first and evaluates the residual only for key
/// matches. For error-free predicates the results are identical (`∧` is
/// commutative in two-valued logic); predicates whose conjuncts can raise
/// runtime errors may surface errors under one strategy and not the other,
/// exactly as short-circuiting already makes error surfacing
/// order-dependent.
pub fn extract_equi_keys(
    pred: &ScalarExpr,
    left_arity: usize,
    total_arity: usize,
) -> Option<JoinKeys> {
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);
    let mut pairs = Vec::new();
    let mut residual: Option<ScalarExpr> = None;
    for c in conjuncts {
        match classify(c, left_arity, total_arity) {
            Some(pair) => pairs.push(pair),
            None => {
                residual = Some(match residual {
                    None => c.clone(),
                    Some(r) => ScalarExpr::and(r, c.clone()),
                });
            }
        }
    }
    if pairs.is_empty() {
        None
    } else {
        Some(JoinKeys { pairs, residual })
    }
}

/// Flatten a right- or left-nested `And` tree into its conjuncts, in
/// evaluation order.
fn flatten_and<'e>(pred: &'e ScalarExpr, out: &mut Vec<&'e ScalarExpr>) {
    match pred {
        ScalarExpr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other),
    }
}

/// Classify one conjunct as a key pair if it is `#i = #j` with one column
/// per input.
fn classify(c: &ScalarExpr, left_arity: usize, total_arity: usize) -> Option<(usize, usize)> {
    let ScalarExpr::Cmp(CmpOp::Eq, l, r) = c else {
        return None;
    };
    let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (l.as_ref(), r.as_ref()) else {
        return None;
    };
    let (a, b) = (*a, *b);
    if a < left_arity && (left_arity..total_arity).contains(&b) {
        Some((a, b - left_arity))
    } else if b < left_arity && (left_arity..total_arity).contains(&a) {
        Some((b, a - left_arity))
    } else {
        None
    }
}

impl JoinKeys {
    /// The left-side key columns, in pair order.
    pub fn left_cols(&self) -> Vec<usize> {
        self.pairs.iter().map(|&(l, _)| l).collect()
    }

    /// The right-side (right-local) key columns, in pair order.
    pub fn right_cols(&self) -> Vec<usize> {
        self.pairs.iter().map(|&(_, r)| r).collect()
    }
}

/// Hash the key columns of a tuple via [`Value::hash_for_join`](tm_relational::Value::hash_for_join).
/// Compare-equal key sequences always produce equal hashes; candidates
/// sharing a hash must still be verified with [`key_values_match`].
///
/// # Panics
/// Panics when a column offset is out of range — [`extract_equi_keys`]
/// only produces in-range offsets.
pub fn hash_key_values(tuple: &Tuple, cols: &[usize]) -> u64 {
    hash_join_key(
        cols.iter()
            .map(|&c| tuple.get(c).expect("key column in range")),
    )
}

/// Verify a bucket candidate: the paired key columns of `left` and `right`
/// are equal under [`Value::compare`](tm_relational::Value::compare) — the same equality the nested-loop
/// predicate would have tested.
pub fn key_values_match(left: &Tuple, right: &Tuple, pairs: &[(usize, usize)]) -> bool {
    pairs
        .iter()
        .all(|&(lc, rc)| match (left.get(lc), right.get(rc)) {
            (Some(a), Some(b)) => a.compare(b).is_eq(),
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::Value;

    #[test]
    fn single_equi_key_extracted() {
        // child(id, fk, amount) ▷ parent(key, payload): #1 = #3
        let keys = extract_equi_keys(&ScalarExpr::col_eq(1, 3), 3, 5).unwrap();
        assert_eq!(keys.pairs, vec![(1, 0)]);
        assert!(keys.residual.is_none());
    }

    #[test]
    fn reversed_operands_extracted() {
        let keys = extract_equi_keys(&ScalarExpr::col_eq(3, 1), 3, 5).unwrap();
        assert_eq!(keys.pairs, vec![(1, 0)]);
    }

    #[test]
    fn conjunction_splits_keys_and_residual() {
        let pred = ScalarExpr::and(
            ScalarExpr::col_eq(0, 2),
            ScalarExpr::and(
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(1), ScalarExpr::col(3)),
                ScalarExpr::col_eq(1, 3),
            ),
        );
        let keys = extract_equi_keys(&pred, 2, 4).unwrap();
        assert_eq!(keys.pairs, vec![(0, 0), (1, 1)]);
        assert_eq!(keys.residual.unwrap().to_string(), "(#1 < #3)");
    }

    #[test]
    fn same_side_equality_is_residual() {
        // #0 = #1 is left-local: not a join key.
        assert!(extract_equi_keys(&ScalarExpr::col_eq(0, 1), 2, 4).is_none());
    }

    #[test]
    fn disjunction_not_decomposed() {
        let pred = ScalarExpr::or(ScalarExpr::col_eq(0, 2), ScalarExpr::col_eq(1, 3));
        assert!(extract_equi_keys(&pred, 2, 4).is_none());
    }

    #[test]
    fn out_of_range_column_is_residual() {
        // #0 = #9 references past the concatenated arity; leave it to the
        // nested-loop path (which reports the range error).
        assert!(extract_equi_keys(&ScalarExpr::col_eq(0, 9), 2, 4).is_none());
    }

    #[test]
    fn cross_type_numeric_keys_collide() {
        let a = Tuple::of((1,));
        let b = Tuple::of((1.0_f64,));
        assert_eq!(hash_key_values(&a, &[0]), hash_key_values(&b, &[0]));
        assert!(key_values_match(&a, &b, &[(0, 0)]));
    }

    #[test]
    fn null_keys_match_null() {
        let a = Tuple::from_values(vec![Value::Null]);
        let b = Tuple::from_values(vec![Value::Null]);
        assert_eq!(hash_key_values(&a, &[0]), hash_key_values(&b, &[0]));
        assert!(key_values_match(&a, &b, &[(0, 0)]));
        let c = Tuple::of((0,));
        assert!(!key_values_match(&a, &c, &[(0, 0)]));
    }

    #[test]
    fn distinct_values_rarely_collide() {
        let a = Tuple::of((1, "x"));
        let b = Tuple::of((2, "x"));
        assert_ne!(hash_key_values(&a, &[0, 1]), hash_key_values(&b, &[0, 1]));
        assert!(!key_values_match(&a, &b, &[(0, 0), (1, 1)]));
    }
}
